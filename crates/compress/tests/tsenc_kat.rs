//! `tsenc` known-answer vectors: frozen hex fixtures for each column
//! technique and for full streams (columnar, dictionary-persistent,
//! fallback). The codec is deterministic, so any byte of drift in these
//! fixtures is a wire-format break — bump the stream magic before
//! changing them.

use f2c_compress::tsenc::{
    self, decode_column, encode_column_as, StreamDecoder, StreamEncoder, Technique, MODE_COLUMNAR,
    MODE_FALLBACK,
};
use scc_sensors::{Reading, SensorId, SensorType, Value};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex literal");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex digit"))
        .collect()
}

/// Every technique over the same flush-cadence column (15-minute
/// boundaries), encode *and* decode sides pinned.
#[test]
fn column_techniques_match_known_answers() {
    let column: Vec<u64> = vec![900, 1800, 2700, 3600, 4500];
    let vectors: &[(Technique, &str)] = &[
        (Technique::Raw, "000a8407880e8c15901c9423"),
        (Technique::Delta, "010a8407880e880e880e880e"),
        (Technique::DeltaOfDelta, "02078407880e000000"),
        (Technique::Rle, "030f840701880e018c1501901c01942301"),
        (Technique::Dict, "0410058407880e8c15901c94230001020304"),
        (Technique::Xor, "050a84078c09841b9c09843f"),
    ];
    for (technique, expected) in vectors {
        let mut buf = Vec::new();
        encode_column_as(*technique, &column, &mut buf);
        assert_eq!(hex(&buf), *expected, "encode KAT for {technique:?}");
        let mut pos = 0;
        let (tag, back) = decode_column(&unhex(expected), &mut pos, column.len() as u64).unwrap();
        assert_eq!(tag, *technique);
        assert_eq!(back, column, "decode KAT for {technique:?}");
    }
    // A runny column: RLE packs each (value, run) pair once.
    let runs: Vec<u64> = vec![5, 5, 5, 5, 9, 9, 9];
    let mut buf = Vec::new();
    encode_column_as(Technique::Rle, &runs, &mut buf);
    assert_eq!(hex(&buf), "030405040903");
}

/// The empty batch: magic, columnar mode, two zero varints, CRC.
#[test]
fn empty_batch_stream_matches_known_answer() {
    let expected = "54534631000000000000007edf6c9d";
    let encoded = tsenc::encode_once(&[]).unwrap();
    assert_eq!(hex(&encoded), expected);
    assert_eq!(tsenc::decode_once(&unhex(expected)).unwrap(), vec![]);
}

/// One traffic counter reading, columnar with one dictionary addition.
#[test]
fn single_record_stream_matches_known_answer() {
    let readings = vec![Reading::new(
        SensorId::new(SensorType::Traffic, 7),
        900,
        Value::Counter(42),
    )];
    let expected = "5453463100010113070001000002840700012aaf725584";
    let encoded = tsenc::encode_once(&readings).unwrap();
    assert_eq!(hex(&encoded), expected);
    assert_eq!(encoded[4], MODE_COLUMNAR);
    assert_eq!(tsenc::decode_once(&unhex(expected)).unwrap(), readings);
}

/// A mixed-type batch over two flush cadences: counters, flags, levels
/// and one composite, exercising every column plane in one stream.
#[test]
fn multi_type_stream_matches_known_answer() {
    let readings = vec![
        Reading::new(
            SensorId::new(SensorType::Traffic, 0),
            900,
            Value::Counter(1200),
        ),
        Reading::new(
            SensorId::new(SensorType::Traffic, 1),
            900,
            Value::Counter(880),
        ),
        Reading::new(
            SensorId::new(SensorType::ParkingSpot, 4),
            900,
            Value::Flag(true),
        ),
        Reading::new(
            SensorId::new(SensorType::ContainerGlass, 2),
            900,
            Value::Level(63),
        ),
        Reading::new(
            SensorId::new(SensorType::Weather, 0),
            900,
            Value::Composite(vec![2150, -40, 990]),
        ),
        Reading::new(
            SensorId::new(SensorType::Traffic, 0),
            1800,
            Value::Counter(1207),
        ),
        Reading::new(
            SensorId::new(SensorType::Traffic, 1),
            1800,
            Value::Counter(893),
        ),
        Reading::new(
            SensorId::new(SensorType::ParkingSpot, 4),
            1800,
            Value::Flag(false),
        ),
    ];
    let expected = "54534631000805130013010f040a021400000800010203040001020306840705880e\
                    0300013f000201000008b009f006b709fd060001030005cc214fbc0f9115909d";
    let encoded = tsenc::encode_once(&readings).unwrap();
    assert_eq!(hex(&encoded), expected);
    assert_eq!(tsenc::decode_once(&unhex(expected)).unwrap(), readings);
}

/// Two consecutive batches of one stream: the second carries no
/// dictionary additions (both sensors committed by the first) and is
/// strictly smaller for it. Both sides of the dictionary lifecycle are
/// pinned byte-for-byte.
#[test]
fn dictionary_persistent_stream_matches_known_answers() {
    let batch_a = vec![
        Reading::new(
            SensorId::new(SensorType::Traffic, 0),
            900,
            Value::Counter(100),
        ),
        Reading::new(
            SensorId::new(SensorType::Traffic, 1),
            900,
            Value::Counter(200),
        ),
    ];
    let batch_b = vec![
        Reading::new(
            SensorId::new(SensorType::Traffic, 0),
            1800,
            Value::Counter(107),
        ),
        Reading::new(
            SensorId::new(SensorType::Traffic, 1),
            1800,
            Value::Counter(211),
        ),
    ];
    let expected_a = "5453463100020213001301000200010103840700000364c801144c4b01";
    let expected_b = "54534631000200000200010103880e0000036bd301f9211662";

    let mut enc = StreamEncoder::new();
    let payload_a = enc.encode_batch(&batch_a).unwrap();
    let payload_b = enc.encode_batch(&batch_b).unwrap();
    assert_eq!(hex(&payload_a), expected_a);
    assert_eq!(hex(&payload_b), expected_b);
    assert!(payload_b.len() < payload_a.len());

    let mut dec = StreamDecoder::new();
    assert_eq!(dec.decode_batch(&unhex(expected_a)).unwrap(), batch_a);
    assert_eq!(dec.decode_batch(&unhex(expected_b)).unwrap(), batch_b);
    assert_eq!(dec.dict_len(), 2);
}

/// An irregular batch (a counter-model sensor shipping a flag) rides
/// the DEFLATE fallback; the deflate stack is deterministic, so the
/// fallback bytes freeze too.
#[test]
fn irregular_batch_fallback_matches_known_answer() {
    let readings = vec![Reading::new(
        SensorId::new(SensorType::Traffic, 0),
        900,
        Value::Flag(true),
    )];
    let expected = "5453463101465a4331070000000000000002c11c9c00011300840702017606e9fe";
    let encoded = tsenc::encode_once(&readings).unwrap();
    assert_eq!(hex(&encoded), expected);
    assert_eq!(encoded[4], MODE_FALLBACK);
    assert_eq!(tsenc::decode_once(&unhex(expected)).unwrap(), readings);
}
