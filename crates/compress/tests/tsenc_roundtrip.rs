//! Property-based oracle for the `tsenc` flush codec: every batch the
//! encoder accepts must decode back record-for-record — per technique,
//! per column, and through the composed stream codec with its
//! cross-batch dictionary state. Decoding must never panic on garbage.

use f2c_compress::tsenc::{
    self, decode_column, encode_column, encode_column_as, StreamDecoder, StreamEncoder, Technique,
    MODE_COLUMNAR,
};
use proptest::prelude::*;
use scc_sensors::{Reading, SensorId, SensorType, Value};

/// Raw entropy for one reading: `(type index, sensor index, timestamp,
/// value entropy, composite fields)`.
type RawReading = (usize, u32, u64, u64, Vec<i64>);

/// A value obeying `ty`'s wire model (mirrors `scc_sensors::wire`), so
/// the batch stays regular (columnar-eligible).
fn value_for(ty: SensorType, raw: u64, fields: &[i64]) -> Value {
    use SensorType::*;
    match ty {
        ParkingSpot => Value::Flag(raw & 1 == 1),
        ElectricityMeter | GasMeter | BicycleFlow | PeopleFlow | Traffic => Value::Counter(raw),
        ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic | ContainerRefuse => {
            Value::Level(raw as u8)
        }
        NetworkAnalyzer | AirQuality | Weather => Value::Composite(fields.to_vec()),
        _ => Value::Scalar(raw as i64),
    }
}

fn regular(raws: &[RawReading]) -> Vec<Reading> {
    raws.iter()
        .map(|(t, idx, ts, raw, fields)| {
            let ty = SensorType::ALL[t % SensorType::ALL.len()];
            Reading::new(SensorId::new(ty, *idx), *ts, value_for(ty, *raw, fields))
        })
        .collect()
}

/// Readings whose values may contradict their types' models (forcing
/// the DEFLATE fallback for some batches): the value is drawn from a
/// possibly different type's model.
fn possibly_irregular(raws: &[RawReading]) -> Vec<Reading> {
    raws.iter()
        .map(|(t, idx, ts, raw, fields)| {
            let ty = SensorType::ALL[t % SensorType::ALL.len()];
            let value_ty = SensorType::ALL[(t / 31) % SensorType::ALL.len()];
            Reading::new(
                SensorId::new(ty, *idx),
                *ts,
                value_for(value_ty, *raw, fields),
            )
        })
        .collect()
}

fn raw_reading() -> impl Strategy<Value = RawReading> {
    (
        0usize..1024,
        0u32..500,
        0u64..4_000_000_000,
        any::<u64>(),
        proptest::collection::vec(any::<i64>(), 0..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_technique_roundtrips_arbitrary_columns(
        values in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        for technique in Technique::ALL {
            let mut buf = Vec::new();
            encode_column_as(technique, &values, &mut buf);
            let mut pos = 0;
            let (tag, back) = decode_column(&buf, &mut pos, values.len() as u64).unwrap();
            prop_assert_eq!(tag, technique);
            prop_assert_eq!(&back, &values, "technique {:?}", technique);
            prop_assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn probed_column_choice_is_cheapest_and_roundtrips(
        values in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let mut probed = Vec::new();
        let chosen = encode_column(&values, &mut probed);
        for technique in Technique::ALL {
            let mut forced = Vec::new();
            encode_column_as(technique, &values, &mut forced);
            prop_assert!(
                probed.len() <= forced.len(),
                "probe chose {:?} ({} B) but {:?} is smaller ({} B)",
                chosen, probed.len(), technique, forced.len()
            );
        }
        let mut pos = 0;
        let (_, back) = decode_column(&probed, &mut pos, values.len() as u64).unwrap();
        prop_assert_eq!(back, values);
    }

    #[test]
    fn composed_codec_roundtrips_arbitrary_batches(
        raws in proptest::collection::vec(raw_reading(), 0..200),
    ) {
        let readings = regular(&raws);
        let encoded = tsenc::encode_once(&readings).unwrap();
        prop_assert_eq!(tsenc::decode_once(&encoded).unwrap(), readings);
    }

    #[test]
    fn irregular_batches_still_roundtrip_via_fallback(
        raws in proptest::collection::vec(raw_reading(), 0..120),
    ) {
        let readings = possibly_irregular(&raws);
        let encoded = tsenc::encode_once(&readings).unwrap();
        prop_assert_eq!(tsenc::decode_once(&encoded).unwrap(), readings);
    }

    #[test]
    fn stream_roundtrips_consecutive_batches_with_dictionary_state(
        all in proptest::collection::vec(raw_reading(), 0..240),
        cuts in proptest::collection::vec(0usize..240, 1..6),
    ) {
        // Slice one stream of readings into consecutive batches at
        // arbitrary cut points; the encoder/decoder pair must stay in
        // dictionary lock-step across every boundary.
        let readings = regular(&all);
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c.min(readings.len())).collect();
        cuts.sort_unstable();
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        let mut start = 0usize;
        for end in cuts.into_iter().chain([readings.len()]) {
            let batch = &readings[start..end];
            start = end;
            let payload = enc.encode_batch(batch).unwrap();
            prop_assert_eq!(dec.decode_batch(&payload).unwrap(), batch.to_vec());
            prop_assert_eq!(enc.dict_len(), dec.dict_len());
        }
    }

    #[test]
    fn skewed_regular_cadence_stays_columnar_and_roundtrips(
        n in 16usize..128,
        base in 0u64..1_000_000,
        period in 1u64..3600,
        jitter in proptest::collection::vec(0u64..3, 128),
        pool in 1u32..6,
    ) {
        // The flush-shipment shape: a small sensor pool polled on a
        // cadence with sub-period skew, counters marching upward.
        let readings: Vec<Reading> = (0..n)
            .map(|i| {
                Reading::new(
                    SensorId::new(SensorType::Traffic, i as u32 % pool),
                    base + i as u64 * period + jitter[i],
                    Value::Counter(1000 + i as u64 * 7),
                )
            })
            .collect();
        let encoded = tsenc::encode_once(&readings).unwrap();
        prop_assert_eq!(encoded[4], MODE_COLUMNAR, "regular cadence must ship columnar");
        prop_assert_eq!(tsenc::decode_once(&encoded).unwrap(), readings);
    }

    #[test]
    fn constant_runs_compress_hard_and_roundtrip(
        n in 1usize..400,
        ts in 0u64..1_000_000,
        level in any::<u8>(),
    ) {
        let readings: Vec<Reading> = (0..n)
            .map(|_| {
                Reading::new(
                    SensorId::new(SensorType::ContainerGlass, 3),
                    ts,
                    Value::Level(level),
                )
            })
            .collect();
        let encoded = tsenc::encode_once(&readings).unwrap();
        prop_assert_eq!(tsenc::decode_once(&encoded).unwrap(), readings);
        // A constant batch is pure runs: the stream must stay tiny no
        // matter how long the run gets.
        prop_assert!(encoded.len() < 64, "{} records -> {} B", n, encoded.len());
    }

    #[test]
    fn decode_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Any outcome but a panic.
        let _ = tsenc::decode_once(&data);
    }

    #[test]
    fn decode_never_panics_on_sealed_garbage(
        mode in any::<u8>(),
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // A syntactically sealed stream (magic + valid CRC) over an
        // arbitrary mode and body: the decoder must reach the body
        // parsers and still never panic or over-allocate.
        let mut data = Vec::with_capacity(body.len() + 9);
        data.extend_from_slice(&tsenc::MAGIC);
        data.push(mode);
        data.extend_from_slice(&body);
        let crc = f2c_compress::crc32::checksum(&data[4..]);
        data.extend_from_slice(&crc.to_le_bytes());
        let _ = tsenc::decode_once(&data);
    }
}

#[test]
fn empty_and_single_record_edges_roundtrip() {
    let empty = tsenc::encode_once(&[]).unwrap();
    assert_eq!(tsenc::decode_once(&empty).unwrap(), Vec::<Reading>::new());

    let one = vec![Reading::new(
        SensorId::new(SensorType::Weather, 0),
        86_400,
        Value::Composite(vec![i64::MIN, 0, i64::MAX]),
    )];
    let encoded = tsenc::encode_once(&one).unwrap();
    assert_eq!(tsenc::decode_once(&encoded).unwrap(), one);
}

#[test]
fn extreme_timestamps_and_magnitudes_roundtrip() {
    let readings = vec![
        Reading::new(
            SensorId::new(SensorType::Traffic, u32::MAX),
            u64::MAX,
            Value::Counter(u64::MAX),
        ),
        Reading::new(SensorId::new(SensorType::Traffic, 0), 0, Value::Counter(0)),
        Reading::new(
            SensorId::new(SensorType::NoiseAmbient, 1),
            1,
            Value::Scalar(i64::MIN),
        ),
        Reading::new(
            SensorId::new(SensorType::NoiseAmbient, 2),
            u64::MAX - 1,
            Value::Scalar(i64::MAX),
        ),
    ];
    let encoded = tsenc::encode_once(&readings).unwrap();
    assert_eq!(tsenc::decode_once(&encoded).unwrap(), readings);
}
