//! Property-based tests: every codec in the crate must be a lossless
//! bijection on arbitrary byte vectors, and decoding must never panic on
//! arbitrary (mostly invalid) input.

use f2c_compress::{compress_with, decompress, lz77, rle, Archive, Level, Method};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn deflate_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for level in [Level::Fast, Level::Default, Level::Best] {
            let packed = compress_with(&data, level).unwrap();
            prop_assert_eq!(&decompress(&packed).unwrap(), &data);
        }
    }

    #[test]
    fn deflate_roundtrips_structured_text(
        rows in proptest::collection::vec((0u32..100_000, 0u32..86_400, -50i32..150), 0..300)
    ) {
        // Sentilo-shaped CSV rows, the payload class the experiment uses.
        let mut data = Vec::new();
        for (id, t, v) in rows {
            data.extend_from_slice(format!("sensor-{id},{t},{v}\n").as_bytes());
        }
        let packed = compress_with(&data, Level::Default).unwrap();
        prop_assert_eq!(&decompress(&packed).unwrap(), &data);
    }

    #[test]
    fn rle_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn rle_roundtrips_runny_bytes(
        runs in proptest::collection::vec((any::<u8>(), 1usize..400), 0..50)
    ) {
        let mut data = Vec::new();
        for (byte, len) in runs {
            data.extend(std::iter::repeat_n(byte, len));
        }
        prop_assert_eq!(rle::decode(&rle::encode(&data)).unwrap(), data);
    }

    #[test]
    fn lz77_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let tokens = lz77::tokenize(&data, &lz77::SearchParams::DEFAULT);
        prop_assert_eq!(lz77::reconstruct(&tokens).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine except a panic.
        let _ = decompress(&data);
    }

    #[test]
    fn rle_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = rle::decode(&data);
    }

    #[test]
    fn archive_parse_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Archive::from_bytes(&data);
    }

    #[test]
    fn archive_roundtrips_entries(
        entries in proptest::collection::vec(
            ("[a-z]{1,12}", proptest::collection::vec(any::<u8>(), 0..1024)),
            0..8
        )
    ) {
        let mut ar = Archive::new();
        let mut added = std::collections::BTreeMap::new();
        for (name, data) in entries {
            if ar.add(&name, &data, Method::Deflate).is_ok() {
                added.insert(name, data);
            }
        }
        let back = Archive::from_bytes(&ar.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), added.len());
        for (name, data) in added {
            prop_assert_eq!(back.entry(&name).unwrap().extract().unwrap(), data);
        }
    }

    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let a = compress_with(&data, Level::Default).unwrap();
        let b = compress_with(&data, Level::Default).unwrap();
        prop_assert_eq!(a, b);
    }
}
