//! CRC-32 known-answer vectors plus compress/decompress integrity
//! properties that tie the checksum to the codec round-trip.

use f2c_compress::crc32::{checksum, Hasher};
use f2c_compress::{compress_with, decompress, Level};
use proptest::prelude::*;

/// Published CRC-32 (IEEE 802.3, reflected 0xEDB88320) answer vectors.
#[test]
fn crc32_matches_known_answer_vectors() {
    let vectors: &[(&[u8], u32)] = &[
        (b"", 0x0000_0000),
        (b"a", 0xE8B7_BE43),
        (b"abc", 0x3524_41C2),
        (b"123456789", 0xCBF4_3926), // the CRC catalogue's "check" value
        (b"message digest", 0x2015_9D7F),
        (b"abcdefghijklmnopqrstuvwxyz", 0x4C27_50BD),
        (
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
            0x1FC2_E6D2,
        ),
        (&[0u8; 32], 0x190A_55AD),
        (&[0xFFu8; 32], 0xFF6C_AB0B),
    ];
    for (input, expected) in vectors {
        assert_eq!(checksum(input), *expected, "CRC-32 mismatch for {input:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn incremental_hasher_matches_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut hasher = Hasher::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), checksum(&data));
    }

    #[test]
    fn deflate_then_inflate_preserves_crc(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        // Identity through the codec, witnessed by the checksum: the CRC of
        // the decompressed output must equal the CRC of the input for every
        // compression level.
        let expected = checksum(&data);
        for level in [Level::Fast, Level::Default, Level::Best] {
            let packed = compress_with(&data, level).unwrap();
            let restored = decompress(&packed).unwrap();
            prop_assert_eq!(&restored, &data);
            prop_assert_eq!(checksum(&restored), expected);
        }
    }

    #[test]
    fn corruption_flips_the_crc(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        byte in 0usize..1024,
        bit in 0u32..8,
    ) {
        // Single-bit errors — the fault model CRC-32 guarantees against —
        // must always change the checksum.
        let mut corrupted = data.clone();
        let idx = byte % corrupted.len();
        corrupted[idx] ^= 1u8 << bit;
        prop_assert_ne!(checksum(&corrupted), checksum(&data));
    }
}
