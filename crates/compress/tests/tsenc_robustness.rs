//! Adversarial-input robustness for the `tsenc` decoder: truncated,
//! bit-flipped and length-lying streams must return `Err` — never
//! panic, never allocate past the validated counts — and a failed
//! decode must leave the stream decoder's dictionary untouched so a
//! clean re-delivery still applies.

use f2c_compress::tsenc::{
    self, put_varint, StreamDecoder, StreamEncoder, MAX_RECORDS, MODE_COLUMNAR, MODE_FALLBACK,
};
use f2c_compress::{crc32, deflate, Error};
use scc_sensors::{Reading, SensorId, SensorType, Value};

/// Seals `mode | body` into a full stream with valid magic and CRC, so
/// the crafted lie reaches the body parsers instead of being caught by
/// the checksum.
fn seal(mode: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 9);
    out.extend_from_slice(&tsenc::MAGIC);
    out.push(mode);
    out.extend_from_slice(body);
    let crc = crc32::checksum(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn sample_batch() -> Vec<Reading> {
    (0..20)
        .map(|i| {
            Reading::new(
                SensorId::new(SensorType::Traffic, i % 3),
                900 + u64::from(i) * 900,
                Value::Counter(1000 + u64::from(i) * 7),
            )
        })
        .collect()
}

#[test]
fn every_truncation_of_a_valid_stream_fails_cleanly() {
    for readings in [sample_batch(), Vec::new()] {
        let encoded = tsenc::encode_once(&readings).unwrap();
        for len in 0..encoded.len() {
            assert!(
                tsenc::decode_once(&encoded[..len]).is_err(),
                "prefix of {len}/{} bytes decoded",
                encoded.len()
            );
        }
    }
}

#[test]
fn every_bitflip_of_a_valid_stream_fails_cleanly() {
    let encoded = tsenc::encode_once(&sample_batch()).unwrap();
    for i in 0..encoded.len() {
        for bit in 0..8 {
            let mut bad = encoded.clone();
            bad[i] ^= 1u8 << bit;
            assert!(
                tsenc::decode_once(&bad).is_err(),
                "flip of bit {bit} at byte {i} decoded"
            );
        }
    }
}

#[test]
fn record_count_lies_are_rejected_without_allocation() {
    // n beyond the hard cap: refused by the size guard, not by OOM.
    let mut body = Vec::new();
    put_varint(&mut body, MAX_RECORDS + 1);
    put_varint(&mut body, 0);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::SizeLimitExceeded { .. })
    ));

    // n within the cap but far past the actual data: the column decoder
    // must hit EOF, not materialize 4M phantom records.
    let mut body = Vec::new();
    put_varint(&mut body, MAX_RECORDS);
    put_varint(&mut body, 0);
    assert!(tsenc::decode_once(&seal(MODE_COLUMNAR, &body)).is_err());
}

#[test]
fn dictionary_lies_are_rejected() {
    // More staged additions than records.
    let mut body = Vec::new();
    put_varint(&mut body, 1);
    put_varint(&mut body, 2);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::Malformed { .. })
    ));

    // A staged addition with an unknown sensor type code.
    let mut body = Vec::new();
    put_varint(&mut body, 1);
    put_varint(&mut body, 1);
    body.push(200); // only 21 types exist
    put_varint(&mut body, 0);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::Malformed { .. })
    ));

    // A codes column referencing a dictionary slot that was never
    // committed nor staged.
    let mut body = Vec::new();
    put_varint(&mut body, 1); // one record
    put_varint(&mut body, 0); // no additions, empty dictionary
    body.push(0); // codes column: Raw
    put_varint(&mut body, 1);
    put_varint(&mut body, 5); // code 5 of an empty dictionary
    assert!(tsenc::decode_once(&seal(MODE_COLUMNAR, &body)).is_err());
}

#[test]
fn column_frame_length_lies_are_rejected() {
    // A frame claiming a body far past the end of the stream.
    let mut body = Vec::new();
    put_varint(&mut body, 1);
    put_varint(&mut body, 1);
    body.push(19); // Traffic's index in SensorType::ALL
    put_varint(&mut body, 0);
    body.push(0); // codes column: Raw
    put_varint(&mut body, 1 << 40); // lying frame length
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::UnexpectedEof { .. })
    ));

    // A frame whose declared length exceeds what its decoder consumes.
    let mut stream_body = Vec::new();
    put_varint(&mut stream_body, 1);
    put_varint(&mut stream_body, 1);
    stream_body.push(19);
    put_varint(&mut stream_body, 0);
    stream_body.push(0); // codes column: Raw
    put_varint(&mut stream_body, 3); // three bytes declared…
    put_varint(&mut stream_body, 0); // …one consumed (code 0)
    stream_body.extend_from_slice(&[0, 0]); // slack the frame lies about
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &stream_body)),
        Err(Error::Malformed { .. })
    ));
}

#[test]
fn rle_runs_that_overshoot_the_column_are_rejected() {
    let mut body = Vec::new();
    put_varint(&mut body, 1); // one record
    put_varint(&mut body, 1); // one staged sensor
    body.push(19); // Traffic
    put_varint(&mut body, 0);
    // Codes column: RLE claiming a 200-run for a 1-int column.
    let mut rle = Vec::new();
    put_varint(&mut rle, 0); // value
    put_varint(&mut rle, 200); // run
    body.push(3); // Technique::Rle
    put_varint(&mut body, rle.len() as u64);
    body.extend_from_slice(&rle);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::Malformed { .. })
    ));
}

#[test]
fn unknown_mode_and_technique_tags_are_rejected() {
    assert!(matches!(
        tsenc::decode_once(&seal(7, &[])),
        Err(Error::Malformed { .. })
    ));

    let mut body = Vec::new();
    put_varint(&mut body, 1);
    put_varint(&mut body, 1);
    body.push(19);
    put_varint(&mut body, 0);
    body.push(9); // no such technique
    put_varint(&mut body, 0);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::Malformed { .. })
    ));
}

#[test]
fn fallback_bodies_are_validated_end_to_end() {
    // Garbage that is not a deflate stream.
    assert!(tsenc::decode_once(&seal(MODE_FALLBACK, &[0xde, 0xad, 0xbe, 0xef])).is_err());

    // A genuine deflate stream whose verbatim payload lies about its
    // record count.
    let mut verbatim = Vec::new();
    put_varint(&mut verbatim, 100); // declares 100 records, carries none
    let packed = deflate::compress(&verbatim).unwrap();
    assert!(tsenc::decode_once(&seal(MODE_FALLBACK, &packed)).is_err());

    // A genuine deflate stream with trailing bytes after the last
    // record.
    let mut verbatim = Vec::new();
    put_varint(&mut verbatim, 0);
    verbatim.extend_from_slice(b"junk");
    let packed = deflate::compress(&verbatim).unwrap();
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_FALLBACK, &packed)),
        Err(Error::Malformed { .. })
    ));
}

#[test]
fn value_range_lies_are_rejected() {
    // A flag column carrying a 2: ParkingSpot is index 15 in ALL.
    let mut body = Vec::new();
    put_varint(&mut body, 1);
    put_varint(&mut body, 1);
    body.push(15); // ParkingSpot
    put_varint(&mut body, 0);
    body.push(0); // codes: Raw [0]
    put_varint(&mut body, 1);
    put_varint(&mut body, 0);
    body.push(0); // timestamps: Raw [900]
    let mut ts = Vec::new();
    put_varint(&mut ts, 900);
    put_varint(&mut body, ts.len() as u64);
    body.extend_from_slice(&ts);
    body.push(0); // flag column: Raw [2] — out of range
    let mut flag = Vec::new();
    put_varint(&mut flag, 2);
    put_varint(&mut body, flag.len() as u64);
    body.extend_from_slice(&flag);
    assert!(matches!(
        tsenc::decode_once(&seal(MODE_COLUMNAR, &body)),
        Err(Error::Malformed { .. })
    ));
}

#[test]
fn failed_decodes_leave_the_stream_dictionary_untouched() {
    let mut enc = StreamEncoder::new();
    let mut dec = StreamDecoder::new();
    let first = sample_batch();
    let payload_a = enc.encode_batch(&first).unwrap();
    assert_eq!(dec.decode_batch(&payload_a).unwrap(), first);
    let committed = dec.dict_len();
    assert!(committed > 0);

    // A second batch arrives damaged in every possible single-byte way:
    // each attempt must fail AND leave the dictionary where it was.
    let second = vec![Reading::new(
        SensorId::new(SensorType::ParkingSpot, 9),
        19_800,
        Value::Flag(true),
    )];
    let payload_b = enc.encode_batch(&second).unwrap();
    for i in 0..payload_b.len() {
        let mut bad = payload_b.clone();
        bad[i] ^= 0xFF;
        assert!(dec.decode_batch(&bad).is_err());
        assert_eq!(dec.dict_len(), committed, "corrupt byte {i} moved the dict");
    }

    // The clean re-delivery still applies and advances both sides.
    assert_eq!(dec.decode_batch(&payload_b).unwrap(), second);
    assert_eq!(dec.dict_len(), enc.dict_len());
}
