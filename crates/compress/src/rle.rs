//! Byte-oriented run-length encoding.
//!
//! RLE is the cheapest of the "data compression" techniques the paper's §V.A
//! taxonomy admits. It serves two roles here: a baseline codec the benches
//! compare against deflate, and the codec the archive container offers for
//! incompressible-but-runny payloads (e.g. zero-padded fixed-width records).
//!
//! # Format
//!
//! A sequence of packets. Each packet starts with a control byte `c`:
//!
//! * `c < 0x80`: a *literal* packet — the next `c + 1` bytes are copied
//!   verbatim (1–128 literals).
//! * `c >= 0x80`: a *run* packet — the next byte is repeated
//!   `c - 0x80 + 3` times (3–130 repeats).
//!
//! Runs shorter than 3 bytes are emitted as literals, so encoding never
//! expands worst-case data by more than 1/128 plus one byte.

use crate::{Error, Result};

/// Minimum run length worth a run packet.
const MIN_RUN: usize = 3;
/// Maximum repeats representable by one run packet.
const MAX_RUN: usize = 130;
/// Maximum literals representable by one literal packet.
const MAX_LIT: usize = 128;

/// Run-length encodes `input`.
///
/// # Examples
///
/// ```
/// use f2c_compress::rle;
///
/// let data = b"aaaaaaaabc";
/// let packed = rle::encode(data);
/// assert!(packed.len() < data.len());
/// assert_eq!(rle::decode(&packed)?, data);
/// # Ok::<(), f2c_compress::Error>(())
/// ```
pub fn encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 8);
    let mut i = 0;
    let mut lit_start = 0;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LIT);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };

    while i < input.len() {
        // Measure the run starting at i.
        let byte = input[i];
        let mut run = 1;
        while i + run < input.len() && input[i + run] == byte && run < MAX_RUN {
            run += 1;
        }
        if run >= MIN_RUN {
            flush_literals(&mut out, lit_start, i, input);
            out.push(0x80 + (run - MIN_RUN) as u8);
            out.push(byte);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, lit_start, input.len(), input);
    out
}

/// Decodes a run-length-encoded stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`Error::TruncatedRun`] if a packet promises more bytes than the
/// stream contains.
pub fn decode(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut i = 0;
    while i < input.len() {
        let control = input[i];
        i += 1;
        if control < 0x80 {
            let n = control as usize + 1;
            if i + n > input.len() {
                return Err(Error::TruncatedRun);
            }
            out.extend_from_slice(&input[i..i + n]);
            i += n;
        } else {
            let n = (control - 0x80) as usize + MIN_RUN;
            if i >= input.len() {
                return Err(Error::TruncatedRun);
            }
            let byte = input[i];
            i += 1;
            out.resize(out.len() + n, byte);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = encode(data);
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn empty_input() {
        assert!(encode(&[]).is_empty());
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn all_same_byte_compresses_hard() {
        let data = vec![7u8; 10_000];
        let packed = encode(&data);
        assert!(packed.len() < 200, "got {}", packed.len());
        assert_eq!(decode(&packed).unwrap(), data);
    }

    #[test]
    fn short_runs_stay_literal() {
        roundtrip(b"aabbccdd");
        // 2-byte runs never pay for a run packet: output is one literal packet.
        let packed = encode(b"aabb");
        assert_eq!(packed, vec![3, b'a', b'a', b'b', b'b']);
    }

    #[test]
    fn mixed_content_roundtrips() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend_from_slice(format!("sensor-{i},").as_bytes());
            data.extend(std::iter::repeat_n(b' ', (i % 9) as usize));
        }
        roundtrip(&data);
    }

    #[test]
    fn run_longer_than_max_splits() {
        let data = vec![0u8; MAX_RUN * 3 + 17];
        roundtrip(&data);
    }

    #[test]
    fn literal_longer_than_max_splits() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        roundtrip(&data);
    }

    #[test]
    fn worst_case_expansion_is_bounded() {
        // Strictly alternating bytes: no runs at all.
        let data: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        let packed = encode(&data);
        assert!(packed.len() <= data.len() + data.len() / MAX_LIT + 1);
    }

    #[test]
    fn truncated_literal_packet_errors() {
        // Control byte promises 5 literals but only 2 follow.
        assert_eq!(decode(&[4, b'a', b'b']), Err(Error::TruncatedRun));
    }

    #[test]
    fn truncated_run_packet_errors() {
        assert_eq!(decode(&[0x85]), Err(Error::TruncatedRun));
    }
}
