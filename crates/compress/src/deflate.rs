//! The combined LZ77 + canonical-Huffman stream codec ("deflate-style").
//!
//! This is the codec the experiments use where the paper used PKWARE Zip.
//! The container layout is deliberately simple (it does not need zip
//! interoperability, only the same *ratio class* on textual sensor data):
//!
//! ```text
//! magic "FZC1"            4 bytes
//! original length         u64 LE
//! CRC-32 of original      u32 LE
//! method                  1 byte: 0 = stored, 1 = huffman-coded LZ77
//! method 0: original bytes verbatim
//! method 1: 286 lit/len code lengths, 4 bits each
//!           30 distance code lengths, 4 bits each
//!           bit-packed tokens, terminated by the end-of-block symbol
//! ```
//!
//! Code lengths fit in 4 bits because [`code_lengths`] is called with a
//! 15-bit limit... no — 15 needs 4 bits exactly (0–15), which is why the
//! header stores raw 4-bit nibbles instead of DEFLATE's run-length-coded
//! header. Streams where coding would expand the payload fall back to
//! method 0, so `compress` never loses more than the 17-byte header.

use crate::bitio::{BitReader, BitWriter};
use crate::crc32;
use crate::huffman::{code_lengths, Decoder, Encoder, MAX_CODE_LEN};
use crate::lz77::{self, SearchParams, Token};
use crate::{Error, Result};

const MAGIC: [u8; 4] = *b"FZC1";
const METHOD_STORED: u8 = 0;
const METHOD_DEFLATE: u8 = 1;

/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Size of the literal/length alphabet (literals 0–255, EOB, 29 length codes).
const NUM_LITLEN: usize = 286;
/// Size of the distance alphabet.
const NUM_DIST: usize = 30;

/// Default safety limit for declared decompressed sizes (1 GiB).
pub const DEFAULT_SIZE_LIMIT: u64 = 1 << 30;

/// Base match length for each length code 257..=285.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for each length code.
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distance for each distance code 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for each distance code.
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Compression effort presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Short hash chains, greedy parsing.
    Fast,
    /// Balanced (lazy matching).
    #[default]
    Default,
    /// Longest chains, best ratio.
    Best,
}

impl Level {
    fn params(self) -> SearchParams {
        match self {
            Level::Fast => SearchParams::FAST,
            Level::Default => SearchParams::DEFAULT,
            Level::Best => SearchParams::BEST,
        }
    }
}

/// Maps a match length (3..=258) to `(code_index, extra_bits, extra_value)`.
fn length_code(len: u16) -> (usize, u32, u64) {
    debug_assert!((3..=258).contains(&len));
    let mut code = LEN_BASE.len() - 1;
    for (i, &base) in LEN_BASE.iter().enumerate() {
        if base > len {
            code = i - 1;
            break;
        }
    }
    // Length 258 has its own dedicated code (28) in DEFLATE.
    if len == 258 {
        code = 28;
    }
    let extra_bits = LEN_EXTRA[code];
    let extra_val = u64::from(len - LEN_BASE[code]);
    (code, extra_bits, extra_val)
}

/// Maps a distance (1..=32768) to `(code_index, extra_bits, extra_value)`.
fn distance_code(dist: u16) -> (usize, u32, u64) {
    debug_assert!(dist >= 1);
    let mut code = DIST_BASE.len() - 1;
    for (i, &base) in DIST_BASE.iter().enumerate() {
        if u32::from(base) > u32::from(dist) {
            code = i - 1;
            break;
        }
    }
    let extra_bits = DIST_EXTRA[code];
    let extra_val = u64::from(dist - DIST_BASE[code]);
    (code, extra_bits, extra_val)
}

/// Compresses `input` at [`Level::Default`].
///
/// # Examples
///
/// ```
/// let data = b"noise,58.2dB,sensor-17\n".repeat(64);
/// let packed = f2c_compress::compress(&data)?;
/// assert!(packed.len() < data.len() / 3);
/// # Ok::<(), f2c_compress::Error>(())
/// ```
pub fn compress(input: &[u8]) -> Result<Vec<u8>> {
    compress_with(input, Level::Default)
}

/// Compresses `input` at the given effort level.
///
/// Never fails today (the `Result` keeps the signature stable for future
/// streaming variants); the stored-method fallback bounds expansion to the
/// 17-byte header.
pub fn compress_with(input: &[u8], level: Level) -> Result<Vec<u8>> {
    let crc = crc32::checksum(input);
    let coded = encode_body(input, level);

    let mut w = BitWriter::with_capacity(coded.as_ref().map_or(input.len(), Vec::len) + 24);
    for &b in &MAGIC {
        w.write_byte(b);
    }
    w.write_u64(input.len() as u64);
    w.write_u32(crc);
    match coded {
        Some(body) if body.len() < input.len() => {
            w.write_byte(METHOD_DEFLATE);
            let mut out = w.into_bytes();
            out.extend_from_slice(&body);
            Ok(out)
        }
        _ => {
            w.write_byte(METHOD_STORED);
            let mut out = w.into_bytes();
            out.extend_from_slice(input);
            Ok(out)
        }
    }
}

/// Entropy-codes the LZ77 token stream; `None` if the input is empty.
fn encode_body(input: &[u8], level: Level) -> Option<Vec<u8>> {
    if input.is_empty() {
        return None;
    }
    let tokens = lz77::tokenize(input, &level.params());

    // Pass 1: frequencies.
    let mut litlen_freq = vec![0u64; NUM_LITLEN];
    let mut dist_freq = vec![0u64; NUM_DIST];
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { length, distance } => {
                litlen_freq[257 + length_code(length).0] += 1;
                dist_freq[distance_code(distance).0] += 1;
            }
        }
    }
    litlen_freq[EOB] = 1;

    let litlen_lens = code_lengths(&litlen_freq, MAX_CODE_LEN);
    let dist_lens = code_lengths(&dist_freq, MAX_CODE_LEN);
    let litlen_enc = Encoder::from_lengths(&litlen_lens);
    let dist_enc = Encoder::from_lengths(&dist_lens);

    // Pass 2: emit header nibbles then coded tokens.
    let mut w = BitWriter::with_capacity(input.len() / 2 + 256);
    for &l in &litlen_lens {
        w.write_bits(u64::from(l), 4);
    }
    for &l in &dist_lens {
        w.write_bits(u64::from(l), 4);
    }
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_enc.encode(&mut w, b as usize),
            Token::Match { length, distance } => {
                let (lc, lx, lv) = length_code(length);
                litlen_enc.encode(&mut w, 257 + lc);
                w.write_bits(lv, lx);
                let (dc, dx, dv) = distance_code(distance);
                dist_enc.encode(&mut w, dc);
                w.write_bits(dv, dx);
            }
        }
    }
    litlen_enc.encode(&mut w, EOB);
    Some(w.into_bytes())
}

/// Decompresses a stream produced by [`compress`], with the default 1 GiB
/// declared-size limit.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    decompress_with_limit(input, DEFAULT_SIZE_LIMIT)
}

/// Decompresses with an explicit declared-size safety limit.
///
/// # Errors
///
/// * [`Error::BadMagic`] / [`Error::UnexpectedEof`] on malformed input,
/// * [`Error::SizeLimitExceeded`] if the header declares more than `limit`,
/// * [`Error::ChecksumMismatch`] if the payload was corrupted,
/// * [`Error::InvalidSymbol`] / [`Error::InvalidBackReference`] on corrupt
///   coded bodies.
pub fn decompress_with_limit(input: &[u8], limit: u64) -> Result<Vec<u8>> {
    if input.len() < 4 {
        return Err(Error::UnexpectedEof {
            offset: input.len(),
        });
    }
    if input[..4] != MAGIC {
        return Err(Error::BadMagic {
            found: [input[0], input[1], input[2], input[3]],
        });
    }
    let mut r = BitReader::new(&input[4..]);
    let declared = r.read_u64()?;
    let crc_expected = r.read_u32()?;
    let method = r.read_bits(8)? as u8;
    if declared > limit {
        return Err(Error::SizeLimitExceeded { declared, limit });
    }
    let out = match method {
        METHOD_STORED => {
            let body = &input[4 + 13..];
            if (body.len() as u64) < declared {
                return Err(Error::UnexpectedEof {
                    offset: input.len(),
                });
            }
            body[..declared as usize].to_vec()
        }
        METHOD_DEFLATE => decode_body(&mut r, declared as usize)?,
        other => {
            return Err(Error::SymbolOutOfRange {
                symbol: u16::from(other),
            })
        }
    };
    let crc_actual = crc32::checksum(&out);
    if crc_actual != crc_expected {
        return Err(Error::ChecksumMismatch {
            expected: crc_expected,
            actual: crc_actual,
        });
    }
    Ok(out)
}

fn decode_body(r: &mut BitReader<'_>, expected_len: usize) -> Result<Vec<u8>> {
    let mut litlen_lens = vec![0u8; NUM_LITLEN];
    for l in litlen_lens.iter_mut() {
        *l = r.read_bits(4)? as u8;
    }
    let mut dist_lens = vec![0u8; NUM_DIST];
    for l in dist_lens.iter_mut() {
        *l = r.read_bits(4)? as u8;
    }
    let litlen_dec = Decoder::from_lengths(&litlen_lens);
    let dist_dec = Decoder::from_lengths(&dist_lens);

    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    loop {
        let sym = litlen_dec.decode(r)? as usize;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let code = sym - 257;
            if code >= LEN_BASE.len() {
                return Err(Error::SymbolOutOfRange { symbol: sym as u16 });
            }
            let len = LEN_BASE[code] as usize + r.read_bits(LEN_EXTRA[code])? as usize;
            let dsym = dist_dec.decode(r)? as usize;
            if dsym >= DIST_BASE.len() {
                return Err(Error::SymbolOutOfRange {
                    symbol: dsym as u16,
                });
            }
            let dist = DIST_BASE[dsym] as usize + r.read_bits(DIST_EXTRA[dsym])? as usize;
            if dist == 0 || dist > out.len() {
                return Err(Error::InvalidBackReference {
                    distance: dist,
                    produced: out.len(),
                });
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > expected_len {
            return Err(Error::UnexpectedEof { offset: out.len() });
        }
    }
    if out.len() != expected_len {
        return Err(Error::UnexpectedEof { offset: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_at(data: &[u8], level: Level) {
        let packed = compress_with(data, level).unwrap();
        assert_eq!(decompress(&packed).unwrap(), data, "level {level:?}");
    }

    fn roundtrip(data: &[u8]) {
        roundtrip_at(data, Level::Fast);
        roundtrip_at(data, Level::Default);
        roundtrip_at(data, Level::Best);
    }

    #[test]
    fn empty_input() {
        roundtrip(b"");
        let packed = compress(b"").unwrap();
        assert_eq!(packed.len(), 17); // header only
    }

    #[test]
    fn tiny_inputs_use_stored_method() {
        for data in [&b"x"[..], b"ab", b"xyz"] {
            let packed = compress(data).unwrap();
            assert_eq!(packed[16], METHOD_STORED);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data = b"parking,section-41,occupied,2017-03-01T08:15:00Z\n".repeat(200);
        let packed = compress(&data).unwrap();
        assert!(
            packed.len() * 10 < data.len(),
            "expected >90% reduction, got {} -> {}",
            data.len(),
            packed.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn sensor_csv_hits_zip_class_ratio() {
        // The paper reports ~78% reduction on daily observation dumps.
        let mut data = Vec::new();
        for i in 0..5000u32 {
            data.extend_from_slice(
                format!(
                    "urban.weather.{:06};2017-03-01T{:02}:{:02}:00Z;temp={:.1};hum={};wind={:.1}\n",
                    i % 900,
                    (i / 60) % 24,
                    i % 60,
                    15.0 + (i % 70) as f64 / 10.0,
                    40 + i % 30,
                    (i % 95) as f64 / 10.0
                )
                .as_bytes(),
            );
        }
        let packed = compress(&data).unwrap();
        let reduction = 1.0 - packed.len() as f64 / data.len() as f64;
        assert!(
            reduction > 0.70,
            "expected zip-class (>70%) reduction, got {:.1}%",
            reduction * 100.0
        );
        roundtrip(&data);
    }

    #[test]
    fn incompressible_data_falls_back_to_stored() {
        // Pseudo-random bytes: coding cannot win, stored keeps us honest.
        let mut state = 88172645463325252u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 0xFF) as u8
            })
            .collect();
        let packed = compress(&data).unwrap();
        assert!(packed.len() <= data.len() + 17);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn binary_with_long_runs() {
        let mut data = vec![0u8; 5000];
        data.extend_from_slice(b"midmarker");
        data.extend(vec![0xFFu8; 5000]);
        roundtrip(&data);
    }

    #[test]
    fn all_byte_values_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn max_length_matches_roundtrip() {
        // Long uniform run exercises the dedicated 258-length code.
        let data = vec![b'z'; 100_000];
        let packed = compress(&data).unwrap();
        assert!(packed.len() < 1000);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut packed = compress(b"hello hello hello hello").unwrap();
        packed[0] = b'X';
        assert!(matches!(decompress(&packed), Err(Error::BadMagic { .. })));
    }

    #[test]
    fn corrupted_body_detected_by_crc_or_decode() {
        let data = b"garbage,container-glass,fill=73%\n".repeat(100);
        let packed = compress(&data).unwrap();
        // Flip a bit somewhere in the coded body.
        for &pos in &[20usize, packed.len() / 2, packed.len() - 2] {
            let mut bad = packed.clone();
            bad[pos] ^= 0x10;
            assert!(decompress(&bad).is_err(), "flip at {pos} went undetected");
        }
    }

    #[test]
    fn truncated_stream_rejected() {
        let packed = compress(&b"energy,meter,22.5kWh\n".repeat(50)).unwrap();
        for cut in [0, 3, 10, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn size_limit_is_enforced() {
        let data = vec![b'a'; 1024];
        let packed = compress(&data).unwrap();
        assert!(matches!(
            decompress_with_limit(&packed, 512),
            Err(Error::SizeLimitExceeded {
                declared: 1024,
                limit: 512
            })
        ));
    }

    #[test]
    fn length_code_table_is_consistent() {
        for len in 3..=258u16 {
            let (code, extra, val) = length_code(len);
            assert!(code < 29);
            let reconstructed = LEN_BASE[code] as u64 + val;
            assert_eq!(reconstructed, u64::from(len), "len {len}");
            assert!(val < (1u64 << extra.max(1)) || extra == 0 && val == 0);
        }
    }

    #[test]
    fn distance_code_table_is_consistent() {
        for dist in (1..=32768u32).step_by(7) {
            let d = dist.min(32768) as u16;
            let (code, extra, val) = distance_code(d);
            assert!(code < 30);
            assert_eq!(DIST_BASE[code] as u64 + val, u64::from(d), "dist {d}");
            if extra == 0 {
                assert_eq!(val, 0);
            }
        }
    }

    #[test]
    fn levels_trade_ratio_monotonically_on_text() {
        let data = b"the city of barcelona generates sensor data all day long ".repeat(300);
        let fast = compress_with(&data, Level::Fast).unwrap().len();
        let best = compress_with(&data, Level::Best).unwrap().len();
        assert!(best <= fast, "best {best} should be <= fast {fast}");
    }
}
