//! Compression-ratio bookkeeping shared by the experiments.
//!
//! The paper's §V.B reports compression as a *reduction percentage* ("78 %
//! of efficiency": 1,360,043,206 B → 295,428,463 B). [`CompressionStats`]
//! accumulates (original, compressed) byte counts across many payloads and
//! exposes both conventions — reduction percentage and compressed/original
//! ratio — so report code never re-derives them inconsistently.

/// Accumulated original/compressed byte totals.
///
/// # Examples
///
/// ```
/// use f2c_compress::CompressionStats;
///
/// let mut stats = CompressionStats::new();
/// stats.record(1000, 220);
/// stats.record(500, 110);
/// assert_eq!(stats.original_bytes(), 1500);
/// assert_eq!(stats.compressed_bytes(), 330);
/// assert!((stats.reduction_percent() - 78.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    original: u64,
    compressed: u64,
    payloads: u64,
}

impl CompressionStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one payload's sizes.
    pub fn record(&mut self, original: u64, compressed: u64) {
        self.original += original;
        self.compressed += compressed;
        self.payloads += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.original += other.original;
        self.compressed += other.compressed;
        self.payloads += other.payloads;
    }

    /// Total original bytes seen.
    pub fn original_bytes(&self) -> u64 {
        self.original
    }

    /// Total compressed bytes produced.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed
    }

    /// Number of payloads recorded.
    pub fn payload_count(&self) -> u64 {
        self.payloads
    }

    /// `compressed / original` (1.0 when nothing was recorded).
    pub fn ratio(&self) -> f64 {
        if self.original == 0 {
            1.0
        } else {
            self.compressed as f64 / self.original as f64
        }
    }

    /// Size reduction as a percentage — the paper's convention
    /// (`(1 - ratio) * 100`).
    pub fn reduction_percent(&self) -> f64 {
        (1.0 - self.ratio()) * 100.0
    }
}

/// Converts a byte count to decimal gigabytes (the paper's "GB" unit).
pub fn bytes_to_gb(bytes: u64) -> f64 {
    bytes as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = CompressionStats::new();
        assert_eq!(s.ratio(), 1.0);
        assert_eq!(s.reduction_percent(), 0.0);
        assert_eq!(s.payload_count(), 0);
    }

    #[test]
    fn paper_headline_number() {
        // §V.B: 1,360,043,206 B -> 295,428,463 B, "almost 78%".
        let mut s = CompressionStats::new();
        s.record(1_360_043_206, 295_428_463);
        assert!((s.reduction_percent() - 78.28).abs() < 0.01);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CompressionStats::new();
        a.record(100, 40);
        let mut b = CompressionStats::new();
        b.record(300, 60);
        a.merge(&b);
        assert_eq!(a.original_bytes(), 400);
        assert_eq!(a.compressed_bytes(), 100);
        assert_eq!(a.payload_count(), 2);
        assert!((a.ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gb_conversion_is_decimal() {
        assert!((bytes_to_gb(8_583_503_168) - 8.583503168).abs() < 1e-9);
    }
}
