//! LZ77 tokenization with a hash-chain match finder and optional lazy
//! matching, in the style of zlib's deflate front end.
//!
//! The tokenizer turns a byte slice into a stream of [`Token`]s — literals
//! and `(length, distance)` back-references into a sliding window of the
//! previous [`WINDOW_SIZE`] bytes. The [`deflate`](crate::deflate) module
//! entropy-codes that stream; [`reconstruct`] inverts it (and is what the
//! decoder uses).

use crate::{Error, Result};

/// Sliding-window size: matches may reach at most this far back.
pub const WINDOW_SIZE: usize = 32 * 1024;
/// Shortest back-reference worth emitting.
pub const MIN_MATCH: usize = 3;
/// Longest representable back-reference.
pub const MAX_MATCH: usize = 258;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single verbatim byte.
    Literal(u8),
    /// Copy `length` bytes starting `distance` bytes back in the output.
    Match {
        /// Number of bytes to copy, `MIN_MATCH..=MAX_MATCH`.
        length: u16,
        /// How far back the copy starts, `1..=WINDOW_SIZE`.
        distance: u16,
    },
}

/// Match-finder effort knobs; see [`crate::Level`] for the public presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchParams {
    /// Maximum number of chain candidates examined per position.
    pub max_chain: usize,
    /// Whether to defer a match by one byte when the next position matches
    /// longer (zlib-style lazy matching).
    pub lazy: bool,
    /// Stop searching early once a match of at least this length is found.
    pub good_enough: usize,
}

impl SearchParams {
    /// Fast: short chains, greedy.
    pub const FAST: SearchParams = SearchParams {
        max_chain: 16,
        lazy: false,
        good_enough: 32,
    };
    /// Balanced: the default.
    pub const DEFAULT: SearchParams = SearchParams {
        max_chain: 128,
        lazy: true,
        good_enough: 128,
    };
    /// Best ratio: long chains, lazy.
    pub const BEST: SearchParams = SearchParams {
        max_chain: 1024,
        lazy: true,
        good_enough: MAX_MATCH,
    };
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from(data[i]) | (u32::from(data[i + 1]) << 8) | (u32::from(data[i + 2]) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder over the whole input.
struct Chains {
    /// `head[h]` = most recent position with hash `h`, +1 (0 = none).
    head: Vec<u32>,
    /// `prev[i]` = previous position with the same hash as `i`, +1.
    prev: Vec<u32>,
}

impl Chains {
    fn new(len: usize) -> Self {
        Self {
            head: vec![0; HASH_SIZE],
            prev: vec![0; len],
        }
    }

    #[inline]
    fn insert(&mut self, data: &[u8], i: usize) {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            self.prev[i] = self.head[h];
            self.head[h] = (i + 1) as u32;
        }
    }

    /// Longest match for position `i`, or `None`.
    fn longest_match(
        &self,
        data: &[u8],
        i: usize,
        params: &SearchParams,
    ) -> Option<(usize, usize)> {
        if i + MIN_MATCH > data.len() {
            return None;
        }
        let max_len = MAX_MATCH.min(data.len() - i);
        let window_floor = i.saturating_sub(WINDOW_SIZE);
        let mut cand = self.head[hash3(data, i)];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0;
        let mut chain = params.max_chain;
        while cand != 0 && chain > 0 {
            let j = (cand - 1) as usize;
            if j < window_floor || j >= i {
                break;
            }
            // Quick reject: check the byte just past the current best.
            if i + best_len < data.len() && data[j + best_len] == data[i + best_len] {
                let mut len = 0;
                while len < max_len && data[j + len] == data[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - j;
                    if len >= params.good_enough || len == max_len {
                        break;
                    }
                }
            }
            cand = self.prev[j];
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            Some((best_len, best_dist))
        } else {
            None
        }
    }
}

/// Tokenizes `input` into literals and back-references.
///
/// # Examples
///
/// ```
/// use f2c_compress::lz77::{tokenize, reconstruct, SearchParams};
///
/// let data = b"abcabcabcabc";
/// let tokens = tokenize(data, &SearchParams::DEFAULT);
/// assert!(tokens.len() < data.len()); // back-references found
/// assert_eq!(reconstruct(&tokens)?, data);
/// # Ok::<(), f2c_compress::Error>(())
/// ```
pub fn tokenize(input: &[u8], params: &SearchParams) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(input.len() / 3 + 4);
    let mut chains = Chains::new(input.len());
    let mut i = 0;
    while i < input.len() {
        let found = chains.longest_match(input, i, params);
        match found {
            Some((len, dist)) => {
                // Lazy matching: if the next position matches strictly
                // longer, emit this byte as a literal instead.
                let deferred = if params.lazy && len < params.good_enough && i + 1 < input.len() {
                    chains.insert(input, i);
                    match chains.longest_match(input, i + 1, params) {
                        Some((len2, _)) if len2 > len => {
                            tokens.push(Token::Literal(input[i]));
                            i += 1;
                            true
                        }
                        _ => false,
                    }
                } else {
                    chains.insert(input, i);
                    false
                };
                if !deferred {
                    tokens.push(Token::Match {
                        length: len as u16,
                        distance: dist as u16,
                    });
                    // Index every position the match covers (the first was
                    // inserted above).
                    for k in i + 1..i + len {
                        chains.insert(input, k);
                    }
                    i += len;
                }
            }
            None => {
                chains.insert(input, i);
                tokens.push(Token::Literal(input[i]));
                i += 1;
            }
        }
    }
    tokens
}

/// Expands a token stream back into bytes.
///
/// # Errors
///
/// Returns [`Error::InvalidBackReference`] when a match reaches before the
/// start of the produced output, which indicates stream corruption.
pub fn reconstruct(tokens: &[Token]) -> Result<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let dist = distance as usize;
                let len = length as usize;
                if dist == 0 || dist > out.len() {
                    return Err(Error::InvalidBackReference {
                        distance: dist,
                        produced: out.len(),
                    });
                }
                let start = out.len() - dist;
                // Overlapping copies are valid (e.g. dist 1 repeats a byte).
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_with(data: &[u8], params: &SearchParams) {
        let tokens = tokenize(data, params);
        assert_eq!(reconstruct(&tokens).unwrap(), data);
    }

    fn roundtrip(data: &[u8]) {
        roundtrip_with(data, &SearchParams::FAST);
        roundtrip_with(data, &SearchParams::DEFAULT);
        roundtrip_with(data, &SearchParams::BEST);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_text_finds_matches() {
        let data = b"the fog the fog the fog the fog".to_vec();
        let tokens = tokenize(&data, &SearchParams::DEFAULT);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one back-reference: {tokens:?}"
        );
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." should compress to one literal + one long overlapping match.
        let data = vec![b'a'; 1000];
        let tokens = tokenize(&data, &SearchParams::DEFAULT);
        assert!(tokens.len() <= 1 + 1000 / MIN_MATCH);
        roundtrip(&data);
    }

    #[test]
    fn csv_like_sensor_payload() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!(
                    "ENERGY.electricity_meter.{:05},2017-03-01T{:02}:00:00Z,{}.{}\n",
                    i % 700,
                    i % 24,
                    20 + i % 5,
                    i % 10
                )
                .as_bytes(),
            );
        }
        let tokens = tokenize(&data, &SearchParams::DEFAULT);
        let matched: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Match { length, .. } => *length as usize,
                _ => 0,
            })
            .sum();
        assert!(
            matched * 10 > data.len() * 8,
            "expected >80% of bytes covered by matches, got {}/{}",
            matched,
            data.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn match_lengths_and_distances_in_bounds() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.push((i % 251) as u8);
            if i % 97 == 0 {
                data.extend_from_slice(b"repeated-block-repeated-block");
            }
        }
        for t in tokenize(&data, &SearchParams::BEST) {
            if let Token::Match { length, distance } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(length as usize)));
                assert!((1..=WINDOW_SIZE).contains(&(distance as usize)));
            }
        }
    }

    #[test]
    fn window_limit_respected_across_far_repeats() {
        // Two identical blocks separated by > WINDOW_SIZE of noise: the
        // second block must not reference the first.
        let block = b"unique-marker-block-0123456789".to_vec();
        let mut data = block.clone();
        data.extend((0..WINDOW_SIZE + 100).map(|i| (i * 7 % 256) as u8));
        data.extend_from_slice(&block);
        roundtrip(&data);
    }

    #[test]
    fn reconstruct_rejects_bad_distance() {
        let tokens = [Token::Match {
            length: 3,
            distance: 5,
        }];
        assert!(matches!(
            reconstruct(&tokens),
            Err(Error::InvalidBackReference { .. })
        ));
    }

    #[test]
    fn lazy_matching_never_hurts_correctness() {
        let data: Vec<u8> = (0..5000)
            .map(|i| ((i * i) % 7 + (i % 13) * 3) as u8)
            .collect();
        roundtrip(&data);
    }
}
