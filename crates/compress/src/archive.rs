//! A minimal multi-entry archive container (the role zip files play in the
//! paper's §V.B experiment: fog layer 1 batches one flush period's worth of
//! observation files and ships a single compressed archive upward).
//!
//! # Format
//!
//! ```text
//! magic "FZA1"                    4 bytes
//! entry count                     u32 LE
//! per entry:
//!   name length                   u16 LE
//!   name bytes (UTF-8)
//!   method                        1 byte (0 stored, 1 deflate, 2 rle)
//!   original size                 u64 LE
//!   stored size                   u64 LE
//!   CRC-32 of original            u32 LE
//!   stored bytes
//! ```

use std::collections::BTreeMap;

use crate::{crc32, deflate, rle, Error, Result};

const MAGIC: [u8; 4] = *b"FZA1";

/// Per-entry compression method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Store verbatim.
    Stored,
    /// LZ77 + Huffman ([`crate::deflate`]).
    #[default]
    Deflate,
    /// Run-length encoding ([`crate::rle`]).
    Rle,
}

impl Method {
    fn to_byte(self) -> u8 {
        match self {
            Method::Stored => 0,
            Method::Deflate => 1,
            Method::Rle => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(Method::Stored),
            1 => Ok(Method::Deflate),
            2 => Ok(Method::Rle),
            other => Err(Error::SymbolOutOfRange {
                symbol: u16::from(other),
            }),
        }
    }
}

/// One file inside an [`Archive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveEntry {
    name: String,
    method: Method,
    original_len: u64,
    crc: u32,
    stored: Vec<u8>,
}

impl ArchiveEntry {
    /// Entry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compression method used for this entry.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Size of the original (uncompressed) payload.
    pub fn original_len(&self) -> u64 {
        self.original_len
    }

    /// Size of the payload as stored in the archive.
    pub fn stored_len(&self) -> u64 {
        self.stored.len() as u64
    }

    /// Decodes and integrity-checks the payload.
    pub fn extract(&self) -> Result<Vec<u8>> {
        let data = match self.method {
            Method::Stored => self.stored.clone(),
            Method::Deflate => deflate::decompress(&self.stored)?,
            Method::Rle => rle::decode(&self.stored)?,
        };
        let actual = crc32::checksum(&data);
        if actual != self.crc {
            return Err(Error::ChecksumMismatch {
                expected: self.crc,
                actual,
            });
        }
        if data.len() as u64 != self.original_len {
            return Err(Error::UnexpectedEof { offset: data.len() });
        }
        Ok(data)
    }
}

/// An in-memory multi-entry archive.
///
/// # Examples
///
/// ```
/// use f2c_compress::{Archive, Method};
///
/// let mut ar = Archive::new();
/// ar.add("fog-node-07/energy.csv", b"22.5;22.5;22.5\n".repeat(50).as_slice(), Method::Deflate)?;
/// ar.add("fog-node-07/raw.bin", &[1, 2, 3], Method::Stored)?;
///
/// let bytes = ar.to_bytes();
/// let back = Archive::from_bytes(&bytes)?;
/// assert_eq!(back.entry("fog-node-07/raw.bin").unwrap().extract()?, vec![1, 2, 3]);
/// # Ok::<(), f2c_compress::Error>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Archive {
    entries: BTreeMap<String, ArchiveEntry>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `data` under `name` with the requested `method`.
    ///
    /// If the chosen method expands the payload, the entry silently falls
    /// back to [`Method::Stored`] (mirroring zip's behaviour).
    ///
    /// # Errors
    ///
    /// [`Error::BadEntryName`] if `name` is empty or already present.
    pub fn add(&mut self, name: &str, data: &[u8], method: Method) -> Result<&ArchiveEntry> {
        if name.is_empty() || self.entries.contains_key(name) {
            return Err(Error::BadEntryName {
                name: name.to_owned(),
            });
        }
        let (method, stored) = match method {
            Method::Stored => (Method::Stored, data.to_vec()),
            Method::Deflate => {
                let packed = deflate::compress(data)?;
                if packed.len() < data.len() {
                    (Method::Deflate, packed)
                } else {
                    (Method::Stored, data.to_vec())
                }
            }
            Method::Rle => {
                let packed = rle::encode(data);
                if packed.len() < data.len() {
                    (Method::Rle, packed)
                } else {
                    (Method::Stored, data.to_vec())
                }
            }
        };
        let entry = ArchiveEntry {
            name: name.to_owned(),
            method,
            original_len: data.len() as u64,
            crc: crc32::checksum(data),
            stored,
        };
        Ok(self.entries.entry(name.to_owned()).or_insert(entry))
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&ArchiveEntry> {
        self.entries.get(name)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ArchiveEntry> {
        self.entries.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of original payload sizes.
    pub fn total_original_len(&self) -> u64 {
        self.entries.values().map(ArchiveEntry::original_len).sum()
    }

    /// Sum of stored payload sizes (excluding per-entry headers).
    pub fn total_stored_len(&self) -> u64 {
        self.entries.values().map(ArchiveEntry::stored_len).sum()
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_stored_len() as usize + 64);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in self.entries.values() {
            out.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
            out.extend_from_slice(e.name.as_bytes());
            out.push(e.method.to_byte());
            out.extend_from_slice(&e.original_len.to_le_bytes());
            out.extend_from_slice(&(e.stored.len() as u64).to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
            out.extend_from_slice(&e.stored);
        }
        out
    }

    /// Parses an archive produced by [`Archive::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > data.len() {
                return Err(Error::UnexpectedEof { offset: data.len() });
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 4)?;
        if magic != MAGIC {
            return Err(Error::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).map_err(|e| {
                Error::BadEntryName {
                    name: String::from_utf8_lossy(e.as_bytes()).into_owned(),
                }
            })?;
            let method = Method::from_byte(take(&mut pos, 1)?[0])?;
            let original_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
            let stored_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
            let stored = take(&mut pos, stored_len)?.to_vec();
            if name.is_empty() || entries.contains_key(&name) {
                return Err(Error::BadEntryName { name });
            }
            entries.insert(
                name.clone(),
                ArchiveEntry {
                    name,
                    method,
                    original_len,
                    crc,
                    stored,
                },
            );
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_archive_roundtrips() {
        let ar = Archive::new();
        assert!(ar.is_empty());
        let back = Archive::from_bytes(&ar.to_bytes()).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn multi_entry_roundtrip_all_methods() {
        let mut ar = Archive::new();
        let text = b"noise;67.2;section-12\n".repeat(100);
        let runs = vec![0u8; 2000];
        let rand: Vec<u8> = (0..500).map(|i| (i * 97 % 256) as u8).collect();
        ar.add("text.csv", &text, Method::Deflate).unwrap();
        ar.add("runs.bin", &runs, Method::Rle).unwrap();
        ar.add("rand.bin", &rand, Method::Stored).unwrap();

        let back = Archive::from_bytes(&ar.to_bytes()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.entry("text.csv").unwrap().extract().unwrap(), text);
        assert_eq!(back.entry("runs.bin").unwrap().extract().unwrap(), runs);
        assert_eq!(back.entry("rand.bin").unwrap().extract().unwrap(), rand);
        assert!(back.entry("text.csv").unwrap().stored_len() < text.len() as u64);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ar = Archive::new();
        ar.add("a", b"1", Method::Stored).unwrap();
        assert!(matches!(
            ar.add("a", b"2", Method::Stored),
            Err(Error::BadEntryName { .. })
        ));
    }

    #[test]
    fn empty_name_rejected() {
        let mut ar = Archive::new();
        assert!(ar.add("", b"x", Method::Stored).is_err());
    }

    #[test]
    fn incompressible_entry_falls_back_to_stored() {
        let mut ar = Archive::new();
        let data: Vec<u8> = (0..64).map(|i| (i * 131 % 251) as u8).collect();
        let e = ar.add("x", &data, Method::Deflate).unwrap();
        assert_eq!(e.method(), Method::Stored);
    }

    #[test]
    fn corrupt_entry_payload_detected() {
        let mut ar = Archive::new();
        ar.add("f", &b"abcabcabcabc".repeat(20), Method::Deflate)
            .unwrap();
        let mut bytes = ar.to_bytes();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF;
        let back = Archive::from_bytes(&bytes).unwrap();
        assert!(back.entry("f").unwrap().extract().is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut ar = Archive::new();
        ar.add("f", b"payload", Method::Stored).unwrap();
        let bytes = ar.to_bytes();
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(Archive::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn totals_account_all_entries() {
        let mut ar = Archive::new();
        ar.add("a", &[0u8; 100], Method::Rle).unwrap();
        ar.add("b", &[1u8; 50], Method::Stored).unwrap();
        assert_eq!(ar.total_original_len(), 150);
        assert!(ar.total_stored_len() < 150);
    }
}
