//! LSB-first bit-level I/O.
//!
//! Both the Huffman coder and the deflate-style stream write codes one bit at
//! a time, least-significant bit first (the same orientation DEFLATE uses).
//! [`BitWriter`] accumulates bits into a byte vector; [`BitReader`] replays
//! them and reports a precise offset on truncation.

use crate::{Error, Result};

/// Accumulates bits (LSB-first) into an owned byte buffer.
///
/// # Examples
///
/// ```
/// use f2c_compress::bitio::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b1, 1);
/// let bytes = w.into_bytes();
/// assert_eq!(bytes, vec![0b0000_1101]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits accumulated but not yet flushed to `buf` (low bits valid).
    acc: u64,
    /// Number of valid bits in `acc` (0..=63).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `count` bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 57` (the accumulator would overflow) — callers in
    /// this crate never need more than 16 bits per call.
    pub fn write_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 57, "write_bits supports at most 57 bits per call");
        let mask = if count == 0 { 0 } else { (1u64 << count) - 1 };
        self.acc |= (value & mask) << self.nbits;
        self.nbits += count;
        while self.nbits >= 8 {
            self.buf.push((self.acc & 0xFF) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Appends a whole byte (8 bits).
    pub fn write_byte(&mut self, byte: u8) {
        self.write_bits(u64::from(byte), 8);
    }

    /// Appends a `u32` as 32 LSB-first bits (i.e. little-endian).
    pub fn write_u32(&mut self, value: u32) {
        self.write_bits(u64::from(value & 0xFFFF), 16);
        self.write_bits(u64::from(value >> 16), 16);
    }

    /// Appends a `u64` little-endian.
    pub fn write_u64(&mut self, value: u64) {
        self.write_u32((value & 0xFFFF_FFFF) as u32);
        self.write_u32((value >> 32) as u32);
    }

    /// Number of complete bytes written so far (excluding buffered bits).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.buf.len() as u64 * 8 + u64::from(self.nbits)
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.write_bits(0, pad);
        }
    }

    /// Flushes any partial byte (zero-padded) and returns the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.buf
    }
}

/// Replays a byte slice bit by bit, LSB-first.
///
/// # Examples
///
/// ```
/// use f2c_compress::bitio::BitReader;
///
/// let mut r = BitReader::new(&[0b0000_1101]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(1)?, 1);
/// # Ok::<(), f2c_compress::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte to load into the accumulator.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.data.len() {
            self.acc |= u64::from(self.data[self.pos]) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `count` bits (LSB-first). Errors with [`Error::UnexpectedEof`]
    /// if fewer than `count` bits remain.
    pub fn read_bits(&mut self, count: u32) -> Result<u64> {
        assert!(count <= 57, "read_bits supports at most 57 bits per call");
        self.refill();
        if self.nbits < count {
            return Err(Error::UnexpectedEof { offset: self.pos });
        }
        let mask = if count == 0 { 0 } else { (1u64 << count) - 1 };
        let out = self.acc & mask;
        self.acc >>= count;
        self.nbits -= count;
        Ok(out)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Result<u8> {
        Ok(self.read_bits(1)? as u8)
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32> {
        let lo = self.read_bits(16)?;
        let hi = self.read_bits(16)?;
        Ok((lo | (hi << 16)) as u32)
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64> {
        let lo = u64::from(self.read_u32()?);
        let hi = u64::from(self.read_u32()?);
        Ok(lo | (hi << 32))
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.nbits % 8;
        self.acc >>= drop;
        self.nbits -= drop;
    }

    /// Number of bits still available.
    pub fn remaining_bits(&self) -> u64 {
        u64::from(self.nbits) + (self.data.len() - self.pos) as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [1u8, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        for &b in &pattern {
            w.write_bits(u64::from(b), 1);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0x2A, 7);
        w.write_bits(0x1FFF, 13);
        w.write_bits(0x3, 2);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(0x0123_4567_89AB_CDEF);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(7).unwrap(), 0x2A);
        assert_eq!(r.read_bits(13).unwrap(), 0x1FFF);
        assert_eq!(r.read_bits(2).unwrap(), 0x3);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn eof_reports_offset() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        let err = r.read_bits(1).unwrap_err();
        assert_eq!(err, Error::UnexpectedEof { offset: 1 });
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_byte(0xAB);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01, 0xAB]);
    }

    #[test]
    fn reader_align_discards_partial_byte() {
        let mut r = BitReader::new(&[0b1010_1010, 0xCC]);
        assert_eq!(r.read_bits(3).unwrap(), 0b010);
        r.align_to_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xCC);
    }

    #[test]
    fn bit_len_counts_partial_bits() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.write_byte(0);
        assert_eq!(w.bit_len(), 10);
        assert_eq!(w.byte_len(), 1);
    }

    #[test]
    fn remaining_bits_tracks_consumption() {
        let mut r = BitReader::new(&[0, 0, 0]);
        assert_eq!(r.remaining_bits(), 24);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining_bits(), 19);
    }

    #[test]
    fn zero_width_reads_and_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        w.write_bits(0b1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.read_bit().unwrap(), 1);
    }
}
