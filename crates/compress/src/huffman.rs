//! Length-limited canonical Huffman coding.
//!
//! Code lengths are computed with the *package-merge* algorithm, which yields
//! an optimal prefix code under a maximum-length constraint (15 bits here,
//! the same limit DEFLATE uses). Codes are then assigned canonically —
//! shorter codes first, ties broken by symbol value — so a decoder can be
//! rebuilt from the length array alone, which is all the stream header
//! stores.

use crate::bitio::{BitReader, BitWriter};
use crate::{Error, Result};

/// Maximum code length supported by [`code_lengths`] and the stream format.
pub const MAX_CODE_LEN: u8 = 15;

/// Computes optimal length-limited code lengths for `freqs`.
///
/// Symbols with zero frequency get length 0 (absent from the code). If only
/// one symbol occurs it is assigned length 1.
///
/// # Panics
///
/// Panics if `limit` is 0, exceeds [`MAX_CODE_LEN`], or cannot accommodate
/// the number of distinct symbols (`count > 2^limit`).
///
/// # Examples
///
/// ```
/// use f2c_compress::huffman::code_lengths;
///
/// // One very frequent symbol gets the shortest code.
/// let lens = code_lengths(&[90, 5, 5], 15);
/// assert!(lens[0] <= lens[1] && lens[0] <= lens[2]);
/// ```
pub fn code_lengths(freqs: &[u64], limit: u8) -> Vec<u8> {
    assert!((1..=MAX_CODE_LEN).contains(&limit), "limit out of range");
    let mut lens = vec![0u8; freqs.len()];
    let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
    let n = active.len();
    if n == 0 {
        return lens;
    }
    if n == 1 {
        lens[active[0]] = 1;
        return lens;
    }
    assert!(
        (n as u64) <= 1u64 << limit,
        "{n} symbols cannot fit in {limit}-bit codes"
    );

    // Package-merge. Each list entry carries the set of original symbols it
    // contains; a symbol's final code length is the number of selected
    // packages it appears in. Alphabets here are small (<= 286 symbols), so
    // the flattened representation is plenty fast.
    let mut items: Vec<(u64, Vec<u32>)> =
        active.iter().map(|&i| (freqs[i], vec![i as u32])).collect();
    items.sort_by_key(|e| e.0);

    let mut level: Vec<(u64, Vec<u32>)> = items.clone();
    for _ in 1..limit {
        // Pair adjacent entries into packages.
        let mut packages: Vec<(u64, Vec<u32>)> = Vec::with_capacity(level.len() / 2);
        let mut it = level.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            let mut syms = a.1;
            syms.extend_from_slice(&b.1);
            packages.push((a.0 + b.0, syms));
        }
        // Merge packages with the original items, keeping weight order.
        let mut merged = Vec::with_capacity(items.len() + packages.len());
        let (mut i, mut p) = (0, 0);
        while i < items.len() || p < packages.len() {
            let take_item = p >= packages.len() || (i < items.len() && items[i].0 <= packages[p].0);
            if take_item {
                merged.push(items[i].clone());
                i += 1;
            } else {
                merged.push(std::mem::take(&mut packages[p]));
                p += 1;
            }
        }
        level = merged;
    }

    for entry in level.iter().take(2 * n - 2) {
        for &sym in &entry.1 {
            lens[sym as usize] += 1;
        }
    }
    debug_assert!(kraft_sum_times_2pow(&lens, limit) <= 1u64 << limit);
    lens
}

/// Σ 2^(limit − len) over all coded symbols; ≤ 2^limit iff Kraft holds.
fn kraft_sum_times_2pow(lens: &[u8], limit: u8) -> u64 {
    lens.iter()
        .filter(|&&l| l > 0)
        .map(|&l| 1u64 << (limit - l))
        .sum()
}

/// Assigns canonical codes (MSB-first values) to a length array.
///
/// Returns `codes[i]` such that symbol `i` with length `lens[i]` has code
/// `codes[i]` when read most-significant-bit first.
fn canonical_codes(lens: &[u8]) -> Vec<u32> {
    let max_len = lens.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u32; max_len as usize + 1];
    for &l in lens {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u32; max_len as usize + 2];
    let mut code = 0u32;
    for len in 1..=max_len as usize {
        code = (code + count[len - 1]) << 1;
        next[len] = code;
    }
    let mut codes = vec![0u32; lens.len()];
    for (i, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[i] = next[l as usize];
            next[l as usize] += 1;
        }
    }
    codes
}

/// Reverses the low `len` bits of `code` (MSB-first value → LSB-first wire).
fn reverse_bits(code: u32, len: u8) -> u32 {
    let mut out = 0u32;
    for bit in 0..len {
        out |= ((code >> bit) & 1) << (len - 1 - bit);
    }
    out
}

/// Canonical Huffman encoder: writes codes to a [`BitWriter`].
#[derive(Debug, Clone)]
pub struct Encoder {
    /// Wire-order (bit-reversed) code per symbol.
    wire: Vec<u32>,
    lens: Vec<u8>,
}

impl Encoder {
    /// Builds an encoder from a code-length array (as produced by
    /// [`code_lengths`]).
    pub fn from_lengths(lens: &[u8]) -> Self {
        let codes = canonical_codes(lens);
        let wire = codes
            .iter()
            .zip(lens)
            .map(|(&c, &l)| reverse_bits(c, l))
            .collect();
        Self {
            wire,
            lens: lens.to_vec(),
        }
    }

    /// Emits the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (length 0) — encoding a symbol that
    /// was absent from the frequency table is a programming error.
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lens[symbol];
        assert!(len > 0, "symbol {symbol} has no assigned code");
        w.write_bits(u64::from(self.wire[symbol]), u32::from(len));
    }

    /// Code length (bits) of `symbol`, 0 if absent.
    pub fn length_of(&self, symbol: usize) -> u8 {
        self.lens[symbol]
    }
}

/// Canonical Huffman decoder built from the same length array.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[len]` = canonical code value of the first symbol of that
    /// length (MSB-first).
    first_code: Vec<u32>,
    /// `first_index[len]` = index into `symbols` of that first symbol.
    first_index: Vec<u32>,
    /// Count of symbols per length.
    count: Vec<u32>,
    /// Symbols ordered canonically (by length, then value).
    symbols: Vec<u16>,
    max_len: u8,
}

impl Decoder {
    /// Builds a decoder from a code-length array.
    pub fn from_lengths(lens: &[u8]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lens {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len as usize {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }
        let mut symbols: Vec<u16> = Vec::with_capacity(index as usize);
        for len in 1..=max_len {
            for (sym, &l) in lens.iter().enumerate() {
                if l == len {
                    symbols.push(sym as u16);
                }
            }
        }
        Self {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        }
    }

    /// Whether the decoder has any symbols at all.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Decodes one symbol from `r`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidSymbol`] if no code matches within the length limit;
    /// [`Error::UnexpectedEof`] if the stream runs out mid-code.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=self.max_len as usize {
            code = (code << 1) | u32::from(r.read_bit()?);
            let n = self.count[len];
            if n > 0 {
                let first = self.first_code[len];
                if code >= first && code < first + n {
                    let idx = self.first_index[len] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(Error::InvalidSymbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraft_holds(lens: &[u8]) -> bool {
        kraft_sum_times_2pow(lens, MAX_CODE_LEN) <= 1u64 << MAX_CODE_LEN
    }

    #[test]
    fn lengths_for_skewed_distribution() {
        let freqs = [1000, 10, 10, 10, 1];
        let lens = code_lengths(&freqs, 15);
        assert!(kraft_holds(&lens));
        assert!(lens[0] < lens[4], "frequent symbol must get shorter code");
        assert!(lens.iter().all(|&l| l >= 1));
    }

    #[test]
    fn zero_frequency_symbols_get_no_code() {
        let lens = code_lengths(&[5, 0, 3, 0, 2], 15);
        assert_eq!(lens[1], 0);
        assert_eq!(lens[3], 0);
        assert!(lens[0] > 0 && lens[2] > 0 && lens[4] > 0);
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let lens = code_lengths(&[0, 0, 42, 0], 15);
        assert_eq!(lens, vec![0, 0, 1, 0]);
    }

    #[test]
    fn empty_alphabet_is_all_zero() {
        assert_eq!(code_lengths(&[0, 0, 0], 15), vec![0, 0, 0]);
        let d = Decoder::from_lengths(&[0, 0, 0]);
        assert!(d.is_empty());
    }

    #[test]
    fn length_limit_is_enforced() {
        // Fibonacci-like frequencies force deep unconstrained Huffman trees.
        let mut freqs = vec![0u64; 32];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        for limit in [5u8, 8, 15] {
            let lens = code_lengths(&freqs, limit);
            assert!(lens.iter().all(|&l| l <= limit), "limit {limit}: {lens:?}");
            assert!(kraft_sum_times_2pow(&lens, limit) <= 1u64 << limit);
        }
    }

    #[test]
    fn limited_code_is_still_complete_enough_to_decode() {
        let freqs: Vec<u64> = (1..=60).map(|i| i * i).collect();
        let lens = code_lengths(&freqs, 8);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens);
        let mut w = BitWriter::new();
        let stream: Vec<usize> = (0..60).chain((0..60).rev()).collect();
        for &s in &stream {
            enc.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &stream {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn roundtrip_random_symbol_streams() {
        // Deterministic pseudo-random frequencies and messages.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            let nsyms = 2 + (next() % 200) as usize;
            let freqs: Vec<u64> = (0..nsyms).map(|_| next() % 1000).collect();
            if freqs.iter().all(|&f| f == 0) {
                continue;
            }
            let lens = code_lengths(&freqs, 15);
            let enc = Encoder::from_lengths(&lens);
            let dec = Decoder::from_lengths(&lens);
            let coded: Vec<usize> = (0..nsyms).filter(|&i| freqs[i] > 0).collect();
            let msg: Vec<usize> = (0..500)
                .map(|_| coded[(next() % coded.len() as u64) as usize])
                .collect();
            let mut w = BitWriter::new();
            for &s in &msg {
                enc.encode(&mut w, s);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &s in &msg {
                assert_eq!(dec.decode(&mut r).unwrap() as usize, s, "trial {trial}");
            }
        }
    }

    #[test]
    fn optimality_two_symbols() {
        let lens = code_lengths(&[7, 3], 15);
        assert_eq!(lens, vec![1, 1]);
    }

    #[test]
    fn expected_length_beats_fixed_code_on_skew() {
        // Entropy coding must beat a flat 8-bit code on a skewed alphabet.
        let mut freqs = vec![1u64; 256];
        freqs[b' ' as usize] = 5000;
        freqs[b'e' as usize] = 3000;
        freqs[b'0' as usize] = 2000;
        let lens = code_lengths(&freqs, 15);
        let total: u64 = freqs.iter().sum();
        let bits: u64 = freqs
            .iter()
            .zip(&lens)
            .map(|(&f, &l)| f * u64::from(l))
            .sum();
        assert!(
            bits < total * 8,
            "expected < 8 bits/symbol, got {bits}/{total}"
        );
    }

    #[test]
    fn decoder_rejects_garbage_when_code_incomplete() {
        // Single-symbol code: only "0" is valid; an endless run of 1s is not.
        let lens = [1u8];
        let dec = Decoder::from_lengths(&lens);
        let bytes = [0xFFu8, 0xFF];
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r), Err(Error::InvalidSymbol));
    }
}
