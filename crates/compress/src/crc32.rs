//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG).
//!
//! The archive container stores a CRC-32 of every entry and the deflate-style
//! stream stores one for its whole payload, so corrupted or truncated data is
//! detected on decode rather than silently propagated into the experiments.

/// Reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// Byte-indexed lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data` in one shot.
///
/// # Examples
///
/// ```
/// // Standard check value for the ASCII string "123456789".
/// assert_eq!(f2c_compress::crc32::checksum(b"123456789"), 0xCBF4_3926);
/// ```
pub fn checksum(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use f2c_compress::crc32::{checksum, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), checksum(b"123456789"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Returns the final checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_eq!(checksum(&[0u8; 32]), 0x190A_55AD);
        assert_eq!(checksum(&[0xFFu8; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0, 1, 37, 5_000, 9_999, 10_000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), checksum(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = b"fog layer 1 observation payload".to_vec();
        let base = checksum(&data);
        data[7] ^= 0x01;
        assert_ne!(checksum(&data), base);
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Hasher::default(), Hasher::new());
    }
}
