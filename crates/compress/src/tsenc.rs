//! `tsenc` — columnar time-series codec for flush shipments.
//!
//! The flush path ships batches of sensor readings whose regularity a
//! byte-oriented codec cannot see: timestamps advance in near-constant
//! periods, sensor ids repeat wave after wave, and each sensor type's
//! values follow one of five narrow models. This module splits a batch
//! into columns and encodes each with the cheapest of six integer
//! [`Technique`]s, chosen by a per-column cost probe and tagged in the
//! column's frame header:
//!
//! | tag | technique        | wins when …                                |
//! |-----|------------------|--------------------------------------------|
//! | 0   | `Raw`            | nothing else does (small varints, noise)   |
//! | 1   | `Delta`          | values are monotone or slowly drifting     |
//! | 2   | `DeltaOfDelta`   | deltas themselves are regular (timestamps) |
//! | 3   | `Rle`            | long constant runs (flags, idle levels)    |
//! | 4   | `Dict`           | few distinct but large values              |
//! | 5   | `Xor`            | consecutive values share high bits         |
//!
//! Sensor identities are coded against a [`SensorDict`] that **persists
//! across consecutive batches of the same stream**: the first batch pays
//! for each sensor's `(type, index)` once, every later batch codes the
//! sensor as a small dense integer. [`StreamEncoder`] and
//! [`StreamDecoder`] carry that state; their dictionaries advance in
//! lock-step because every committed addition is carried in the batch
//! that introduced it (and a batch that falls back to DEFLATE commits
//! nothing on either side).
//!
//! When regularity breaks — a value variant that contradicts its type's
//! model, oversized composites, or a batch the columns cannot beat — the
//! encoder falls back to DEFLATE over a verbatim record serialization
//! and tags the stream `MODE_FALLBACK`; the envelope overhead of that
//! escape hatch is [`FALLBACK_OVERHEAD`] bytes.
//!
//! # Stream envelope
//!
//! ```text
//! "TSF1" | mode u8 | body … | crc32(mode‖body) LE u32
//! ```
//!
//! Columnar body: `varint n_records`, the dictionary-additions block
//! (`varint n_new`, then `(type_code u8, varint index)` per new sensor
//! in first-appearance order), then framed columns — sensor codes,
//! timestamps, and per-type value columns in `SensorType::ALL` order
//! (composites ship a field-count column and a flattened field column).
//! Every column frame is `tag u8 | varint body_len | body`, and every
//! count is validated against the declared record count, so truncated,
//! bit-flipped and length-lying streams fail with an [`Error`] instead
//! of panicking or over-allocating.

use std::collections::HashMap;

use scc_sensors::{Reading, SensorId, SensorType, Value};

use crate::crc32;
use crate::deflate;
use crate::error::{Error, Result};

/// Stream magic: "TSF1" (time-series flush, format 1).
pub const MAGIC: [u8; 4] = *b"TSF1";

/// Mode byte: columnar body follows.
pub const MODE_COLUMNAR: u8 = 0;
/// Mode byte: DEFLATE-compressed verbatim body follows.
pub const MODE_FALLBACK: u8 = 1;

/// Fixed envelope cost of a stream: magic (4) + mode (1) + CRC-32 (4).
/// This is the most a fallback-tagged stream can lose to raw DEFLATE of
/// the same payload.
pub const FALLBACK_OVERHEAD: usize = 9;

/// Hard ceiling on records per batch — decoding never allocates past it.
pub const MAX_RECORDS: u64 = 1 << 22;

/// Hard ceiling on integers in one column (composite field columns can
/// exceed the record count, but never this).
pub const MAX_COLUMN_INTS: u64 = 1 << 22;

/// Largest composite value the columnar planes accept; bigger fields
/// force the DEFLATE fallback (and are refused by the columnar decoder).
pub const MAX_COMPOSITE_FIELDS: u64 = 1 << 10;

// ---------------------------------------------------------------------------
// Primitives: varints and zigzag.
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint at `*pos`, advancing it.
pub fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or(Error::UnexpectedEof { offset: *pos })?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::Malformed {
                reason: "varint overflows 64 bits",
                offset: *pos - 1,
            });
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::Malformed {
                reason: "varint longer than 10 bytes",
                offset: *pos - 1,
            });
        }
    }
}

/// Zigzag-maps a signed value to an unsigned one (small magnitudes stay
/// small regardless of sign).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

// ---------------------------------------------------------------------------
// Integer column techniques.
// ---------------------------------------------------------------------------

/// One way of encoding an integer column; the cost probe picks the
/// cheapest per column and tags it in the frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Plain varints.
    Raw,
    /// First value, then zigzag varints of consecutive differences.
    Delta,
    /// First value, first delta, then zigzag varints of delta changes.
    DeltaOfDelta,
    /// `(value, run_length)` pairs; runs must sum exactly to the count.
    Rle,
    /// Local value dictionary (first-appearance order) plus indices.
    Dict,
    /// First value, then varints of consecutive XORs.
    Xor,
}

impl Technique {
    /// Every technique, in probe (and tie-break) order.
    pub const ALL: [Technique; 6] = [
        Technique::Raw,
        Technique::Delta,
        Technique::DeltaOfDelta,
        Technique::Rle,
        Technique::Dict,
        Technique::Xor,
    ];

    /// The frame-header tag.
    pub fn tag(self) -> u8 {
        match self {
            Technique::Raw => 0,
            Technique::Delta => 1,
            Technique::DeltaOfDelta => 2,
            Technique::Rle => 3,
            Technique::Dict => 4,
            Technique::Xor => 5,
        }
    }

    /// The technique for a frame-header tag.
    pub fn from_tag(tag: u8) -> Option<Technique> {
        Technique::ALL.into_iter().find(|t| t.tag() == tag)
    }

    /// Short label for diagnostics and docs.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Raw => "raw",
            Technique::Delta => "delta",
            Technique::DeltaOfDelta => "delta-of-delta",
            Technique::Rle => "rle",
            Technique::Dict => "dict",
            Technique::Xor => "xor",
        }
    }
}

fn body_raw(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        put_varint(&mut out, v);
    }
    out
}

fn body_delta(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let Some(&first) = values.first() else {
        return out;
    };
    put_varint(&mut out, first);
    for w in values.windows(2) {
        put_varint(&mut out, zigzag(w[1].wrapping_sub(w[0]) as i64));
    }
    out
}

fn body_dod(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let Some(&first) = values.first() else {
        return out;
    };
    put_varint(&mut out, first);
    if values.len() == 1 {
        return out;
    }
    let mut prev_delta = values[1].wrapping_sub(values[0]) as i64;
    put_varint(&mut out, zigzag(prev_delta));
    for w in values[1..].windows(2) {
        let delta = w[1].wrapping_sub(w[0]) as i64;
        put_varint(&mut out, zigzag(delta.wrapping_sub(prev_delta)));
        prev_delta = delta;
    }
    out
}

fn body_rle(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::new();
    let Some(&first) = values.first() else {
        return out;
    };
    let mut current = first;
    let mut run = 1u64;
    for &v in &values[1..] {
        if v == current {
            run += 1;
        } else {
            put_varint(&mut out, current);
            put_varint(&mut out, run);
            current = v;
            run = 1;
        }
    }
    put_varint(&mut out, current);
    put_varint(&mut out, run);
    out
}

fn body_dict(values: &[u64]) -> Vec<u8> {
    let mut distinct: Vec<u64> = Vec::new();
    let mut index: HashMap<u64, u64> = HashMap::new();
    let mut codes: Vec<u64> = Vec::with_capacity(values.len());
    for &v in values {
        let code = *index.entry(v).or_insert_with(|| {
            distinct.push(v);
            distinct.len() as u64 - 1
        });
        codes.push(code);
    }
    let mut out = Vec::new();
    put_varint(&mut out, distinct.len() as u64);
    for v in distinct {
        put_varint(&mut out, v);
    }
    for c in codes {
        put_varint(&mut out, c);
    }
    out
}

fn body_xor(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let Some(&first) = values.first() else {
        return out;
    };
    put_varint(&mut out, first);
    for w in values.windows(2) {
        put_varint(&mut out, w[0] ^ w[1]);
    }
    out
}

fn encode_body(technique: Technique, values: &[u64]) -> Vec<u8> {
    match technique {
        Technique::Raw => body_raw(values),
        Technique::Delta => body_delta(values),
        Technique::DeltaOfDelta => body_dod(values),
        Technique::Rle => body_rle(values),
        Technique::Dict => body_dict(values),
        Technique::Xor => body_xor(values),
    }
}

/// Encodes `values` as one framed column with a forced `technique`
/// (the composed encoder uses [`encode_column`]; this entry point lets
/// tests exercise each technique in isolation).
pub fn encode_column_as(technique: Technique, values: &[u64], out: &mut Vec<u8>) {
    let body = encode_body(technique, values);
    out.push(technique.tag());
    put_varint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

/// Encodes `values` as one framed column, probing every technique and
/// keeping the cheapest (ties go to the earlier entry of
/// [`Technique::ALL`], so the choice is deterministic).
pub fn encode_column(values: &[u64], out: &mut Vec<u8>) -> Technique {
    let mut best = Technique::Raw;
    let mut best_body = body_raw(values);
    for technique in &Technique::ALL[1..] {
        let body = encode_body(*technique, values);
        if body.len() < best_body.len() {
            best = *technique;
            best_body = body;
        }
    }
    out.push(best.tag());
    put_varint(out, best_body.len() as u64);
    out.extend_from_slice(&best_body);
    best
}

/// Decodes one framed column at `*pos`, which must hold exactly
/// `expect` integers.
///
/// # Errors
///
/// [`Error::UnexpectedEof`] on truncation, [`Error::Malformed`] on an
/// unknown tag, a frame length that disagrees with its own body, runs
/// that do not sum to the count, or out-of-range dictionary indices.
pub fn decode_column(data: &[u8], pos: &mut usize, expect: u64) -> Result<(Technique, Vec<u64>)> {
    if expect > MAX_COLUMN_INTS {
        return Err(Error::SizeLimitExceeded {
            declared: expect,
            limit: MAX_COLUMN_INTS,
        });
    }
    let tag_off = *pos;
    let tag = *data
        .get(*pos)
        .ok_or(Error::UnexpectedEof { offset: *pos })?;
    *pos += 1;
    let technique = Technique::from_tag(tag).ok_or(Error::Malformed {
        reason: "unknown column technique tag",
        offset: tag_off,
    })?;
    let body_len = get_varint(data, pos)? as usize;
    let body_end = pos
        .checked_add(body_len)
        .filter(|&end| end <= data.len())
        .ok_or(Error::UnexpectedEof { offset: data.len() })?;
    let body = &data[*pos..body_end];
    let base = *pos;
    let expect = expect as usize;
    let mut p = 0usize;
    // Every decoder below reads only from `body`, so a lying `body_len`
    // is caught either by the in-body EOF or by the exact-consumption
    // check at the end.
    let at = |p: usize| base + p;
    let values = match technique {
        Technique::Raw => {
            let mut values = Vec::with_capacity(expect.min(body.len() + 1));
            for _ in 0..expect {
                values.push(get_varint(body, &mut p).map_err(|e| rebase(e, base))?);
            }
            values
        }
        Technique::Delta => {
            let mut values = Vec::with_capacity(expect.min(body.len() + 1));
            if expect > 0 {
                let mut current = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                values.push(current);
                for _ in 1..expect {
                    let d = unzigzag(get_varint(body, &mut p).map_err(|e| rebase(e, base))?);
                    current = current.wrapping_add(d as u64);
                    values.push(current);
                }
            }
            values
        }
        Technique::DeltaOfDelta => {
            let mut values = Vec::with_capacity(expect.min(body.len() + 1));
            if expect > 0 {
                let mut current = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                values.push(current);
                if expect > 1 {
                    let mut delta =
                        unzigzag(get_varint(body, &mut p).map_err(|e| rebase(e, base))?);
                    current = current.wrapping_add(delta as u64);
                    values.push(current);
                    for _ in 2..expect {
                        let dd = unzigzag(get_varint(body, &mut p).map_err(|e| rebase(e, base))?);
                        delta = delta.wrapping_add(dd);
                        current = current.wrapping_add(delta as u64);
                        values.push(current);
                    }
                }
            }
            values
        }
        Technique::Rle => {
            let mut values = Vec::with_capacity(expect.min(MAX_COLUMN_INTS as usize));
            while values.len() < expect {
                let v = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                let run = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                if run == 0 || run > (expect - values.len()) as u64 {
                    return Err(Error::Malformed {
                        reason: "RLE runs do not sum to the column count",
                        offset: at(p),
                    });
                }
                for _ in 0..run {
                    values.push(v);
                }
            }
            values
        }
        Technique::Dict => {
            let n_distinct = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
            if n_distinct > expect as u64 {
                return Err(Error::Malformed {
                    reason: "column dictionary larger than the column",
                    offset: at(p),
                });
            }
            let mut distinct = Vec::with_capacity(n_distinct as usize);
            for _ in 0..n_distinct {
                distinct.push(get_varint(body, &mut p).map_err(|e| rebase(e, base))?);
            }
            let mut values = Vec::with_capacity(expect.min(body.len() + 1));
            for _ in 0..expect {
                let code = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                let v = *distinct.get(code as usize).ok_or(Error::Malformed {
                    reason: "column dictionary index out of range",
                    offset: at(p),
                })?;
                values.push(v);
            }
            values
        }
        Technique::Xor => {
            let mut values = Vec::with_capacity(expect.min(body.len() + 1));
            if expect > 0 {
                let mut current = get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                values.push(current);
                for _ in 1..expect {
                    current ^= get_varint(body, &mut p).map_err(|e| rebase(e, base))?;
                    values.push(current);
                }
            }
            values
        }
    };
    if p != body.len() {
        return Err(Error::Malformed {
            reason: "column frame length disagrees with its body",
            offset: at(p),
        });
    }
    *pos = body_end;
    Ok((technique, values))
}

/// Shifts an in-body error offset into the enclosing stream.
fn rebase(e: Error, base: usize) -> Error {
    match e {
        Error::UnexpectedEof { offset } => Error::UnexpectedEof {
            offset: base + offset,
        },
        Error::Malformed { reason, offset } => Error::Malformed {
            reason,
            offset: base + offset,
        },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// The persistent sensor dictionary.
// ---------------------------------------------------------------------------

/// Maps sensors to dense codes, in first-appearance order across the
/// lifetime of a stream. The encoder and decoder each hold one; both
/// commit a batch's additions only when the batch ships columnar, so the
/// two sides stay in lock-step as long as batches are applied exactly
/// once, in order — which is why the chaos plane *defers* a corrupted
/// shipment instead of dropping it (see `f2c-core`'s flush gate).
#[derive(Debug, Clone, Default)]
pub struct SensorDict {
    ids: Vec<SensorId>,
    index: HashMap<SensorId, u64>,
}

impl SensorDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The code of `id`, if committed.
    pub fn code_of(&self, id: SensorId) -> Option<u64> {
        self.index.get(&id).copied()
    }

    /// The sensor committed under `code`.
    pub fn sensor_of(&self, code: u64) -> Option<SensorId> {
        usize::try_from(code)
            .ok()
            .and_then(|i| self.ids.get(i))
            .copied()
    }

    /// Commits `id` under the next code, returning it. `id` must not be
    /// present yet.
    fn push(&mut self, id: SensorId) -> u64 {
        let code = self.ids.len() as u64;
        self.ids.push(id);
        self.index.insert(id, code);
        code
    }
}

// ---------------------------------------------------------------------------
// Value models.
// ---------------------------------------------------------------------------

/// Which value shape a sensor type ships (mirrors the wire grammar in
/// `scc_sensors::wire`): the columnar planes are laid out per model, so
/// a batch whose values contradict their types' models is irregular and
/// rides the DEFLATE fallback instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ValueModel {
    Scalar,
    Counter,
    Flag,
    Level,
    Composite,
}

fn value_model(ty: SensorType) -> ValueModel {
    use SensorType::*;
    match ty {
        ParkingSpot => ValueModel::Flag,
        ElectricityMeter | GasMeter | BicycleFlow | PeopleFlow | Traffic => ValueModel::Counter,
        ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic | ContainerRefuse => {
            ValueModel::Level
        }
        NetworkAnalyzer | AirQuality | Weather => ValueModel::Composite,
        _ => ValueModel::Scalar,
    }
}

fn value_matches(ty: SensorType, value: &Value) -> bool {
    matches!(
        (value_model(ty), value),
        (ValueModel::Scalar, Value::Scalar(_))
            | (ValueModel::Counter, Value::Counter(_))
            | (ValueModel::Flag, Value::Flag(_))
            | (ValueModel::Level, Value::Level(_))
            | (ValueModel::Composite, Value::Composite(_))
    )
}

fn type_code(ty: SensorType) -> u8 {
    SensorType::ALL
        .iter()
        .position(|&t| t == ty)
        .expect("every sensor type is in ALL") as u8
}

fn type_from_code(code: u8) -> Option<SensorType> {
    SensorType::ALL.get(code as usize).copied()
}

// ---------------------------------------------------------------------------
// Verbatim serialization (the DEFLATE fallback's payload).
// ---------------------------------------------------------------------------

const VTAG_SCALAR: u8 = 0;
const VTAG_COUNTER: u8 = 1;
const VTAG_FLAG: u8 = 2;
const VTAG_LEVEL: u8 = 3;
const VTAG_COMPOSITE: u8 = 4;

fn verbatim_encode(readings: &[Reading]) -> Vec<u8> {
    let mut out = Vec::with_capacity(readings.len() * 8 + 4);
    put_varint(&mut out, readings.len() as u64);
    for r in readings {
        out.push(type_code(r.sensor_type()));
        put_varint(&mut out, u64::from(r.sensor().index()));
        put_varint(&mut out, r.timestamp_s());
        match r.value() {
            Value::Scalar(v) => {
                out.push(VTAG_SCALAR);
                put_varint(&mut out, zigzag(*v));
            }
            Value::Counter(c) => {
                out.push(VTAG_COUNTER);
                put_varint(&mut out, *c);
            }
            Value::Flag(b) => {
                out.push(VTAG_FLAG);
                out.push(u8::from(*b));
            }
            Value::Level(l) => {
                out.push(VTAG_LEVEL);
                out.push(*l);
            }
            Value::Composite(fields) => {
                out.push(VTAG_COMPOSITE);
                put_varint(&mut out, fields.len() as u64);
                for &f in fields {
                    put_varint(&mut out, zigzag(f));
                }
            }
        }
    }
    out
}

fn verbatim_decode(data: &[u8]) -> Result<Vec<Reading>> {
    let mut pos = 0usize;
    let n = get_varint(data, &mut pos)?;
    if n > MAX_RECORDS {
        return Err(Error::SizeLimitExceeded {
            declared: n,
            limit: MAX_RECORDS,
        });
    }
    let mut readings = Vec::with_capacity((n as usize).min(data.len() / 4 + 1));
    let byte = |data: &[u8], pos: &mut usize| -> Result<u8> {
        let b = *data
            .get(*pos)
            .ok_or(Error::UnexpectedEof { offset: *pos })?;
        *pos += 1;
        Ok(b)
    };
    for _ in 0..n {
        let ty_off = pos;
        let ty = type_from_code(byte(data, &mut pos)?).ok_or(Error::Malformed {
            reason: "unknown sensor type code",
            offset: ty_off,
        })?;
        let index_raw = get_varint(data, &mut pos)?;
        let index = u32::try_from(index_raw).map_err(|_| Error::Malformed {
            reason: "sensor index exceeds 32 bits",
            offset: pos,
        })?;
        let ts = get_varint(data, &mut pos)?;
        let tag_off = pos;
        let value = match byte(data, &mut pos)? {
            VTAG_SCALAR => Value::Scalar(unzigzag(get_varint(data, &mut pos)?)),
            VTAG_COUNTER => Value::Counter(get_varint(data, &mut pos)?),
            VTAG_FLAG => match byte(data, &mut pos)? {
                0 => Value::Flag(false),
                1 => Value::Flag(true),
                _ => {
                    return Err(Error::Malformed {
                        reason: "flag value out of range",
                        offset: pos - 1,
                    })
                }
            },
            VTAG_LEVEL => Value::Level(byte(data, &mut pos)?),
            VTAG_COMPOSITE => {
                let len = get_varint(data, &mut pos)?;
                if len > MAX_COLUMN_INTS {
                    return Err(Error::SizeLimitExceeded {
                        declared: len,
                        limit: MAX_COLUMN_INTS,
                    });
                }
                let mut fields = Vec::with_capacity((len as usize).min(data.len() - pos + 1));
                for _ in 0..len {
                    fields.push(unzigzag(get_varint(data, &mut pos)?));
                }
                Value::Composite(fields)
            }
            _ => {
                return Err(Error::Malformed {
                    reason: "unknown value tag",
                    offset: tag_off,
                })
            }
        };
        readings.push(Reading::new(SensorId::new(ty, index), ts, value));
    }
    if pos != data.len() {
        return Err(Error::Malformed {
            reason: "trailing bytes after the last record",
            offset: pos,
        });
    }
    Ok(readings)
}

// ---------------------------------------------------------------------------
// The composed stream codec.
// ---------------------------------------------------------------------------

/// Stateful batch encoder for one flush stream (one sender → one
/// receiver). Feed it consecutive batches of the stream in shipping
/// order; the matching [`StreamDecoder`] must see the produced payloads
/// exactly once, in the same order.
#[derive(Debug, Default)]
pub struct StreamEncoder {
    dict: SensorDict,
}

impl StreamEncoder {
    /// A fresh stream with an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed dictionary entries so far.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Encodes one batch, advancing the persistent dictionary only if
    /// the batch ships columnar (the fallback path carries no additions,
    /// so the decoder stays in step either way).
    ///
    /// # Errors
    ///
    /// [`Error::SizeLimitExceeded`] on a batch beyond [`MAX_RECORDS`];
    /// DEFLATE errors from the fallback path.
    pub fn encode_batch(&mut self, readings: &[Reading]) -> Result<Vec<u8>> {
        if readings.len() as u64 > MAX_RECORDS {
            return Err(Error::SizeLimitExceeded {
                declared: readings.len() as u64,
                limit: MAX_RECORDS,
            });
        }
        let columnar = self.plan_columnar(readings);
        let fallback = deflate::compress(&verbatim_encode(readings))?;
        let (mode, body, staged) = match columnar {
            Some((body, staged)) if body.len() <= fallback.len() => (MODE_COLUMNAR, body, staged),
            _ => (MODE_FALLBACK, fallback, Vec::new()),
        };
        for id in staged {
            self.dict.push(id);
        }
        let mut out = Vec::with_capacity(FALLBACK_OVERHEAD + body.len());
        out.extend_from_slice(&MAGIC);
        out.push(mode);
        out.extend_from_slice(&body);
        let crc = crc32::checksum(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Builds the columnar body and the staged dictionary additions, or
    /// `None` when the batch is irregular (value variants contradicting
    /// their types' models, oversized composites).
    fn plan_columnar(&self, readings: &[Reading]) -> Option<(Vec<u8>, Vec<SensorId>)> {
        for r in readings {
            if !value_matches(r.sensor_type(), r.value()) {
                return None;
            }
            if let Value::Composite(fields) = r.value() {
                if fields.len() as u64 > MAX_COMPOSITE_FIELDS {
                    return None;
                }
            }
        }
        let mut staged: Vec<SensorId> = Vec::new();
        let mut staged_index: HashMap<SensorId, u64> = HashMap::new();
        let committed = self.dict.len() as u64;
        let mut codes: Vec<u64> = Vec::with_capacity(readings.len());
        for r in readings {
            let id = r.sensor();
            let code = self.dict.code_of(id).unwrap_or_else(|| {
                *staged_index.entry(id).or_insert_with(|| {
                    staged.push(id);
                    committed + staged.len() as u64 - 1
                })
            });
            codes.push(code);
        }
        let mut body = Vec::new();
        put_varint(&mut body, readings.len() as u64);
        put_varint(&mut body, staged.len() as u64);
        for id in &staged {
            body.push(type_code(id.sensor_type()));
            put_varint(&mut body, u64::from(id.index()));
        }
        encode_column(&codes, &mut body);
        let timestamps: Vec<u64> = readings.iter().map(Reading::timestamp_s).collect();
        encode_column(&timestamps, &mut body);
        for ty in SensorType::ALL {
            let of_type: Vec<&Reading> =
                readings.iter().filter(|r| r.sensor_type() == ty).collect();
            if of_type.is_empty() {
                continue;
            }
            match value_model(ty) {
                ValueModel::Scalar => {
                    let col: Vec<u64> = of_type
                        .iter()
                        .map(|r| match r.value() {
                            Value::Scalar(v) => zigzag(*v),
                            _ => unreachable!("regularity checked above"),
                        })
                        .collect();
                    encode_column(&col, &mut body);
                }
                ValueModel::Counter => {
                    let col: Vec<u64> = of_type
                        .iter()
                        .map(|r| match r.value() {
                            Value::Counter(c) => *c,
                            _ => unreachable!("regularity checked above"),
                        })
                        .collect();
                    encode_column(&col, &mut body);
                }
                ValueModel::Flag => {
                    let col: Vec<u64> = of_type
                        .iter()
                        .map(|r| match r.value() {
                            Value::Flag(b) => u64::from(*b),
                            _ => unreachable!("regularity checked above"),
                        })
                        .collect();
                    encode_column(&col, &mut body);
                }
                ValueModel::Level => {
                    let col: Vec<u64> = of_type
                        .iter()
                        .map(|r| match r.value() {
                            Value::Level(l) => u64::from(*l),
                            _ => unreachable!("regularity checked above"),
                        })
                        .collect();
                    encode_column(&col, &mut body);
                }
                ValueModel::Composite => {
                    let mut counts: Vec<u64> = Vec::with_capacity(of_type.len());
                    let mut fields: Vec<u64> = Vec::new();
                    for r in &of_type {
                        match r.value() {
                            Value::Composite(fs) => {
                                counts.push(fs.len() as u64);
                                fields.extend(fs.iter().map(|&f| zigzag(f)));
                            }
                            _ => unreachable!("regularity checked above"),
                        }
                    }
                    if fields.len() as u64 > MAX_COLUMN_INTS {
                        return None;
                    }
                    encode_column(&counts, &mut body);
                    encode_column(&fields, &mut body);
                }
            }
        }
        Some((body, staged))
    }
}

/// Stateful batch decoder mirroring [`StreamEncoder`]: feed it each
/// payload of the stream exactly once, in shipping order.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    dict: SensorDict,
}

impl StreamDecoder {
    /// A fresh stream with an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Committed dictionary entries so far.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Decodes one batch. The dictionary advances only on a successful
    /// columnar decode — a stream that errors leaves the decoder state
    /// untouched, so the caller can refuse the shipment and await a
    /// clean re-delivery.
    ///
    /// # Errors
    ///
    /// [`Error::BadMagic`], [`Error::ChecksumMismatch`],
    /// [`Error::UnexpectedEof`], [`Error::SizeLimitExceeded`] or
    /// [`Error::Malformed`]; never panics, never allocates past the
    /// declared (validated) counts.
    pub fn decode_batch(&mut self, data: &[u8]) -> Result<Vec<Reading>> {
        if data.len() < MAGIC.len() {
            return Err(Error::UnexpectedEof { offset: data.len() });
        }
        if data[..MAGIC.len()] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&data[..4]);
            return Err(Error::BadMagic { found });
        }
        if data.len() < FALLBACK_OVERHEAD {
            return Err(Error::UnexpectedEof { offset: data.len() });
        }
        let crc_start = data.len() - 4;
        let expected = u32::from_le_bytes(data[crc_start..].try_into().expect("4 bytes"));
        let actual = crc32::checksum(&data[MAGIC.len()..crc_start]);
        if expected != actual {
            return Err(Error::ChecksumMismatch { expected, actual });
        }
        let mode = data[MAGIC.len()];
        let body = &data[MAGIC.len() + 1..crc_start];
        match mode {
            MODE_FALLBACK => verbatim_decode(&deflate::decompress(body)?),
            MODE_COLUMNAR => self.decode_columnar(body, MAGIC.len() + 1),
            _ => Err(Error::Malformed {
                reason: "unknown stream mode",
                offset: MAGIC.len(),
            }),
        }
    }

    fn decode_columnar(&mut self, body: &[u8], base: usize) -> Result<Vec<Reading>> {
        let err = |reason: &'static str, pos: usize| Error::Malformed {
            reason,
            offset: base + pos,
        };
        let mut pos = 0usize;
        let n = get_varint(body, &mut pos).map_err(|e| rebase(e, base))?;
        if n > MAX_RECORDS {
            return Err(Error::SizeLimitExceeded {
                declared: n,
                limit: MAX_RECORDS,
            });
        }
        let n_staged = get_varint(body, &mut pos).map_err(|e| rebase(e, base))?;
        if n_staged > n {
            return Err(err("more dictionary additions than records", pos));
        }
        let mut staged: Vec<SensorId> = Vec::with_capacity(n_staged as usize);
        for _ in 0..n_staged {
            let ty_off = pos;
            let code = *body
                .get(pos)
                .ok_or(Error::UnexpectedEof { offset: base + pos })?;
            pos += 1;
            let ty = type_from_code(code).ok_or(err("unknown sensor type code", ty_off))?;
            let index_raw = get_varint(body, &mut pos).map_err(|e| rebase(e, base))?;
            let index =
                u32::try_from(index_raw).map_err(|_| err("sensor index exceeds 32 bits", pos))?;
            let id = SensorId::new(ty, index);
            if self.dict.code_of(id).is_some() || staged.contains(&id) {
                return Err(err("dictionary re-adds a known sensor", ty_off));
            }
            staged.push(id);
        }
        let committed = self.dict.len() as u64;
        let sensor_of = |code: u64| -> Option<SensorId> {
            if code < committed {
                self.dict.sensor_of(code)
            } else {
                staged.get((code - committed) as usize).copied()
            }
        };
        let (_, codes) = decode_column(body, &mut pos, n).map_err(|e| rebase(e, base))?;
        let mut sensors: Vec<SensorId> = Vec::with_capacity(codes.len());
        for &code in &codes {
            sensors.push(sensor_of(code).ok_or(err("sensor code out of range", pos))?);
        }
        let (_, timestamps) = decode_column(body, &mut pos, n).map_err(|e| rebase(e, base))?;
        // Per-type value columns, in SensorType::ALL order.
        let mut per_type: HashMap<SensorType, std::vec::IntoIter<Value>> = HashMap::new();
        for ty in SensorType::ALL {
            let count = sensors.iter().filter(|s| s.sensor_type() == ty).count() as u64;
            if count == 0 {
                continue;
            }
            let values: Vec<Value> = match value_model(ty) {
                ValueModel::Scalar => {
                    let (_, col) =
                        decode_column(body, &mut pos, count).map_err(|e| rebase(e, base))?;
                    col.into_iter()
                        .map(|v| Value::Scalar(unzigzag(v)))
                        .collect()
                }
                ValueModel::Counter => {
                    let (_, col) =
                        decode_column(body, &mut pos, count).map_err(|e| rebase(e, base))?;
                    col.into_iter().map(Value::Counter).collect()
                }
                ValueModel::Flag => {
                    let (_, col) =
                        decode_column(body, &mut pos, count).map_err(|e| rebase(e, base))?;
                    let mut out = Vec::with_capacity(col.len());
                    for v in col {
                        match v {
                            0 => out.push(Value::Flag(false)),
                            1 => out.push(Value::Flag(true)),
                            _ => return Err(err("flag value out of range", pos)),
                        }
                    }
                    out
                }
                ValueModel::Level => {
                    let (_, col) =
                        decode_column(body, &mut pos, count).map_err(|e| rebase(e, base))?;
                    let mut out = Vec::with_capacity(col.len());
                    for v in col {
                        let l =
                            u8::try_from(v).map_err(|_| err("level value out of range", pos))?;
                        out.push(Value::Level(l));
                    }
                    out
                }
                ValueModel::Composite => {
                    let (_, counts) =
                        decode_column(body, &mut pos, count).map_err(|e| rebase(e, base))?;
                    let mut total = 0u64;
                    for &c in &counts {
                        if c > MAX_COMPOSITE_FIELDS {
                            return Err(err("composite wider than the columnar limit", pos));
                        }
                        total += c;
                    }
                    let (_, fields) =
                        decode_column(body, &mut pos, total).map_err(|e| rebase(e, base))?;
                    let mut out = Vec::with_capacity(counts.len());
                    let mut cursor = 0usize;
                    for c in counts {
                        let next = cursor + c as usize;
                        out.push(Value::Composite(
                            fields[cursor..next].iter().map(|&f| unzigzag(f)).collect(),
                        ));
                        cursor = next;
                    }
                    out
                }
            };
            per_type.insert(ty, values.into_iter());
        }
        if pos != body.len() {
            return Err(err("trailing bytes after the last column", pos));
        }
        let mut readings: Vec<Reading> = Vec::with_capacity(sensors.len());
        for (sensor, ts) in sensors.iter().zip(&timestamps) {
            let value = per_type
                .get_mut(&sensor.sensor_type())
                .and_then(Iterator::next)
                .ok_or(err("value column shorter than its records", pos))?;
            readings.push(Reading::new(*sensor, *ts, value));
        }
        // Success: commit the additions, exactly as the encoder did.
        for id in staged {
            self.dict.push(id);
        }
        Ok(readings)
    }
}

/// One-shot encode with a fresh dictionary (tests, ad-hoc tools).
///
/// # Errors
///
/// As [`StreamEncoder::encode_batch`].
pub fn encode_once(readings: &[Reading]) -> Result<Vec<u8>> {
    StreamEncoder::new().encode_batch(readings)
}

/// One-shot decode with a fresh dictionary (tests, ad-hoc tools).
///
/// # Errors
///
/// As [`StreamDecoder::decode_batch`].
pub fn decode_once(data: &[u8]) -> Result<Vec<Reading>> {
    StreamDecoder::new().decode_batch(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(idx: u32, ts: u64, v: f64) -> Reading {
        Reading::new(
            SensorId::new(SensorType::Temperature, idx),
            ts,
            Value::from_f64(v),
        )
    }

    #[test]
    fn varint_roundtrips_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        assert!(matches!(
            get_varint(&[0x80; 11], &mut 0),
            Err(Error::Malformed { .. })
        ));
        assert!(matches!(
            get_varint(&[0x80, 0x80], &mut 0),
            Err(Error::UnexpectedEof { .. })
        ));
        // 10th byte may only contribute one bit.
        let mut overflow = vec![0xFF; 9];
        overflow.push(0x02);
        assert!(matches!(
            get_varint(&overflow, &mut 0),
            Err(Error::Malformed { .. })
        ));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 4711, -4711] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn every_technique_roundtrips_every_shape() {
        let shapes: Vec<Vec<u64>> = vec![
            vec![],
            vec![42],
            vec![7; 100],
            (0..100u64).map(|i| 900 * i).collect(),
            vec![u64::MAX, 0, u64::MAX, 1],
            (0..50u64).map(|i| i * i ^ 0xABCD).collect(),
        ];
        for technique in Technique::ALL {
            for values in &shapes {
                let mut buf = Vec::new();
                encode_column_as(technique, values, &mut buf);
                let mut pos = 0;
                let (t, back) = decode_column(&buf, &mut pos, values.len() as u64)
                    .unwrap_or_else(|e| panic!("{technique:?} over {values:?}: {e}"));
                assert_eq!(t, technique);
                assert_eq!(&back, values, "{technique:?}");
                assert_eq!(pos, buf.len());
            }
        }
    }

    #[test]
    fn probe_picks_dod_for_regular_timestamps_and_rle_for_runs() {
        let ts: Vec<u64> = (0..500u64).map(|i| 1_000_000 + 900 * i).collect();
        let mut buf = Vec::new();
        assert_eq!(encode_column(&ts, &mut buf), Technique::DeltaOfDelta);
        let runs = vec![3u64; 500];
        let mut buf2 = Vec::new();
        assert_eq!(encode_column(&runs, &mut buf2), Technique::Rle);
        // A regular period costs ~1 byte per record (zero residuals);
        // a constant run collapses to one (value, run) pair.
        assert!(
            buf.len() < 520 && buf2.len() < 10,
            "{} / {}",
            buf.len(),
            buf2.len()
        );
    }

    #[test]
    fn stream_roundtrips_and_dictionary_persists() {
        let mut enc = StreamEncoder::new();
        let mut dec = StreamDecoder::new();
        let wave =
            |t: u64| -> Vec<Reading> { (0..40).map(|i| scalar(i, t, 20.0 + i as f64)).collect() };
        let first = enc.encode_batch(&wave(900)).unwrap();
        let second = enc.encode_batch(&wave(1800)).unwrap();
        assert_eq!(enc.dict_len(), 40);
        assert!(
            second.len() < first.len(),
            "second batch must ride the dictionary ({} vs {})",
            second.len(),
            first.len()
        );
        assert_eq!(dec.decode_batch(&first).unwrap(), wave(900));
        assert_eq!(dec.decode_batch(&second).unwrap(), wave(1800));
        assert_eq!(dec.dict_len(), 40);
    }

    #[test]
    fn irregular_values_ride_the_fallback() {
        // A parking spot shipping a scalar contradicts its model.
        let odd = vec![Reading::new(
            SensorId::new(SensorType::ParkingSpot, 1),
            900,
            Value::Scalar(200),
        )];
        let packed = encode_once(&odd).unwrap();
        assert_eq!(packed[4], MODE_FALLBACK);
        assert_eq!(decode_once(&packed).unwrap(), odd);
    }

    #[test]
    fn fallback_commits_no_dictionary_state() {
        let mut enc = StreamEncoder::new();
        let odd = vec![Reading::new(
            SensorId::new(SensorType::ParkingSpot, 1),
            900,
            Value::Scalar(200),
        )];
        enc.encode_batch(&odd).unwrap();
        assert_eq!(enc.dict_len(), 0);
    }

    #[test]
    fn empty_batch_roundtrips() {
        let packed = encode_once(&[]).unwrap();
        assert_eq!(decode_once(&packed).unwrap(), Vec::<Reading>::new());
    }

    #[test]
    fn decoder_rejects_bad_magic_and_bitflips() {
        let batch: Vec<Reading> = (0..20)
            .map(|i| scalar(i, 900 * u64::from(i), 21.0))
            .collect();
        let packed = encode_once(&batch).unwrap();
        let mut wrong = packed.clone();
        wrong[0] = b'X';
        assert!(matches!(decode_once(&wrong), Err(Error::BadMagic { .. })));
        for i in 4..packed.len() {
            let mut flipped = packed.clone();
            flipped[i] ^= 0x10;
            assert!(decode_once(&flipped).is_err(), "flip at {i} must fail");
        }
    }

    #[test]
    fn decoder_rejects_every_truncation() {
        let batch: Vec<Reading> = (0..20)
            .map(|i| scalar(i, 900 * u64::from(i), 21.0))
            .collect();
        let packed = encode_once(&batch).unwrap();
        for len in 0..packed.len() {
            assert!(
                decode_once(&packed[..len]).is_err(),
                "prefix {len} must fail"
            );
        }
    }

    #[test]
    fn mixed_type_batch_roundtrips() {
        let mut batch = Vec::new();
        for i in 0..10u32 {
            batch.push(Reading::new(
                SensorId::new(SensorType::ParkingSpot, i),
                900,
                Value::Flag(i % 2 == 0),
            ));
            batch.push(Reading::new(
                SensorId::new(SensorType::Traffic, i),
                900,
                Value::Counter(u64::from(i) * 17),
            ));
            batch.push(Reading::new(
                SensorId::new(SensorType::ContainerGlass, i),
                901,
                Value::Level((i % 100) as u8),
            ));
            batch.push(Reading::new(
                SensorId::new(SensorType::Weather, i),
                902,
                Value::Composite(vec![2100 + i64::from(i), -50, 10_132]),
            ));
        }
        let packed = encode_once(&batch).unwrap();
        assert_eq!(packed[4], MODE_COLUMNAR);
        assert_eq!(decode_once(&packed).unwrap(), batch);
    }
}
