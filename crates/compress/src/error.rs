use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while encoding or decoding compressed streams.
///
/// The variants are deliberately descriptive: a corrupted stream reports
/// *what* was malformed so failure-injection tests can assert on the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The stream does not start with the expected magic bytes.
    BadMagic {
        /// The bytes actually found at the start of the stream.
        found: [u8; 4],
    },
    /// The stream ended before the declared payload was fully decoded.
    UnexpectedEof {
        /// Byte offset (in the compressed stream) where input ran out.
        offset: usize,
    },
    /// The CRC-32 of the decompressed payload does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the stream header.
        expected: u32,
        /// Checksum computed over the decoded payload.
        actual: u32,
    },
    /// A Huffman-coded symbol could not be resolved within the length limit.
    InvalidSymbol,
    /// An LZ77 back-reference points before the start of the output.
    InvalidBackReference {
        /// Distance of the offending match.
        distance: usize,
        /// Output length at the time the match was decoded.
        produced: usize,
    },
    /// A symbol outside the alphabet was encountered while decoding.
    SymbolOutOfRange {
        /// The offending symbol value.
        symbol: u16,
    },
    /// The declared decompressed size exceeds the configured safety limit.
    SizeLimitExceeded {
        /// Size declared by the stream header.
        declared: u64,
        /// Maximum size the decoder was willing to produce.
        limit: u64,
    },
    /// An archive entry name was duplicated or empty.
    BadEntryName {
        /// The offending name.
        name: String,
    },
    /// A run-length-encoded stream was truncated mid-run.
    TruncatedRun,
    /// A structurally invalid `tsenc` stream: internal framing that
    /// contradicts itself (lying lengths, out-of-range codes, trailing
    /// bytes). The CRC may well be valid — this is the decoder's own
    /// bounds checking, the last line of defence of the robustness
    /// contract (`Err`, never a panic or an over-allocation).
    Malformed {
        /// What was inconsistent.
        reason: &'static str,
        /// Byte offset (in the encoded stream) of the inconsistency.
        offset: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadMagic { found } => {
                write!(f, "bad stream magic {found:02x?}")
            }
            Error::UnexpectedEof { offset } => {
                write!(f, "unexpected end of compressed stream at byte {offset}")
            }
            Error::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
            ),
            Error::InvalidSymbol => write!(f, "undecodable Huffman symbol"),
            Error::InvalidBackReference { distance, produced } => write!(
                f,
                "LZ77 back-reference distance {distance} exceeds produced output {produced}"
            ),
            Error::SymbolOutOfRange { symbol } => {
                write!(f, "symbol {symbol} outside the coding alphabet")
            }
            Error::SizeLimitExceeded { declared, limit } => write!(
                f,
                "declared payload size {declared} exceeds decoder limit {limit}"
            ),
            Error::BadEntryName { name } => {
                write!(f, "invalid archive entry name {name:?}")
            }
            Error::TruncatedRun => write!(f, "run-length stream truncated mid-run"),
            Error::Malformed { reason, offset } => {
                write!(f, "malformed stream at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants: Vec<Error> = vec![
            Error::BadMagic { found: *b"ZZZZ" },
            Error::UnexpectedEof { offset: 7 },
            Error::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            Error::InvalidSymbol,
            Error::InvalidBackReference {
                distance: 10,
                produced: 3,
            },
            Error::SymbolOutOfRange { symbol: 999 },
            Error::SizeLimitExceeded {
                declared: 10,
                limit: 5,
            },
            Error::BadEntryName {
                name: String::new(),
            },
            Error::TruncatedRun,
            Error::Malformed {
                reason: "probe",
                offset: 12,
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            Error::UnexpectedEof { offset: 3 },
            Error::UnexpectedEof { offset: 3 }
        );
        assert_ne!(
            Error::UnexpectedEof { offset: 3 },
            Error::UnexpectedEof { offset: 4 }
        );
    }
}
