//! From-scratch compression stack for the F2C smart-city reproduction.
//!
//! The paper ("A Novel Architecture for Efficient Fog to Cloud Data
//! Management in Smart Cities", ICDCS 2017, §V.B) compresses one day of
//! aggregated sensor observations with PKWARE Zip at fog layer 1 and reports
//! a ≈78 % size reduction. Zip's deflate is LZ77 + canonical Huffman coding,
//! so this crate implements exactly that class of codec from scratch:
//!
//! * [`bitio`] — LSB-first bit-level reader/writer,
//! * [`crc32`] — CRC-32 (IEEE 802.3) integrity checksums,
//! * [`rle`] — byte run-length coding (a cheap baseline codec),
//! * [`lz77`] — hash-chain LZ77 tokenizer with lazy matching,
//! * [`huffman`] — length-limited canonical Huffman codes (package-merge),
//! * [`deflate`] — the combined LZ77+Huffman stream codec,
//! * [`archive`] — a minimal multi-entry container (the "zip file" role),
//! * [`ratio`] — compression-ratio bookkeeping used by the experiments,
//! * [`tsenc`] — the columnar time-series codec the flush path ships
//!   with: per-column technique probing (raw / delta / delta-of-delta /
//!   RLE / dict / XOR), a cross-batch sensor dictionary, and a tagged
//!   DEFLATE fallback for irregular batches.
//!
//! # Quickstart
//!
//! ```
//! use f2c_compress::{compress, decompress};
//!
//! let input = b"sensor,42,21.5C,2017-03-01T10:00:00Z\n".repeat(100);
//! let packed = compress(&input)?;
//! assert!(packed.len() < input.len());
//! assert_eq!(decompress(&packed)?, input);
//! # Ok::<(), f2c_compress::Error>(())
//! ```
//!
//! The stream format is *not* zlib/zip compatible (the experiment only needs
//! the ratio class, not interoperability); see [`deflate`] for the layout.

pub mod archive;
pub mod bitio;
pub mod crc32;
pub mod deflate;
mod error;
pub mod huffman;
pub mod lz77;
pub mod ratio;
pub mod rle;
pub mod tsenc;

pub use archive::{Archive, ArchiveEntry, Method};
pub use deflate::{compress, compress_with, decompress, Level};
pub use error::{Error, Result};
pub use ratio::CompressionStats;
pub use tsenc::{StreamDecoder, StreamEncoder, Technique};
