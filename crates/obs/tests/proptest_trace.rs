//! Property tests for the tracer: under arbitrary open/close programs,
//! disciplined (LIFO) usage always yields a well-formed span forest —
//! every child interval contained in a completed parent one depth up —
//! while out-of-order closes are quarantined in the `malformed` counter
//! without corrupting the rest of the log, and the byte-stable transcript
//! is a pure function of the program.

use f2c_obs::{Site, Span, SpanToken, Tracer};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const TIERS: [&str; 3] = ["fog1", "fog2", "cloud"];
const NAMES: [&str; 4] = ["flush-wave", "flush-hop", "query", "heal-round"];

/// One program step, encoded as plain integers (the vendored proptest
/// shim has no prop_oneof/prop_map): `kind < 4` opens a span at `site`,
/// `kind < 7` closes the innermost open span at the first nonempty site
/// at or after `site`, and `kind >= 7` closes the *outermost* span at a
/// site holding at least two — deliberately violating LIFO.
type RawOp = (u8, u8, u8, u16, u16);

/// Replays `ops` against a fresh tracer. `disciplined` skips the
/// LIFO-violating steps. Returns the tracer, the number of violations
/// actually executed, and the number of spans opened.
fn replay(ops: &[RawOp], disciplined: bool) -> (Tracer, u64, usize) {
    let mut tracer = Tracer::new();
    let mut clock = 0u64;
    let mut stacks: [Vec<SpanToken>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut violations = 0u64;
    let mut opened = 0usize;
    for &(kind, site, name, dt, attr) in ops {
        clock += u64::from(dt);
        let s = (site % 3) as usize;
        if kind < 4 {
            let token = tracer.open(
                Site::new(TIERS[s], s as u32),
                NAMES[(name % 4) as usize],
                clock,
            );
            stacks[s].push(token);
            opened += 1;
        } else if kind < 7 {
            if let Some(s) = (0..3).map(|i| (s + i) % 3).find(|&s| !stacks[s].is_empty()) {
                let token = stacks[s].pop().expect("stack nonempty");
                tracer.close_with(token, clock, u64::from(attr));
            }
        } else if !disciplined {
            if let Some(s) = (0..3).find(|&s| stacks[s].len() >= 2) {
                let token = stacks[s].remove(0);
                tracer.close(token, clock);
                violations += 1;
            }
        }
    }
    // Drain: close everything still open, innermost first.
    for stack in &mut stacks {
        while let Some(token) = stack.pop() {
            clock += 1;
            tracer.close(token, clock);
        }
    }
    (tracer, violations, opened)
}

/// Every completed span of depth `d > 0` must be contained in the first
/// span completed after it at depth `d - 1` — its parent, under LIFO
/// close order.
fn assert_wellformed_forest(spans: &[Span]) -> Result<(), TestCaseError> {
    for (i, span) in spans.iter().enumerate() {
        prop_assert!(span.end_us >= span.start_us, "span closes before it opens");
        if span.depth == 0 {
            continue;
        }
        let parent = spans[i + 1..].iter().find(|p| p.depth == span.depth - 1);
        let Some(parent) = parent else {
            return Err(TestCaseError::fail(format!(
                "no parent completed after child {span:?}"
            )));
        };
        prop_assert!(
            parent.start_us <= span.start_us && parent.end_us >= span.end_us,
            "child {:?} escapes parent {:?}",
            span,
            parent
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disciplined_programs_always_nest_wellformed(
        ops in proptest::collection::vec(
            (0u8..8, 0u8..3, 0u8..4, 0u16..1_000, 0u16..u16::MAX),
            1..200,
        ),
    ) {
        let (tracer, violations, opened) = replay(&ops, true);
        prop_assert_eq!(violations, 0);
        prop_assert_eq!(tracer.malformed(), 0, "LIFO usage must never be malformed");
        prop_assert_eq!(tracer.span_count(), opened, "every open must complete");
        for site in tracer.sites().collect::<Vec<_>>() {
            let log = tracer.log(site).expect("listed site has a log");
            prop_assert_eq!(log.open_count(), 0, "drained log still holds opens");
            let spans: Vec<Span> = log.completed().copied().collect();
            assert_wellformed_forest(&spans)?;
        }
    }

    #[test]
    fn undisciplined_closes_are_quarantined_not_corrupting(
        ops in proptest::collection::vec(
            (0u8..8, 0u8..3, 0u8..4, 0u16..1_000, 0u16..u16::MAX),
            1..200,
        ),
    ) {
        let (tracer, violations, opened) = replay(&ops, false);
        prop_assert_eq!(
            tracer.malformed(), violations,
            "each out-of-order close must count exactly once"
        );
        // Every open still resolves somewhere: as a kept span or as a
        // quarantined malformed close — nothing leaks or double-counts.
        prop_assert_eq!(
            tracer.span_count() as u64 + tracer.malformed(),
            opened as u64
        );
        for site in tracer.sites().collect::<Vec<_>>() {
            prop_assert_eq!(
                tracer.log(site).expect("listed site has a log").open_count(),
                0
            );
        }
        // The transcript still encodes, whatever the abuse.
        prop_assert!(!tracer.encode().is_empty() || opened == 0);
    }

    #[test]
    fn transcripts_are_a_pure_function_of_the_program(
        ops in proptest::collection::vec(
            (0u8..8, 0u8..3, 0u8..4, 0u16..1_000, 0u16..u16::MAX),
            1..200,
        ),
    ) {
        let (a, _, _) = replay(&ops, false);
        let (b, _, _) = replay(&ops, false);
        prop_assert_eq!(a.encode(), b.encode(), "replays must be byte-identical");
    }
}
