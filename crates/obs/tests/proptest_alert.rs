//! Property oracle for [`BurnRateMonitor`]: the incremental monitor —
//! with its pruned sample ring — must agree transition-for-transition
//! with a brute-force reference that keeps the *entire* observation
//! history and rescans it on every evaluation. Any divergence means the
//! pruning dropped a sample that still anchored a window baseline, or
//! the integer burn math lost precision somewhere.

use proptest::prelude::*;

use f2c_obs::{AlertTransition, BurnRateMonitor, SloSpec};

/// The reference implementation: no pruning, no incremental state —
/// burn over a window is recomputed from the full history every time.
struct BruteForce {
    spec: SloSpec,
    history: Vec<(u64, u64, u64)>,
    firing: bool,
}

impl BruteForce {
    fn burn_milli(&self, now_s: u64, window_s: u64, good: u64, bad: u64) -> u64 {
        let from_s = now_s.saturating_sub(window_s);
        // Newest sample at or before the window start; the oldest sample
        // stands in while the history is shorter than the window. Unlike
        // the monitor, this scans the FULL history — so it catches any
        // pruning that discarded a still-anchoring baseline.
        let mut base = self.history.first().map_or((0, 0), |&(_, g, b)| (g, b));
        for &(t, g, b) in &self.history {
            if t <= from_s {
                base = (g, b);
            } else {
                break;
            }
        }
        let bad_delta = bad.saturating_sub(base.1);
        let total_delta = good.saturating_sub(base.0) + bad_delta;
        if total_delta == 0 {
            return 0;
        }
        let budget_ppm = 1_000_000 - self.spec.objective_ppm.min(999_999);
        ((bad_delta as u128 * 1_000_000 * 1_000) / (total_delta as u128 * budget_ppm as u128))
            as u64
    }

    fn evaluate(&mut self, now_s: u64, good: u64, bad: u64) -> Option<AlertTransition> {
        let fast = self.burn_milli(now_s, self.spec.fast_window_s, good, bad);
        let slow = self.burn_milli(now_s, self.spec.slow_window_s, good, bad);
        self.history.push((now_s, good, bad));
        let over = fast >= self.spec.fire_burn_milli && slow >= self.spec.fire_burn_milli;
        if !self.firing && over {
            self.firing = true;
            Some(AlertTransition::Fired {
                fast_burn_milli: fast,
                slow_burn_milli: slow,
            })
        } else if self.firing && fast < self.spec.fire_burn_milli {
            self.firing = false;
            Some(AlertTransition::Resolved {
                fast_burn_milli: fast,
                slow_burn_milli: slow,
            })
        } else {
            None
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn monitor_matches_the_brute_force_reference(
        objective_ppm in proptest::sample::select(vec![990_000u64, 999_000, 999_900]),
        fast_window_s in 60u64..900,
        slow_factor in 2u64..12,
        fire_burn_milli in proptest::sample::select(vec![1_000u64, 6_000, 10_000]),
        steps in proptest::collection::vec(
            // (time advance, good delta, bad delta): bursty error rates
            // around the threshold so both fire and resolve paths run.
            (1u64..600, 0u64..2_000, 0u64..40),
            1..120,
        ),
    ) {
        let spec = SloSpec {
            name: "availability",
            objective_ppm,
            fast_window_s,
            slow_window_s: fast_window_s * slow_factor,
            fire_burn_milli,
        };
        let mut monitor = BurnRateMonitor::new(spec);
        let mut oracle = BruteForce { spec, history: Vec::new(), firing: false };
        let (mut now_s, mut good, mut bad) = (0u64, 0u64, 0u64);
        let mut transitions = 0u32;
        for (dt, dg, db) in steps {
            now_s += dt;
            good += dg;
            bad += db;
            let got = monitor.evaluate(now_s, good, bad);
            let want = oracle.evaluate(now_s, good, bad);
            prop_assert_eq!(
                got, want,
                "divergence at t={} good={} bad={}", now_s, good, bad
            );
            transitions += u32::from(got.is_some());
        }
        prop_assert_eq!(monitor.firing(), oracle.firing);
        prop_assert_eq!(
            monitor.fired_count() + monitor.resolved_count(),
            u64::from(transitions)
        );
    }
}
