//! # f2c-obs — the observability plane
//!
//! The paper's whole argument is quantitative — traffic volumes per hop and
//! fog-vs-cloud latency distributions — so the reproduction needs its numbers
//! in one machine-readable place, not scattered across per-crate structs.
//! This crate is that place:
//!
//! * [`registry`] — the unified [`MetricsRegistry`]: named counters, gauges
//!   and duration histograms with a static label set ([`Labels`]: layer,
//!   class, service, fault kind). The city, the query engine, the QoS ledger
//!   and the sketch plane all publish into one registry; the old hand-rolled
//!   stat structs survive only as typed *views* over it.
//! * [`trace`] — deterministic sim-time tracing: plain-value [`Span`]s
//!   opened/closed on the event clock (no wall time, no globals, no thread
//!   locals), nested parent/child per site, kept in a ring-buffered
//!   [`TraceLog`] per node, with a byte-stable transcript encoding so three
//!   replicas of a seeded run produce identical traces.
//! * [`json`] — a dependency-free JSON value (the vendored serde is a no-op
//!   shim), writer and parser, for the `BENCH_*.json` export pipeline.
//! * [`budget`] — the perf-budget gate: diff a fresh bench snapshot against
//!   a committed baseline and fail on regressions beyond per-metric
//!   tolerances.
//! * [`explain`] — deterministic min-hash reservoir retention for planner
//!   EXPLAIN transcripts ([`ExplainStore`]).
//! * [`exemplar`] — per-latency-bucket trace exemplars: the slowest query
//!   in each histogram bucket keeps its span tree ([`ExemplarStore`]).
//! * [`alert`] — multi-window SLO burn-rate alerting on the event clock
//!   ([`BurnRateMonitor`]), the diagnosis plane's "notice it during the
//!   run" rung.
//!
//! Everything here is a plain single-threaded value: determinism is the
//! contract, and `tests/determinism.rs` holds the registry and tracer to the
//! same byte-identical-replica oracle as the simulation itself.
//!
//! # Example
//!
//! ```
//! use citysim::time::Duration;
//! use f2c_obs::{Labels, MetricsRegistry, Site, Tracer};
//!
//! let mut reg = MetricsRegistry::new();
//! let served = reg.counter("queries_served", Labels::new().layer("fog1"));
//! reg.inc(served);
//! let lat = reg.histogram("latency", Labels::new().layer("fog1"));
//! reg.observe(lat, Duration::from_millis(3));
//! assert_eq!(reg.counter_value(served), 1);
//!
//! let mut tracer = Tracer::new();
//! let site = Site::new("fog1", 5);
//! let span = tracer.open(site, "flush-hop", 900_000_000);
//! tracer.close_with(span, 900_000_450, 1_234);
//! assert_eq!(tracer.span_count(), 1);
//! ```

pub mod alert;
pub mod budget;
pub mod exemplar;
pub mod explain;
pub mod json;
pub mod labels;
pub mod registry;
pub mod trace;

pub use alert::{AlertEvent, AlertTransition, BurnRateMonitor, SloSpec};
pub use budget::{check_budget, BudgetRule, Violation};
pub use exemplar::{Exemplar, ExemplarStore};
pub use explain::ExplainStore;
pub use json::{Json, JsonError};
pub use labels::Labels;
pub use registry::{CounterId, GaugeId, HistogramId, HistogramSummary, MetricsRegistry, Snapshot};
pub use trace::{Site, Span, SpanToken, TraceLog, Tracer, TracerMark};
