//! Trace exemplars: one concrete span tree per latency bucket.
//!
//! A histogram's p99 says *how slow*; an exemplar says *what the slow one
//! did*. [`ExemplarStore`] mirrors the [`citysim::Histogram`] bucket
//! layout slot-for-slot and keeps, per bucket, the slowest query that
//! landed there together with its rendered span tree — so the tail
//! bucket's exemplar is a plan→admit→execute→leg breakdown, not a number.
//!
//! The combine rule is keep-max latency (ties broken on trace bytes,
//! smallest wins), which is associative and commutative: per-shard
//! stores absorbed at barriers in canonical shard order export the same
//! bytes at any thread count, same discipline as the rest of the
//! observability plane.

use citysim::metrics::{bucket_index, bucket_upper_micros, NUM_BUCKETS};

use crate::json::Json;

/// One retained exemplar: the slowest observation in its bucket.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The observation's latency, microseconds.
    pub latency_us: u64,
    /// Rendered span tree of the exemplar query, byte-stable.
    pub trace: String,
}

/// Per-bucket exemplar slots mirroring the histogram layout. See the
/// module docs.
#[derive(Debug, Clone)]
pub struct ExemplarStore {
    slots: Vec<Option<Exemplar>>,
    seen: u64,
}

impl ExemplarStore {
    /// An empty store, one slot per histogram bucket.
    pub fn new() -> Self {
        Self {
            slots: vec![None; NUM_BUCKETS],
            seen: 0,
        }
    }

    /// Whether an observation at `latency_us` would displace (or fill)
    /// its bucket's slot. Callers use this to skip rendering the span
    /// tree for the overwhelming majority of queries that are not their
    /// bucket's slowest.
    ///
    /// Equal latencies answer `true`: the tie breaks on trace bytes,
    /// which only exist after rendering.
    pub fn would_admit(&self, latency_us: u64) -> bool {
        match &self.slots[bucket_index(latency_us)] {
            None => true,
            Some(e) => latency_us >= e.latency_us,
        }
    }

    /// Counts an observation and retains it if it is its bucket's slowest
    /// (keep-max latency; on ties, smallest trace bytes). `render` runs
    /// only when [`Self::would_admit`] holds.
    pub fn observe(&mut self, latency_us: u64, render: impl FnOnce() -> String) {
        self.seen += 1;
        if !self.would_admit(latency_us) {
            return;
        }
        let trace = render();
        self.observe_rendered(latency_us, trace);
    }

    fn observe_rendered(&mut self, latency_us: u64, trace: String) {
        let slot = bucket_index(latency_us);
        let admit = match &self.slots[slot] {
            None => true,
            Some(e) => {
                latency_us > e.latency_us
                    || (latency_us == e.latency_us && trace.as_str() < e.trace.as_str())
            }
        };
        if admit {
            self.slots[slot] = Some(Exemplar { latency_us, trace });
        }
    }

    /// Observations offered so far (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Buckets currently holding an exemplar.
    pub fn kept(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// The exemplar of the bucket that `latency_us` falls in, if any.
    pub fn exemplar_for(&self, latency_us: u64) -> Option<&Exemplar> {
        self.slots[bucket_index(latency_us)].as_ref()
    }

    /// Drains `other` into `self` under the keep-max rule; seen counts
    /// add. Bucket layouts are identical by construction.
    pub fn absorb(&mut self, other: &mut ExemplarStore) {
        self.seen += other.seen;
        other.seen = 0;
        for slot in &mut other.slots {
            if let Some(e) = slot.take() {
                self.observe_rendered(e.latency_us, e.trace);
            }
        }
    }

    /// The retained exemplars as a Json export: bucket-ordered entries of
    /// `{bucket, upper_us, latency_us, trace}` plus the accounting.
    pub fn export(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("seen", Json::Num(self.seen as f64));
        doc.set("kept", Json::Num(self.kept() as f64));
        let mut buckets = Vec::new();
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(e) = slot else { continue };
            let mut entry = Json::obj();
            entry.set("bucket", Json::Num(i as f64));
            entry.set("upper_us", Json::Num(bucket_upper_micros(i) as f64));
            entry.set("latency_us", Json::Num(e.latency_us as f64));
            entry.set("trace", Json::Str(e.trace.clone()));
            buckets.push(entry);
        }
        doc.set("buckets", Json::Arr(buckets));
        doc
    }
}

impl Default for ExemplarStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_slowest_per_bucket() {
        let mut s = ExemplarStore::new();
        // 1100 and 1400 share the [1024, 1536) bucket; 100 lives elsewhere.
        s.observe(1_100, || "fast".to_string());
        s.observe(1_400, || "slow".to_string());
        s.observe(100, || "other".to_string());
        assert_eq!(s.seen(), 3);
        assert_eq!(s.kept(), 2);
        assert_eq!(s.exemplar_for(1_100).unwrap().trace, "slow");
        assert_eq!(s.exemplar_for(100).unwrap().trace, "other");
    }

    #[test]
    fn would_admit_gates_rendering() {
        let mut s = ExemplarStore::new();
        s.observe(1_400, || "slowest".to_string());
        assert!(!s.would_admit(1_100));
        s.observe(1_100, || panic!("observe must not render a losing trace"));
        assert_eq!(s.seen(), 2);
        assert_eq!(s.exemplar_for(1_400).unwrap().trace, "slowest");
    }

    #[test]
    fn absorb_is_order_insensitive() {
        let obs: [(u64, &str); 4] = [(900, "a"), (1_400, "b"), (1_400, "c"), (30, "d")];
        let mut whole = ExemplarStore::new();
        for (us, t) in obs {
            whole.observe(us, || t.to_string());
        }
        for split_at in 0..obs.len() {
            let mut left = ExemplarStore::new();
            let mut right = ExemplarStore::new();
            for (i, (us, t)) in obs.iter().enumerate() {
                let dst = if i < split_at { &mut left } else { &mut right };
                dst.observe(*us, || t.to_string());
            }
            let mut merged = ExemplarStore::new();
            merged.absorb(&mut right);
            merged.absorb(&mut left);
            assert_eq!(merged.export().to_pretty(), whole.export().to_pretty());
            assert_eq!(left.seen(), 0, "absorb drains the source");
        }
    }
}
