//! The unified metrics registry.
//!
//! One plain-value home for every number the planes publish: named counters,
//! gauges and duration histograms, each keyed by `(name, Labels)`.
//! Publishers register once up front and get back a dense id
//! ([`CounterId`] / [`GaugeId`] / [`HistogramId`]); hot-path updates are an
//! array index, not a map lookup. Registration is idempotent — asking for
//! the same `(name, labels)` again returns the same id — so independent
//! publishers can share a series without coordinating.
//!
//! The registry is deliberately *not* global and *not* atomic: it lives
//! inside the deterministic simulation (the city owns one) and snapshots
//! iterate in key order, so two replicas of a seeded run export identical
//! snapshots.

use std::collections::BTreeMap;

use citysim::time::Duration;
use citysim::Histogram;

use crate::labels::Labels;

/// Handle to a registered counter (dense index; `Copy`, cheap to store).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// The unified registry. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<((&'static str, Labels), u64)>,
    gauges: Vec<((&'static str, Labels), i64)>,
    histograms: Vec<((&'static str, Labels), Histogram)>,
    index: BTreeMap<(&'static str, Labels), Slot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn counter(&mut self, name: &'static str, labels: Labels) -> CounterId {
        match self.index.get(&(name, labels)) {
            Some(Slot::Counter(i)) => CounterId(*i),
            Some(_) => panic!("metric {name}{labels} already registered as a non-counter"),
            None => {
                let i = self.counters.len();
                self.counters.push(((name, labels), 0));
                self.index.insert((name, labels), Slot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or finds) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &'static str, labels: Labels) -> GaugeId {
        match self.index.get(&(name, labels)) {
            Some(Slot::Gauge(i)) => GaugeId(*i),
            Some(_) => panic!("metric {name}{labels} already registered as a non-gauge"),
            None => {
                let i = self.gauges.len();
                self.gauges.push(((name, labels), 0));
                self.index.insert((name, labels), Slot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or finds) the duration histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &'static str, labels: Labels) -> HistogramId {
        match self.index.get(&(name, labels)) {
            Some(Slot::Histogram(i)) => HistogramId(*i),
            Some(_) => panic!("metric {name}{labels} already registered as a non-histogram"),
            None => {
                let i = self.histograms.len();
                self.histograms.push(((name, labels), Histogram::new()));
                self.index.insert((name, labels), Slot::Histogram(i));
                HistogramId(i)
            }
        }
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, value: i64) {
        self.gauges[id.0].1 = value;
    }

    /// Current gauge value.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    /// Records one duration sample into a histogram.
    pub fn observe(&mut self, id: HistogramId, d: Duration) {
        self.histograms[id.0].1.record(d);
    }

    /// Merges a per-node / per-run histogram into a registered series at
    /// report time (this is what [`Histogram::merge`] exists for).
    pub fn merge_histogram(&mut self, id: HistogramId, other: &Histogram) {
        self.histograms[id.0].1.merge(other);
    }

    /// Read access to a registered histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks up a counter's value by key, if registered.
    pub fn counter_named(&self, name: &'static str, labels: Labels) -> Option<u64> {
        match self.index.get(&(name, labels)) {
            Some(Slot::Counter(i)) => Some(self.counters[*i].1),
            _ => None,
        }
    }

    /// Looks up a histogram by key, if registered.
    pub fn histogram_named(&self, name: &'static str, labels: Labels) -> Option<&Histogram> {
        match self.index.get(&(name, labels)) {
            Some(Slot::Histogram(i)) => Some(&self.histograms[*i].1),
            _ => None,
        }
    }

    /// Number of registered series across all kinds.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Drains every counter of `other` into `self` by `(name, labels)`
    /// key, adding values. `map` caches the other-id → self-id
    /// translation (ids are dense per registry, so the cache is a plain
    /// vector indexed by the other registry's counter slot) and is
    /// extended as `other` registers new series — with a warm cache the
    /// drain is one array add per series, cheap enough to run after
    /// every serve. Series missing here are registered on first drain,
    /// so key-ordered snapshots see the union.
    pub fn absorb_counters(&mut self, other: &mut MetricsRegistry, map: &mut Vec<CounterId>) {
        while map.len() < other.counters.len() {
            let (name, labels) = other.counters[map.len()].0;
            map.push(self.counter(name, labels));
        }
        for (i, (_, value)) in other.counters.iter_mut().enumerate() {
            if *value != 0 {
                self.counters[map[i].0].1 += *value;
                *value = 0;
            }
        }
    }

    /// Drains every histogram of `other` into `self` by key, merging
    /// samples. Registration on demand, like counter absorption.
    pub fn absorb_histograms(&mut self, other: &mut MetricsRegistry) {
        for i in 0..other.histograms.len() {
            let (name, labels) = other.histograms[i].0;
            if other.histograms[i].1.count() == 0 {
                continue;
            }
            let id = self.histogram(name, labels);
            self.histograms[id.0].1.merge(&other.histograms[i].1);
            other.histograms[i].1 = Histogram::new();
        }
    }

    /// Merges another registry into this one: counters add, histograms
    /// merge, gauges take the other's value — all by key, registering
    /// missing series. Order-insensitive for counters and histograms, so
    /// per-shard registries folded in canonical shard order yield the
    /// same totals any schedule would.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for &((name, labels), value) in &other.counters {
            if value != 0 {
                let id = self.counter(name, labels);
                self.counters[id.0].1 += value;
            }
        }
        for &((name, labels), value) in &other.gauges {
            let id = self.gauge(name, labels);
            self.gauges[id.0].1 = value;
        }
        for &((name, labels), ref hist) in &other.histograms {
            if hist.count() > 0 {
                let id = self.histogram(name, labels);
                self.histograms[id.0].1.merge(hist);
            }
        }
    }

    /// A point-in-time copy of every series, in canonical key order.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (&(name, labels), slot) in &self.index {
            let key = format!("{name}{labels}");
            match slot {
                Slot::Counter(i) => counters.push((key, self.counters[*i].1)),
                Slot::Gauge(i) => gauges.push((key, self.gauges[*i].1)),
                Slot::Histogram(i) => {
                    histograms.push((key, HistogramSummary::of(&self.histograms[*i].1)))
                }
            }
        }
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Summary of one histogram series at snapshot time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min_us: u64,
    /// Median (bucket upper bound).
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Largest sample.
    pub max_us: u64,
    /// Exact mean.
    pub mean_us: u64,
}

impl HistogramSummary {
    /// Summarizes one histogram.
    pub fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            min_us: h.min().as_micros(),
            p50_us: h.quantile(0.5).as_micros(),
            p90_us: h.quantile(0.9).as_micros(),
            p99_us: h.quantile(0.99).as_micros(),
            max_us: h.max().as_micros(),
            mean_us: h.mean().as_micros(),
        }
    }
}

/// A point-in-time export of the registry: every series with its canonical
/// `name{labels}` key, sorted, ready for the JSON pipeline.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter series, key-ordered.
    pub counters: Vec<(String, u64)>,
    /// Gauge series, key-ordered.
    pub gauges: Vec<(String, i64)>,
    /// Histogram series, key-ordered.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Looks up a counter by its canonical key. The counter vector is
    /// key-ordered (it comes out of the registry's `BTreeMap` index), so
    /// this is a binary search — cheap enough for the budget gate and the
    /// burn-rate monitor to call per rule per evaluation.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a histogram summary by its canonical key (binary search
    /// over the key-ordered vector, like [`Snapshot::counter`]).
    pub fn histogram(&self, key: &str) -> Option<&HistogramSummary> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.histograms[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_dense() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("requests", Labels::new().layer("fog1"));
        let b = r.counter("requests", Labels::new().layer("fog1"));
        assert_eq!(a, b);
        let c = r.counter("requests", Labels::new().layer("fog2"));
        assert_ne!(a, c);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_are_refused() {
        let mut r = MetricsRegistry::new();
        r.counter("x", Labels::NONE);
        r.gauge("x", Labels::NONE);
    }

    #[test]
    fn gauges_hold_last_set_value() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("in_flight", Labels::new().layer("cloud"));
        r.set(g, 7);
        r.set(g, 3);
        assert_eq!(r.gauge_value(g), 3);
    }

    #[test]
    fn histograms_observe_and_merge() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("latency", Labels::new().class("realtime"));
        r.observe(h, Duration::from_millis(2));
        let mut node_local = Histogram::new();
        node_local.record(Duration::from_millis(8));
        r.merge_histogram(h, &node_local);
        assert_eq!(r.histogram_ref(h).count(), 2);
        assert_eq!(
            r.histogram_named("latency", Labels::new().class("realtime"))
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn snapshot_is_key_ordered_and_complete() {
        let mut r = MetricsRegistry::new();
        let z = r.counter("z_last", Labels::NONE);
        let a = r.counter("a_first", Labels::NONE);
        let g = r.gauge("mid", Labels::new().layer("fog1"));
        let h = r.histogram("lat", Labels::NONE);
        r.inc(z);
        r.add(a, 5);
        r.set(g, -2);
        r.observe(h, Duration::from_micros(100));
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a_first");
        assert_eq!(snap.counters[1].0, "z_last");
        assert_eq!(snap.counter("a_first"), Some(5));
        assert_eq!(snap.gauges, vec![("mid{layer=fog1}".to_string(), -2)]);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
        assert_eq!(snap.histogram("absent"), None);
    }

    #[test]
    fn summary_of_single_sample_pins_all_quantiles() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(300));
        let s = HistogramSummary::of(&h);
        assert_eq!(s.count, 1);
        assert_eq!(s.min_us, 300);
        assert_eq!(s.max_us, 300);
        assert_eq!(s.mean_us, 300);
        // Quantiles clamp to max for a single sample.
        assert_eq!(s.p50_us, 300);
        assert_eq!(s.p99_us, 300);
    }
}
