//! Deterministic sim-time tracing.
//!
//! Spans are plain values opened and closed on the *event clock* — no wall
//! time, no globals, no thread locals — so a trace is a pure function of the
//! seeded run and three replicas encode byte-identical transcripts.
//!
//! Each traced node ([`Site`]) owns a [`TraceLog`]: a bounded ring of
//! completed [`Span`]s plus a stack of currently-open ones. Nesting is
//! structural — a span opened while another is open becomes its child
//! (depth + 1), and a close must name the *innermost* open span; anything
//! else is counted as malformed rather than silently reshuffled, so the
//! well-formedness property is checkable (and property-tested).

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use citysim::time::Duration;
use citysim::Histogram;

/// A traced node: a static tier name plus an index within the tier
/// (`fog1/17`, `fog2/3`, `cloud/0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Site {
    /// Tier name (`"fog1"`, `"fog2"`, `"cloud"`, …).
    pub tier: &'static str,
    /// Index within the tier.
    pub index: u32,
}

impl Site {
    /// A site.
    pub const fn new(tier: &'static str, index: u32) -> Self {
        Self { tier, index }
    }

    /// The cloud site.
    pub const fn cloud() -> Self {
        Self::new("cloud", 0)
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.tier, self.index)
    }
}

/// One completed span: a named interval of simulated time at one site,
/// with its nesting depth and one free attribute (bytes shipped, legs
/// gathered, holes healed — whatever the phase counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Phase name (static: `"flush-wave"`, `"query"`, `"heal-round"`, …).
    pub name: &'static str,
    /// Open instant, simulated microseconds.
    pub start_us: u64,
    /// Close instant, simulated microseconds.
    pub end_us: u64,
    /// Nesting depth at open time (0 = root).
    pub depth: u16,
    /// Free attribute recorded at close.
    pub attr: u64,
}

impl Span {
    /// The span's simulated duration.
    pub fn duration(&self) -> Duration {
        Duration::from_micros(self.end_us.saturating_sub(self.start_us))
    }
}

/// Token returned by [`Tracer::open`]; closing consumes it. Carries the
/// site so a close cannot be misdelivered to another node's log.
#[derive(Debug, Clone, Copy)]
#[must_use = "an unclosed span is an orphan in the transcript"]
pub struct SpanToken {
    site: Site,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    seq: u64,
    name: &'static str,
    start_us: u64,
    depth: u16,
}

/// One node's bounded span log. See the module docs.
#[derive(Debug, Clone)]
pub struct TraceLog {
    capacity: usize,
    done: VecDeque<Span>,
    open: Vec<OpenSpan>,
    next_seq: u64,
    dropped: u64,
    dropped_by_phase: BTreeMap<&'static str, u64>,
    malformed: u64,
}

impl TraceLog {
    /// An empty log keeping at most `capacity` completed spans (oldest
    /// evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            done: VecDeque::new(),
            open: Vec::new(),
            next_seq: 0,
            dropped: 0,
            dropped_by_phase: BTreeMap::new(),
            malformed: 0,
        }
    }

    fn evict_for_room(&mut self) {
        if self.done.len() == self.capacity {
            let evicted = self.done.pop_front().expect("capacity >= 1");
            self.dropped += 1;
            *self.dropped_by_phase.entry(evicted.name).or_default() += 1;
        }
    }

    fn open(&mut self, name: &'static str, at_us: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.open.push(OpenSpan {
            seq,
            name,
            start_us: at_us,
            depth: self.open.len() as u16,
        });
        seq
    }

    fn close(&mut self, seq: u64, at_us: u64, attr: u64) -> bool {
        match self.open.last() {
            Some(top) if top.seq == seq => {
                let top = self.open.pop().expect("just matched");
                self.evict_for_room();
                self.done.push_back(Span {
                    name: top.name,
                    start_us: top.start_us,
                    end_us: at_us.max(top.start_us),
                    depth: top.depth,
                    attr,
                });
                true
            }
            _ => {
                // Closing anything but the innermost open span (or a span
                // never opened here) is a structural bug in the caller;
                // count it, drop the entry if present, record nothing.
                self.open.retain(|o| o.seq != seq);
                self.malformed += 1;
                false
            }
        }
    }

    /// Appends an already-completed span, honoring the ring bound. This
    /// is the merge path: a shard's scratch log drains into the global
    /// one span by span, so eviction and drop accounting behave exactly
    /// as if the span had been closed here.
    fn push_completed(&mut self, span: Span) {
        self.evict_for_room();
        self.done.push_back(span);
    }

    /// Completed spans, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &Span> {
        self.done.iter()
    }

    /// Number of spans currently open (0 in a well-formed quiescent log).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Completed spans evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring evictions broken down by the evicted span's phase name.
    /// `phase_histograms()` only sees retained spans, so a saturated ring
    /// would silently skew a phase's p99 — this map names who got lost.
    pub fn dropped_by_phase(&self) -> &BTreeMap<&'static str, u64> {
        &self.dropped_by_phase
    }

    /// Structurally invalid closes observed (0 in a well-formed log).
    pub fn malformed(&self) -> u64 {
        self.malformed
    }
}

/// A snapshot of every site's log position at one instant; see
/// [`Tracer::mark`].
#[derive(Debug, Clone)]
pub struct TracerMark {
    /// Per site: (completed-span count, cumulative drop count) at mark
    /// time.
    per_site: BTreeMap<Site, (usize, u64)>,
}

/// The per-run tracer: one [`TraceLog`] per [`Site`], key-ordered so the
/// encoded transcript is byte-stable across replicas.
#[derive(Debug, Clone)]
pub struct Tracer {
    capacity: usize,
    logs: BTreeMap<Site, TraceLog>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Default per-site ring capacity. Big enough that a flush wave over
    /// all 73 sections plus a heal round fits without eviction; small
    /// enough that a million-query run stays bounded.
    pub const DEFAULT_CAPACITY: usize = 2_048;

    /// A tracer with the default per-site capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A tracer keeping at most `capacity` completed spans per site.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            logs: BTreeMap::new(),
        }
    }

    /// Opens a span at `site` at simulated instant `at_us`; it nests under
    /// any span already open there.
    pub fn open(&mut self, site: Site, name: &'static str, at_us: u64) -> SpanToken {
        let cap = self.capacity;
        let seq = self
            .logs
            .entry(site)
            .or_insert_with(|| TraceLog::new(cap))
            .open(name, at_us);
        SpanToken { site, seq }
    }

    /// Closes a span with attribute 0. Returns `false` (and counts the
    /// close as malformed) if the token is not the innermost open span.
    pub fn close(&mut self, token: SpanToken, at_us: u64) -> bool {
        self.close_with(token, at_us, 0)
    }

    /// Closes a span recording one free attribute.
    pub fn close_with(&mut self, token: SpanToken, at_us: u64, attr: u64) -> bool {
        match self.logs.get_mut(&token.site) {
            Some(log) => log.close(token.seq, at_us, attr),
            None => false,
        }
    }

    /// The log of one site, if it ever opened a span.
    pub fn log(&self, site: Site) -> Option<&TraceLog> {
        self.logs.get(&site)
    }

    /// All traced sites, key-ordered.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        self.logs.keys().copied()
    }

    /// Total completed spans currently retained across all sites.
    pub fn span_count(&self) -> usize {
        self.logs.values().map(|l| l.done.len()).sum()
    }

    /// Total malformed closes across all sites (0 in a well-formed run).
    pub fn malformed(&self) -> u64 {
        self.logs.values().map(|l| l.malformed).sum()
    }

    /// Moves every completed span (and ring/malformed accounting) of
    /// `other` into `self`, per site in key order, preserving each
    /// site's span order. Open spans stay behind in `other` — a scratch
    /// tracer is only absorbed at quiescent points, where a well-formed
    /// caller has closed everything it opened. Called per shard in
    /// canonical shard order at barriers, the merged transcript is a
    /// pure function of the shard schedule, never of thread timing.
    pub fn absorb(&mut self, other: &mut Tracer) {
        let cap = self.capacity;
        for (site, log) in &mut other.logs {
            let dst = self.logs.entry(*site).or_insert_with(|| TraceLog::new(cap));
            while let Some(span) = log.done.pop_front() {
                dst.push_completed(span);
            }
            dst.dropped += log.dropped;
            log.dropped = 0;
            for (phase, n) in std::mem::take(&mut log.dropped_by_phase) {
                *dst.dropped_by_phase.entry(phase).or_default() += n;
            }
            dst.malformed += log.malformed;
            log.malformed = 0;
        }
    }

    /// Ring evictions across all sites, by the evicted span's phase name.
    pub fn dropped_by_phase(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for log in self.logs.values() {
            for (&phase, &n) in &log.dropped_by_phase {
                *out.entry(phase).or_default() += n;
            }
        }
        out
    }

    /// A position marker into every site's log at one instant, for
    /// carving out the spans one operation appended ([`Tracer::spans_since`]).
    pub fn mark(&self) -> TracerMark {
        TracerMark {
            per_site: self
                .logs
                .iter()
                .map(|(site, log)| (*site, (log.done.len(), log.dropped)))
                .collect(),
        }
    }

    /// Renders every span completed since `mark`, site-ordered, oldest
    /// first per site — ring eviction between mark and now is accounted
    /// for, so the suffix is exact. This is how a query's own span tree
    /// is carved out of the shared log for an exemplar slot.
    pub fn spans_since(&self, mark: &TracerMark) -> String {
        let mut out = String::new();
        for (site, log) in &self.logs {
            let (mark_len, mark_dropped) = mark.per_site.get(site).copied().unwrap_or((0, 0));
            let evicted_since = (log.dropped - mark_dropped) as usize;
            let start = mark_len.saturating_sub(evicted_since);
            for span in log.completed().skip(start) {
                let _ = writeln!(
                    out,
                    "{site} {} {}..{} d={} a={}",
                    span.name, span.start_us, span.end_us, span.depth, span.attr
                );
            }
        }
        out
    }

    /// A byte-stable "flight recorder" dump: the most recent `per_site`
    /// completed spans of every site, key-ordered, oldest-first within a
    /// site. This is what the burn-rate monitor attaches to a fired alert
    /// — a bounded look at what the city was doing when the SLO burned.
    pub fn flight_record(&self, per_site: usize) -> String {
        let mut out = String::new();
        for (site, log) in &self.logs {
            let skip = log.done.len().saturating_sub(per_site);
            for span in log.completed().skip(skip) {
                let _ = writeln!(
                    out,
                    "{site} {} {}..{} d={} a={}",
                    span.name, span.start_us, span.end_us, span.depth, span.attr
                );
            }
        }
        out
    }

    /// Per-phase duration histograms over every retained span, name-keyed.
    /// This is where the export's per-phase p50/p99 come from.
    pub fn phase_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for log in self.logs.values() {
            for span in log.completed() {
                out.entry(span.name).or_default().record(span.duration());
            }
        }
        out
    }

    /// The byte-stable transcript: every site in key order, a header line
    /// with its ring accounting, then its retained spans oldest-first with
    /// depth rendered as leading dots. Two replicas of a seeded run must
    /// produce identical bytes — `tests/determinism.rs` holds this to the
    /// same oracle as the simulation's flush transcripts.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        for (site, log) in &self.logs {
            let _ = writeln!(
                out,
                "@{site} kept={} dropped={} open={} malformed={}",
                log.done.len(),
                log.dropped,
                log.open.len(),
                log.malformed,
            );
            for span in log.completed() {
                for _ in 0..span.depth {
                    out.push('.');
                }
                let _ = writeln!(
                    out,
                    "{} {}..{} a={}",
                    span.name, span.start_us, span.end_us, span.attr
                );
            }
        }
        out.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Site = Site::new("fog1", 0);

    #[test]
    fn spans_nest_and_encode_deterministically() {
        let mut t = Tracer::new();
        let wave = t.open(S, "flush-wave", 1_000);
        let hop = t.open(S, "flush-hop", 1_100);
        assert!(t.close_with(hop, 1_400, 512));
        assert!(t.close_with(wave, 2_000, 1));
        let log = t.log(S).unwrap();
        assert_eq!(log.open_count(), 0);
        assert_eq!(log.malformed(), 0);
        let spans: Vec<_> = log.completed().copied().collect();
        // Children complete before parents; depth marks the nesting.
        assert_eq!(spans[0].name, "flush-hop");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "flush-wave");
        assert_eq!(spans[1].depth, 0);
        let text = String::from_utf8(t.encode()).unwrap();
        assert_eq!(
            text,
            "@fog1/0 kept=2 dropped=0 open=0 malformed=0\n\
             .flush-hop 1100..1400 a=512\n\
             flush-wave 1000..2000 a=1\n"
        );
    }

    #[test]
    fn out_of_order_close_is_malformed_not_reshuffled() {
        let mut t = Tracer::new();
        let outer = t.open(S, "outer", 0);
        let _inner = t.open(S, "inner", 1);
        assert!(!t.close(outer, 2), "outer is not innermost");
        let log = t.log(S).unwrap();
        assert_eq!(log.malformed(), 1);
        assert_eq!(log.completed().count(), 0);
        // The inner span survives and can still close cleanly.
        assert_eq!(log.open_count(), 1);
    }

    #[test]
    fn double_close_is_malformed() {
        let mut t = Tracer::new();
        let a = t.open(S, "a", 0);
        assert!(t.close(a, 5));
        assert!(!t.close(a, 9));
        assert_eq!(t.malformed(), 1);
        assert_eq!(t.span_count(), 1);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::with_capacity(2);
        for i in 0..5u64 {
            let s = t.open(S, "tick", i * 10);
            t.close(s, i * 10 + 1);
        }
        let log = t.log(S).unwrap();
        assert_eq!(log.dropped(), 3);
        let kept: Vec<u64> = log.completed().map(|s| s.start_us).collect();
        assert_eq!(kept, vec![30, 40]);
    }

    #[test]
    fn drops_are_attributed_to_the_evicted_phase() {
        let mut t = Tracer::with_capacity(2);
        // Two "old" spans fill the ring; three "new" ones evict them plus
        // one of their own.
        for _ in 0..2 {
            let s = t.open(S, "old", 0);
            t.close(s, 1);
        }
        for _ in 0..3 {
            let s = t.open(S, "new", 10);
            t.close(s, 11);
        }
        let by_phase = t.dropped_by_phase();
        assert_eq!(by_phase.get("old"), Some(&2));
        assert_eq!(by_phase.get("new"), Some(&1));
        assert_eq!(t.log(S).unwrap().dropped(), 3);
    }

    #[test]
    fn absorb_carries_per_phase_drop_accounting() {
        let mut scratch = Tracer::with_capacity(1);
        for _ in 0..3 {
            let s = scratch.open(S, "shard-work", 0);
            scratch.close(s, 1);
        }
        let mut global = Tracer::new();
        global.absorb(&mut scratch);
        assert_eq!(global.dropped_by_phase().get("shard-work"), Some(&2));
        assert!(scratch.log(S).unwrap().dropped_by_phase().is_empty());
    }

    #[test]
    fn spans_since_carves_out_one_operation_even_across_eviction() {
        let mut t = Tracer::with_capacity(2);
        let a = t.open(S, "before", 0);
        t.close(a, 1);
        let mark = t.mark();
        // Two new spans: the first evicts "before", the second evicts the
        // first — the suffix since the mark is exactly the survivor plus
        // what eviction math recovers.
        for i in 0..3u64 {
            let s = t.open(S, "after", 100 + i);
            t.close(s, 200 + i);
        }
        let dump = t.spans_since(&mark);
        assert_eq!(
            dump,
            "fog1/0 after 101..201 d=0 a=0\n\
             fog1/0 after 102..202 d=0 a=0\n"
        );
        assert!(!dump.contains("before"));
    }

    #[test]
    fn flight_record_keeps_the_most_recent_spans_per_site() {
        let mut t = Tracer::new();
        for i in 0..4u64 {
            let s = t.open(S, "q", i * 10);
            t.close_with(s, i * 10 + 5, i);
        }
        let dump = t.flight_record(2);
        assert_eq!(
            dump,
            "fog1/0 q 20..25 d=0 a=2\n\
             fog1/0 q 30..35 d=0 a=3\n"
        );
    }

    #[test]
    fn sites_are_isolated_and_key_ordered() {
        let mut t = Tracer::new();
        let b = t.open(Site::new("fog2", 3), "x", 0);
        let a = t.open(Site::new("fog1", 9), "y", 0);
        t.close(b, 1);
        t.close(a, 1);
        let sites: Vec<String> = t.sites().map(|s| s.to_string()).collect();
        assert_eq!(sites, vec!["fog1/9", "fog2/3"]);
    }

    #[test]
    fn clock_going_backwards_clamps_to_zero_length() {
        let mut t = Tracer::new();
        let s = t.open(S, "odd", 100);
        t.close(s, 50);
        let span = *t.log(S).unwrap().completed().next().unwrap();
        assert_eq!(span.end_us, 100);
        assert_eq!(span.duration(), Duration::ZERO);
    }

    #[test]
    fn phase_histograms_pool_across_sites() {
        let mut t = Tracer::new();
        for (site, us) in [(Site::new("fog1", 0), 100), (Site::new("fog1", 1), 300)] {
            let s = t.open(site, "flush-hop", 0);
            t.close(s, us);
        }
        let phases = t.phase_histograms();
        let h = &phases["flush-hop"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Duration::from_micros(200));
    }
}
