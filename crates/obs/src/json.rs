//! A dependency-free JSON value, writer and parser.
//!
//! The workspace's vendored `serde` is a no-op marker shim (the build
//! environment is offline), so the `BENCH_*.json` pipeline carries its own
//! tiny JSON: a [`Json`] tree, a deterministic pretty-printer whose object
//! members keep insertion order, and a strict recursive-descent parser for
//! reading committed baselines back.
//!
//! Numbers are `f64`; every integer the exporter emits fits in the 2^53
//! exact range and round-trips. Integral values print without a fraction so
//! the emitted files diff cleanly.

use std::fmt;

/// A JSON value. Objects preserve insertion order (deterministic output
/// beats hash-order output for committed, diffed artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) a member of an object, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(members) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
        self
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `.`-separated member path (`"phases.query.p99_us"`).
    /// Exported metric keys never contain dots.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for part in path.split('.') {
            node = node.get(part)?;
        }
        Some(node)
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object members, in order (empty for non-objects).
    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(members) => members,
            _ => &[],
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical form for committed `BENCH_*.json` artifacts.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                what: "trailing content after document",
            });
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was wrong and the byte offset it was found at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, what: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            what: "unexpected end of input",
        }),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            what: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        at: start,
        what: "invalid number",
    })?;
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        at: start,
        what: "invalid number",
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    what: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or(JsonError {
                            at: *pos,
                            what: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            what: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            what: "invalid \\u escape",
                        })?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos,
                            what: "invalid escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                    at: *pos,
                    what: "invalid UTF-8",
                })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_print_parse_round_trips() {
        let mut doc = Json::obj();
        doc.set("schema_version", Json::Num(1.0));
        doc.set("bench", Json::Str("queries".into()));
        let mut metrics = Json::obj();
        metrics.set("requests{layer=fog1}", Json::Num(50_000.0));
        metrics.set("ratio", Json::Num(0.125));
        doc.set("metrics", metrics);
        doc.set("tags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let text = doc.to_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            back.path("metrics.requests{layer=fog1}").unwrap().as_u64(),
            Some(50_000)
        );
        assert_eq!(back.path("metrics.ratio").unwrap().as_f64(), Some(0.125));
        assert_eq!(back.get("bench").unwrap().as_str(), Some("queries"));
        assert_eq!(back.path("metrics.absent"), None);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_pretty(), "7\n");
        assert_eq!(Json::Num(-3.0).to_pretty(), "-3\n");
        assert_eq!(Json::Num(0.5).to_pretty(), "0.5\n");
    }

    #[test]
    fn object_order_is_insertion_order_and_set_replaces() {
        let mut doc = Json::obj();
        doc.set("z", Json::Num(1.0));
        doc.set("a", Json::Num(2.0));
        doc.set("z", Json::Num(3.0));
        assert_eq!(doc.members()[0].0, "z");
        assert_eq!(doc.get("z").unwrap().as_u64(), Some(3));
        assert_eq!(doc.members().len(), 2);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let doc = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = doc.to_pretty();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn malformed_input_reports_offset() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.at, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("nul").is_err());
        assert_eq!(Json::parse("  [ ]  ").unwrap(), Json::Arr(vec![]));
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-2.0).as_u64(), None);
        assert_eq!(Json::Num(9.0).as_u64(), Some(9));
        assert_eq!(Json::Str("9".into()).as_u64(), None);
    }
}
