//! The registry's static label set.
//!
//! Labels are `&'static str` on purpose: every label value the system emits
//! is a compile-time constant ("fog1", "realtime", "node-down", …), so a
//! label set is `Copy`, allocation-free on the hot path, and totally ordered
//! — which keeps registry iteration (and therefore every exported snapshot)
//! deterministic.

use std::fmt;

/// A static label set: at most one value per dimension, empty meaning
/// "unlabeled". Dimensions mirror what the planes actually tag their
/// numbers with — architecture layer, QoS class, city service, fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels {
    /// Architecture layer: `"fog1"`, `"fog2"`, `"cloud"`.
    pub layer: &'static str,
    /// QoS service class: `"realtime"`, `"dashboard"`, `"citywide"`,
    /// `"analytics"`.
    pub class: &'static str,
    /// City service / plane: `"flush"`, `"sketch"`, `"query"`, …
    pub service: &'static str,
    /// Fault or incident kind: `"node-down"`, `"shipment-lost"`, …
    pub kind: &'static str,
}

impl Labels {
    /// The unlabeled set.
    pub const NONE: Labels = Labels {
        layer: "",
        class: "",
        service: "",
        kind: "",
    };

    /// Starts an empty label set (builder style).
    pub fn new() -> Self {
        Self::NONE
    }

    /// Sets the layer dimension.
    pub fn layer(mut self, layer: &'static str) -> Self {
        self.layer = layer;
        self
    }

    /// Sets the QoS class dimension.
    pub fn class(mut self, class: &'static str) -> Self {
        self.class = class;
        self
    }

    /// Sets the service dimension.
    pub fn service(mut self, service: &'static str) -> Self {
        self.service = service;
        self
    }

    /// Sets the fault-kind dimension.
    pub fn kind(mut self, kind: &'static str) -> Self {
        self.kind = kind;
        self
    }

    /// Whether no dimension is set.
    pub fn is_empty(&self) -> bool {
        *self == Self::NONE
    }
}

impl fmt::Display for Labels {
    /// Canonical rendering: `{layer=fog1,class=realtime}` with dimensions
    /// in fixed order and empty ones omitted; the empty set renders as
    /// nothing. Metric keys in exports are `name` + this rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return Ok(());
        }
        let mut sep = '{';
        for (dim, value) in [
            ("layer", self.layer),
            ("class", self.class),
            ("service", self.service),
            ("kind", self.kind),
        ] {
            if !value.is_empty() {
                write!(f, "{sep}{dim}={value}")?;
                sep = ',';
            }
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_renders_as_nothing() {
        assert_eq!(Labels::new().to_string(), "");
        assert!(Labels::new().is_empty());
    }

    #[test]
    fn rendering_uses_fixed_dimension_order() {
        let l = Labels::new().kind("node-down").layer("fog2");
        assert_eq!(l.to_string(), "{layer=fog2,kind=node-down}");
        let l = Labels::new().class("realtime");
        assert_eq!(l.to_string(), "{class=realtime}");
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let a = Labels::new().layer("fog1");
        let b = Labels::new().layer("fog2");
        assert!(a < b);
        assert_eq!(a, Labels::new().layer("fog1"));
    }
}
