//! Deterministic reservoir retention for planner EXPLAIN transcripts.
//!
//! The planner can explain every query, but a million-query run cannot
//! keep a million transcripts. [`ExplainStore`] keeps a fixed number of
//! slots and retains, per slot, the record whose *key hash* is smallest —
//! a reservoir-by-key sample. Unlike a classic reservoir (which needs a
//! random stream and so depends on visit order), min-hash retention is a
//! pure function of the *set* of offered keys: the combine rule
//! (keep-min per slot) is associative and commutative, so per-shard
//! stores drained into the city store at barriers in canonical shard
//! order yield byte-identical exports at any thread count.
//!
//! Records are [`Json`] values — the store is generic over what an
//! explain says; the query crate decides the schema.

use crate::json::Json;

/// One retained explain record.
#[derive(Debug, Clone)]
struct Kept {
    hash: u64,
    /// Pre-rendered record bytes; also the tie-breaker on hash collision.
    text: String,
}

/// A fixed-slot, min-hash reservoir of [`Json`] explain records. See the
/// module docs for why this sampling scheme is deterministic.
#[derive(Debug, Clone)]
pub struct ExplainStore {
    slots: Vec<Option<Kept>>,
    seen: u64,
}

impl ExplainStore {
    /// Default slot count: enough route diversity to read, small enough
    /// to commit in a bench artifact.
    pub const DEFAULT_SLOTS: usize = 24;

    /// A store with the default slot count.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// A store with `slots` reservoir slots.
    pub fn with_slots(slots: usize) -> Self {
        Self {
            slots: vec![None; slots.max(1)],
            seen: 0,
        }
    }

    /// Whether a record with this key hash would displace (or fill) its
    /// slot. Callers use this to skip building the (comparatively
    /// expensive) explain transcript for queries that would lose anyway —
    /// the common case is one modulo and one compare per query.
    ///
    /// Equal hashes answer `true`: the tie is broken on record bytes,
    /// which only exist after building.
    pub fn would_admit(&self, hash: u64) -> bool {
        match &self.slots[(hash % self.slots.len() as u64) as usize] {
            None => true,
            Some(kept) => hash <= kept.hash,
        }
    }

    /// Counts an offered record and retains it if it wins its slot
    /// (smallest hash; on equal hash, smallest record bytes — both
    /// order-insensitive). `build` runs only when [`Self::would_admit`]
    /// holds.
    pub fn offer(&mut self, hash: u64, build: impl FnOnce() -> Json) {
        self.seen += 1;
        if !self.would_admit(hash) {
            return;
        }
        let text = build().to_pretty();
        self.offer_rendered(hash, text);
    }

    fn offer_rendered(&mut self, hash: u64, text: String) {
        let slot = (hash % self.slots.len() as u64) as usize;
        let admit = match &self.slots[slot] {
            None => true,
            Some(kept) => (hash, text.as_str()) < (kept.hash, kept.text.as_str()),
        };
        if admit {
            self.slots[slot] = Some(Kept { hash, text });
        }
    }

    /// Records offered so far (admitted or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Slots currently holding a record.
    pub fn kept(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Drains `other` into `self`: seen counts add, every retained record
    /// is re-offered under the keep-min rule. Both stores must have the
    /// same slot count (they are built from the same constructor in
    /// practice); records land in the same slot they came from.
    ///
    /// # Panics
    ///
    /// Panics if the slot counts differ.
    pub fn absorb(&mut self, other: &mut ExplainStore) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "explain stores with different slot counts cannot merge"
        );
        self.seen += other.seen;
        other.seen = 0;
        for slot in &mut other.slots {
            if let Some(kept) = slot.take() {
                self.offer_rendered(kept.hash, kept.text);
            }
        }
    }

    /// The retained records as a Json export: slot-ordered, with the
    /// reservoir accounting. Byte-stable for a given retained set.
    pub fn export(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("seen", Json::Num(self.seen as f64));
        doc.set("kept", Json::Num(self.kept() as f64));
        let mut records = Vec::new();
        for kept in self.slots.iter().flatten() {
            records.push(Json::parse(&kept.text).expect("store holds rendered Json"));
        }
        doc.set("records", Json::Arr(records));
        doc
    }
}

impl Default for ExplainStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(tag: &str) -> Json {
        let mut j = Json::obj();
        j.set("route", Json::Str(tag.to_string()));
        j
    }

    #[test]
    fn keeps_the_min_hash_record_per_slot() {
        let mut s = ExplainStore::with_slots(4);
        s.offer(8, || record("first")); // slot 0
        s.offer(4, || record("smaller")); // slot 0, wins
        s.offer(12, || record("larger")); // slot 0, loses
        assert_eq!(s.seen(), 3);
        assert_eq!(s.kept(), 1);
        let out = s.export();
        assert_eq!(out.get("seen").unwrap().as_u64(), Some(3));
        let Json::Arr(records) = out.get("records").unwrap() else {
            panic!("records must be an array");
        };
        assert_eq!(records[0].get("route").unwrap().as_str(), Some("smaller"));
    }

    #[test]
    fn would_admit_gates_building() {
        let mut s = ExplainStore::with_slots(2);
        s.offer(2, || record("keep"));
        assert!(!s.would_admit(6), "bigger hash in an occupied slot loses");
        assert!(s.would_admit(2), "equal hash must build to tie-break");
        assert!(s.would_admit(1));
        s.offer(6, || panic!("offer must not build a losing record"));
        assert_eq!(s.seen(), 2);
    }

    #[test]
    fn absorb_is_order_insensitive() {
        let offers: [(u64, &str); 4] = [(9, "a"), (3, "b"), (7, "c"), (5, "d")];
        // One store sees everything; two shard stores split the offers and
        // merge in either order. All three exports must agree.
        let mut whole = ExplainStore::with_slots(2);
        for (h, t) in offers {
            whole.offer(h, || record(t));
        }
        for split_at in 0..offers.len() {
            let mut left = ExplainStore::with_slots(2);
            let mut right = ExplainStore::with_slots(2);
            for (i, (h, t)) in offers.iter().enumerate() {
                let dst = if i < split_at { &mut left } else { &mut right };
                dst.offer(*h, || record(t));
            }
            let mut merged = ExplainStore::with_slots(2);
            merged.absorb(&mut right);
            merged.absorb(&mut left);
            assert_eq!(merged.export().to_pretty(), whole.export().to_pretty());
            assert_eq!(left.seen(), 0, "absorb drains the source");
            assert_eq!(left.kept(), 0);
        }
    }

    #[test]
    fn equal_hashes_tie_break_on_bytes() {
        let mut a = ExplainStore::with_slots(1);
        a.offer(5, || record("zz"));
        a.offer(5, || record("aa"));
        let mut b = ExplainStore::with_slots(1);
        b.offer(5, || record("aa"));
        b.offer(5, || record("zz"));
        assert_eq!(a.export().to_pretty(), b.export().to_pretty());
    }
}
