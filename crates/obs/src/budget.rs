//! The perf-budget gate.
//!
//! CI runs the `queries` bench, exports a fresh `BENCH_queries.json`, and
//! diffs it against the committed `bench/baseline.json` with [`check_budget`]:
//! every [`BudgetRule`] names one numeric path in the document and bounds how
//! far the current value may drift from the baseline. A regression beyond
//! tolerance — a p99 that doubled, bytes/record that crept up, an answer
//! rate that fell — fails the job with an attributable violation instead of
//! letting the trajectory drift invisibly.
//!
//! The simulation is deterministic, so on an unchanged tree current ==
//! baseline exactly; tolerances exist to absorb *intentional* behavior
//! changes, and anything beyond them must ship with a regenerated baseline.

use std::fmt;

use crate::json::Json;

/// One gated metric: a `.`-separated path into the bench document plus the
/// allowed drift, as fractions of the baseline value.
#[derive(Debug, Clone, Copy)]
pub struct BudgetRule {
    /// Path into the JSON document (`"phases.query.p99_us"`).
    pub path: &'static str,
    /// Largest allowed increase, as a fraction of baseline (0.25 = +25 %).
    pub max_increase_frac: f64,
    /// Largest allowed decrease, if a fall is also a regression (answer
    /// rates, hit rates). `None` means any decrease is fine.
    pub max_decrease_frac: Option<f64>,
    /// Absolute slack added on top of the fractional band — keeps a
    /// near-zero baseline from gating on noise-sized changes.
    pub abs_slack: f64,
}

impl BudgetRule {
    /// A rule that only bounds increases (latencies, bytes, sheds).
    pub const fn ceiling(path: &'static str, max_increase_frac: f64, abs_slack: f64) -> Self {
        Self {
            path,
            max_increase_frac,
            max_decrease_frac: None,
            abs_slack,
        }
    }

    /// A rule that bounds drift in both directions (rates that must not
    /// fall, counts that must not collapse).
    pub const fn band(path: &'static str, frac: f64, abs_slack: f64) -> Self {
        Self {
            path,
            max_increase_frac: frac,
            max_decrease_frac: Some(frac),
            abs_slack,
        }
    }
}

/// One budget violation: the gated path, both values, and the bound broken.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The gated path.
    pub path: String,
    /// Baseline value (`None`: the path is missing from the baseline).
    pub baseline: Option<f64>,
    /// Current value (`None`: the path is missing from the current run).
    pub current: Option<f64>,
    /// Human-readable bound description.
    pub bound: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |v: Option<f64>| match v {
            Some(v) => format!("{v}"),
            None => "missing".to_string(),
        };
        write!(
            f,
            "{}: baseline {} -> current {} ({})",
            self.path,
            show(self.baseline),
            show(self.current),
            self.bound
        )
    }
}

/// Diffs `current` against `baseline` under `rules`.
///
/// Returns the violations (empty = gate passes). Both documents must carry
/// the same integral `schema_version` member; a mismatch is itself a
/// violation, because comparing across schemas silently gates nothing.
pub fn check_budget(baseline: &Json, current: &Json, rules: &[BudgetRule]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let base_schema = baseline.path("schema_version").and_then(Json::as_u64);
    let cur_schema = current.path("schema_version").and_then(Json::as_u64);
    if base_schema.is_none() || base_schema != cur_schema {
        violations.push(Violation {
            path: "schema_version".to_string(),
            baseline: base_schema.map(|v| v as f64),
            current: cur_schema.map(|v| v as f64),
            bound: "baseline and current must share a schema version".to_string(),
        });
        return violations;
    }
    for rule in rules {
        let base = baseline.path(rule.path).and_then(Json::as_f64);
        let cur = current.path(rule.path).and_then(Json::as_f64);
        let (Some(base), Some(cur)) = (base, cur) else {
            violations.push(Violation {
                path: rule.path.to_string(),
                baseline: base,
                current: cur,
                bound: "gated metric must exist in both documents".to_string(),
            });
            continue;
        };
        let ceiling = base + base.abs() * rule.max_increase_frac + rule.abs_slack;
        if cur > ceiling {
            violations.push(Violation {
                path: rule.path.to_string(),
                baseline: Some(base),
                current: Some(cur),
                bound: format!(
                    "exceeds ceiling {ceiling} (+{:.0}% of baseline + {} slack)",
                    rule.max_increase_frac * 100.0,
                    rule.abs_slack
                ),
            });
            continue;
        }
        if let Some(frac) = rule.max_decrease_frac {
            let floor = base - base.abs() * frac - rule.abs_slack;
            if cur < floor {
                violations.push(Violation {
                    path: rule.path.to_string(),
                    baseline: Some(base),
                    current: Some(cur),
                    bound: format!(
                        "below floor {floor} (-{:.0}% of baseline - {} slack)",
                        frac * 100.0,
                        rule.abs_slack
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(p99: f64, answered: f64) -> Json {
        let mut phases = Json::obj();
        let mut query = Json::obj();
        query.set("p99_us", Json::Num(p99));
        phases.set("query", query);
        let mut d = Json::obj();
        d.set("schema_version", Json::Num(1.0));
        d.set("phases", phases);
        d.set("answered", Json::Num(answered));
        d
    }

    const RULES: &[BudgetRule] = &[
        BudgetRule::ceiling("phases.query.p99_us", 0.25, 100.0),
        BudgetRule::band("answered", 0.02, 10.0),
    ];

    #[test]
    fn identical_documents_pass() {
        let base = doc(40_000.0, 9_500.0);
        assert!(check_budget(&base, &base.clone(), RULES).is_empty());
    }

    #[test]
    fn drift_inside_tolerance_passes() {
        let base = doc(40_000.0, 9_500.0);
        let cur = doc(48_000.0, 9_400.0);
        assert!(check_budget(&base, &cur, RULES).is_empty());
    }

    #[test]
    fn injected_2x_p99_regression_fails() {
        // The acceptance criterion: doubling p99 must demonstrably fail.
        let base = doc(40_000.0, 9_500.0);
        let cur = doc(80_000.0, 9_500.0);
        let violations = check_budget(&base, &cur, RULES);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "phases.query.p99_us");
        assert!(violations[0].bound.contains("ceiling"));
    }

    #[test]
    fn collapsing_answer_rate_fails_the_floor() {
        let base = doc(40_000.0, 9_500.0);
        let cur = doc(40_000.0, 7_000.0);
        let violations = check_budget(&base, &cur, RULES);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].bound.contains("floor"));
    }

    #[test]
    fn missing_gated_metric_is_a_violation() {
        let base = doc(40_000.0, 9_500.0);
        let mut cur = doc(40_000.0, 9_500.0);
        let Json::Obj(members) = &mut cur else {
            unreachable!()
        };
        members.retain(|(k, _)| k != "answered");
        let violations = check_budget(&base, &cur, RULES);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].current, None);
    }

    #[test]
    fn schema_mismatch_fails_closed() {
        let base = doc(40_000.0, 9_500.0);
        let mut cur = doc(40_000.0, 9_500.0);
        cur.set("schema_version", Json::Num(2.0));
        let violations = check_budget(&base, &cur, RULES);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].path, "schema_version");
    }

    #[test]
    fn zero_baseline_allows_slack_only() {
        let rules = [BudgetRule::ceiling("phases.query.p99_us", 0.25, 100.0)];
        let base = doc(0.0, 0.0);
        assert!(check_budget(&base, &doc(99.0, 0.0), &rules).is_empty());
        assert_eq!(check_budget(&base, &doc(101.0, 0.0), &rules).len(), 1);
    }
}
