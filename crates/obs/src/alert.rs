//! Deterministic multi-window SLO burn-rate alerting.
//!
//! The SRE-style recipe: track an SLO's *burn rate* — the error fraction
//! divided by the error budget `(1 - objective)` — over a fast and a slow
//! window at once. Fire only when *both* exceed the threshold (the fast
//! window gives detection latency, the slow one suppresses blips);
//! resolve when the fast window clears. Everything here runs on the
//! *event clock* over cumulative registry counters, with pure integer
//! arithmetic, so a fired alert is as replayable as any flush transcript:
//! same seed, same alert, same microsecond.
//!
//! Burn rates are carried as parts-per-thousand (`milli`); an SLO
//! objective is parts-per-million. A burn of 1000 milli means errors are
//! consuming the budget exactly as fast as the objective allows.

use std::collections::VecDeque;

use crate::json::Json;

/// The definition of one service-level objective and its alert policy.
#[derive(Debug, Clone, Copy)]
pub struct SloSpec {
    /// Alert name (`"availability"`).
    pub name: &'static str,
    /// SLO objective in parts-per-million (999_000 = 99.9%).
    pub objective_ppm: u64,
    /// Fast detection window, seconds.
    pub fast_window_s: u64,
    /// Slow confirmation window, seconds.
    pub slow_window_s: u64,
    /// Burn-rate threshold, parts-per-thousand (10_000 = burning budget
    /// 10x faster than the objective allows).
    pub fire_burn_milli: u64,
}

/// What one evaluation decided, when it changed the alert state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// Both windows crossed the threshold; the alert is now firing.
    Fired {
        /// Fast-window burn at fire time, milli.
        fast_burn_milli: u64,
        /// Slow-window burn at fire time, milli.
        slow_burn_milli: u64,
    },
    /// The fast window cleared; the alert resolved.
    Resolved {
        /// Fast-window burn at resolve time, milli.
        fast_burn_milli: u64,
        /// Slow-window burn at resolve time, milli.
        slow_burn_milli: u64,
    },
}

/// One recorded fire or resolve, with the window values that justified it.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Event-clock instant of the transition, seconds.
    pub at_s: u64,
    /// `true` for fired, `false` for resolved.
    pub fired: bool,
    /// Fast-window burn, milli.
    pub fast_burn_milli: u64,
    /// Slow-window burn, milli.
    pub slow_burn_milli: u64,
    /// Flight-recorder dump attached at fire time (empty for resolves).
    pub flight_record: String,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    t_s: u64,
    good: u64,
    bad: u64,
}

/// Sliding-window burn-rate alerting over one good/bad counter pair. See
/// the module docs.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    spec: SloSpec,
    samples: VecDeque<Sample>,
    firing: bool,
    events: Vec<AlertEvent>,
}

impl BurnRateMonitor {
    /// A monitor for `spec`, not yet firing, with no history.
    pub fn new(spec: SloSpec) -> Self {
        Self {
            spec,
            samples: VecDeque::new(),
            firing: false,
            events: Vec::new(),
        }
    }

    /// The monitored spec.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Whether the alert is currently firing.
    pub fn firing(&self) -> bool {
        self.firing
    }

    /// Every fire/resolve so far, in event-clock order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Burn rate over the trailing `window_s`, in milli, from the sample
    /// history: the delta between now and the newest sample at or before
    /// `now - window` (or the oldest retained sample while the history is
    /// shorter than the window). Zero when the window saw no events.
    fn burn_milli(&self, now_s: u64, window_s: u64, good: u64, bad: u64) -> u64 {
        let from_s = now_s.saturating_sub(window_s);
        let mut base = match self.samples.front() {
            Some(first) => *first,
            None => Sample {
                t_s: from_s,
                good: 0,
                bad: 0,
            },
        };
        for s in &self.samples {
            if s.t_s <= from_s {
                base = *s;
            } else {
                break;
            }
        }
        let bad_delta = bad.saturating_sub(base.bad);
        let total_delta = good.saturating_sub(base.good) + bad_delta;
        if total_delta == 0 {
            return 0;
        }
        let budget_ppm = 1_000_000 - self.spec.objective_ppm.min(999_999);
        // burn = (bad/total) / budget; milli = burn * 1000.
        let num = bad_delta as u128 * 1_000_000u128 * 1_000u128;
        let den = total_delta as u128 * budget_ppm as u128;
        (num / den) as u64
    }

    /// Feeds one observation of the cumulative good/bad counters at
    /// event-clock instant `now_s` and applies the fire/resolve policy.
    /// Returns the transition if the alert state changed. Deterministic:
    /// the outcome is a pure function of the observation sequence.
    pub fn evaluate(&mut self, now_s: u64, good: u64, bad: u64) -> Option<AlertTransition> {
        let fast = self.burn_milli(now_s, self.spec.fast_window_s, good, bad);
        let slow = self.burn_milli(now_s, self.spec.slow_window_s, good, bad);
        self.samples.push_back(Sample {
            t_s: now_s,
            good,
            bad,
        });
        // Prune history older than the slow window, keeping one sample at
        // or before the boundary as the window's baseline.
        let keep_from = now_s.saturating_sub(self.spec.slow_window_s);
        while self.samples.len() > 1 && self.samples[1].t_s <= keep_from {
            self.samples.pop_front();
        }
        let over = fast >= self.spec.fire_burn_milli && slow >= self.spec.fire_burn_milli;
        let transition = if !self.firing && over {
            self.firing = true;
            Some(AlertTransition::Fired {
                fast_burn_milli: fast,
                slow_burn_milli: slow,
            })
        } else if self.firing && fast < self.spec.fire_burn_milli {
            self.firing = false;
            Some(AlertTransition::Resolved {
                fast_burn_milli: fast,
                slow_burn_milli: slow,
            })
        } else {
            None
        };
        if let Some(t) = transition {
            let (fired, fast_burn_milli, slow_burn_milli) = match t {
                AlertTransition::Fired {
                    fast_burn_milli,
                    slow_burn_milli,
                } => (true, fast_burn_milli, slow_burn_milli),
                AlertTransition::Resolved {
                    fast_burn_milli,
                    slow_burn_milli,
                } => (false, fast_burn_milli, slow_burn_milli),
            };
            self.events.push(AlertEvent {
                at_s: now_s,
                fired,
                fast_burn_milli,
                slow_burn_milli,
                flight_record: String::new(),
            });
        }
        transition
    }

    /// Attaches a flight-recorder dump to the most recent event (called
    /// right after a fire, with the tracer's recent-span text).
    pub fn attach_flight_record(&mut self, dump: String) {
        if let Some(last) = self.events.last_mut() {
            last.flight_record = dump;
        }
    }

    /// Fired events so far.
    pub fn fired_count(&self) -> u64 {
        self.events.iter().filter(|e| e.fired).count() as u64
    }

    /// Resolved events so far.
    pub fn resolved_count(&self) -> u64 {
        self.events.iter().filter(|e| !e.fired).count() as u64
    }

    /// The alert log as a Json export: the spec, the accounting, and
    /// every transition with its window values and flight record.
    pub fn export(&self) -> Json {
        let mut doc = Json::obj();
        doc.set("slo", Json::Str(self.spec.name.to_string()));
        doc.set("objective_ppm", Json::Num(self.spec.objective_ppm as f64));
        doc.set("fast_window_s", Json::Num(self.spec.fast_window_s as f64));
        doc.set("slow_window_s", Json::Num(self.spec.slow_window_s as f64));
        doc.set(
            "fire_burn_milli",
            Json::Num(self.spec.fire_burn_milli as f64),
        );
        doc.set("fired", Json::Num(self.fired_count() as f64));
        doc.set("resolved", Json::Num(self.resolved_count() as f64));
        doc.set("firing", Json::Bool(self.firing));
        let mut events = Vec::new();
        for e in &self.events {
            let mut entry = Json::obj();
            entry.set("at_s", Json::Num(e.at_s as f64));
            entry.set(
                "kind",
                Json::Str(if e.fired { "fired" } else { "resolved" }.to_string()),
            );
            entry.set("fast_burn_milli", Json::Num(e.fast_burn_milli as f64));
            entry.set("slow_burn_milli", Json::Num(e.slow_burn_milli as f64));
            entry.set("flight_record", Json::Str(e.flight_record.clone()));
            events.push(entry);
        }
        doc.set("events", Json::Arr(events));
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: SloSpec = SloSpec {
        name: "availability",
        objective_ppm: 999_000,
        fast_window_s: 300,
        slow_window_s: 3_600,
        fire_burn_milli: 10_000,
    };

    #[test]
    fn clean_stream_never_fires() {
        let mut m = BurnRateMonitor::new(SPEC);
        for i in 0..20u64 {
            assert_eq!(m.evaluate(i * 300, i * 100, 0), None);
        }
        assert!(!m.firing());
        assert_eq!(m.events().len(), 0);
    }

    #[test]
    fn fires_when_both_windows_burn_and_resolves_when_fast_clears() {
        let mut m = BurnRateMonitor::new(SPEC);
        // Healthy hour.
        for i in 0..12u64 {
            m.evaluate(i * 300, i * 1_000, 0);
        }
        // An outage: 10% of the fast window goes bad — burn 100x budget
        // there, ~15x over the trailing hour. Both windows cross: fire.
        let t = m.evaluate(3_600, 12_800, 200);
        assert!(matches!(t, Some(AlertTransition::Fired { .. })));
        assert!(m.firing());
        // Still bad: no duplicate fire.
        assert_eq!(m.evaluate(3_900, 13_650, 250), None);
        // Fast window clean again: resolve.
        let t = m.evaluate(4_200, 14_650, 250);
        assert!(matches!(
            t,
            Some(AlertTransition::Resolved {
                fast_burn_milli: 0,
                ..
            })
        ));
        assert!(!m.firing());
        assert_eq!(m.fired_count(), 1);
        assert_eq!(m.resolved_count(), 1);
    }

    #[test]
    fn slow_window_suppresses_a_blip_after_long_clean_history() {
        // 1% bad over one fast window = burn 10x in fast, but diluted over
        // the hour-long slow window after ~an hour of clean traffic.
        let mut m = BurnRateMonitor::new(SPEC);
        for i in 0..13u64 {
            m.evaluate(i * 300, i * 10_000, 0);
        }
        let t = m.evaluate(13 * 300, 13 * 10_000 - 150, 150);
        assert_eq!(t, None, "slow window must veto a short blip");
        assert!(!m.firing());
    }

    #[test]
    fn burn_math_is_exact() {
        let mut m = BurnRateMonitor::new(SPEC);
        m.evaluate(0, 0, 0);
        // 1 bad in 1000 total = error rate exactly at the 99.9% objective
        // boundary: burn 1.0 = 1000 milli on both windows.
        let t = m.evaluate(300, 999, 1);
        assert_eq!(t, None);
        assert_eq!(m.burn_milli(300, 300, 999, 1), 1_000);
    }

    #[test]
    fn export_carries_windows_and_flight_record() {
        let mut m = BurnRateMonitor::new(SPEC);
        m.evaluate(0, 0, 0);
        m.evaluate(300, 100, 900);
        m.attach_flight_record("cloud/0 q 1..2 d=0 a=0\n".to_string());
        let doc = m.export();
        assert_eq!(doc.get("fired").unwrap().as_u64(), Some(1));
        let Json::Arr(events) = doc.get("events").unwrap() else {
            panic!("events must be an array");
        };
        assert_eq!(events[0].get("kind").unwrap().as_str(), Some("fired"));
        assert!(events[0]
            .get("flight_record")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("cloud/0"));
    }
}
