//! The centralized cloud baseline (Fig. 3): four layers — physical,
//! network, cloud, application — where every sensed byte crosses the WAN
//! to the cloud unreduced, and all processing happens there.
//!
//! The baseline shares the sensor substrate and topology with the F2C
//! runtime so the comparison isolates the architecture, not the workload.

use citysim::barcelona::{BarcelonaTopology, LatencyProfile};
use citysim::time::SimTime;
use scc_sensors::{Catalog, Category, ReadingGenerator, SensorType};
use std::collections::BTreeMap;

use crate::{Error, Result};

/// Baseline parameters.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Divide every sensor population by this factor (≥ 1).
    pub scale: u64,
    /// RNG seed.
    pub seed: u64,
    /// Simulated horizon in seconds.
    pub horizon_s: u64,
    /// Link parameters.
    pub profile: LatencyProfile,
    /// Collection-frequency multiplier (§IV.D: centralized systems throttle
    /// sensor reporting to protect the network; 1.0 = the Table I rates).
    pub frequency_factor: f64,
}

impl BaselineConfig {
    /// The Table I workload at 1/1000 scale.
    pub fn paper_scaled() -> Self {
        Self {
            scale: 1000,
            seed: 2017,
            horizon_s: 86_400,
            profile: LatencyProfile::default(),
            frequency_factor: 1.0,
        }
    }
}

/// What the baseline run measured.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Population scale.
    pub scale: u64,
    /// Readings generated.
    pub generated_readings: u64,
    /// Accounting bytes arriving at the cloud (everything, unreduced).
    pub cloud_ingress_acct_bytes: u64,
    /// Bytes metered across all network links (each hop counted).
    pub network_bytes: u64,
    /// Per-category cloud ingress.
    pub per_category: BTreeMap<Category, u64>,
}

impl BaselineReport {
    /// Scales a measured byte count back to full deployment size.
    pub fn scaled_up(&self, bytes: u64) -> u64 {
        bytes * self.scale
    }
}

/// Runs the centralized architecture: every wave's bytes travel
/// section→district→cloud with no reduction.
///
/// # Errors
///
/// Configuration and network errors.
pub fn simulate_baseline(config: BaselineConfig) -> Result<BaselineReport> {
    if config.scale == 0 {
        return Err(Error::BadConfig {
            field: "scale",
            reason: "must be >= 1",
        });
    }
    if config.frequency_factor <= 0.0 {
        return Err(Error::BadConfig {
            field: "frequency_factor",
            reason: "must be positive",
        });
    }
    let catalog = Catalog::barcelona();
    let scaled = catalog.scaled_down(config.scale);
    let mut city = BarcelonaTopology::build(&config.profile);

    let mut report = BaselineReport {
        scale: config.scale,
        ..BaselineReport::default()
    };
    for c in Category::ALL {
        report.per_category.insert(c, 0);
    }

    // Per-section per-type populations, as in the F2C runtime.
    let mut generators: Vec<BTreeMap<SensorType, ReadingGenerator>> =
        (0..73).map(|_| BTreeMap::new()).collect();
    for spec in scaled.iter() {
        let n = spec.sensors();
        let base = n / 73;
        let extra = (n % 73) as usize;
        for (section, per_section) in generators.iter_mut().enumerate() {
            let count = base + u64::from(section < extra);
            if count > 0 {
                per_section.insert(
                    spec.sensor_type(),
                    ReadingGenerator::for_population(
                        spec.sensor_type(),
                        count as u32,
                        config.seed ^ ((section as u64) << 32),
                    ),
                );
            }
        }
    }

    for spec in scaled.iter() {
        let ty = spec.sensor_type();
        let interval = spec.tx_interval_secs() / config.frequency_factor;
        let mut t = interval;
        while t <= config.horizon_s as f64 {
            let now = SimTime::from_micros((t * 1e6) as u64);
            for (section, per_section) in generators.iter_mut().enumerate() {
                let Some(gen) = per_section.get_mut(&ty) else {
                    continue;
                };
                let readings = gen.wave(t as u64);
                if readings.is_empty() {
                    continue;
                }
                let bytes = readings.len() as u64 * spec.tx_bytes();
                report.generated_readings += readings.len() as u64;
                report.cloud_ingress_acct_bytes += bytes;
                *report
                    .per_category
                    .get_mut(&ty.category())
                    .expect("prefilled") += bytes;
                let from = city.fog1_nodes()[section];
                let to = city.cloud();
                city.network_mut().send(from, to, bytes, now)?;
            }
            t += interval;
        }
    }

    report.network_bytes = city.network().meter().total_bytes();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{simulate, SimConfig};
    use crate::traffic::TrafficModel;

    fn small() -> BaselineConfig {
        let mut c = BaselineConfig::paper_scaled();
        c.scale = 5_000;
        c.horizon_s = 4 * 3600;
        c
    }

    #[test]
    fn cloud_receives_everything_unreduced() {
        let report = simulate_baseline(small()).unwrap();
        assert!(report.generated_readings > 0);
        // Ingress equals generation exactly: no aggregation anywhere.
        let per_cat_sum: u64 = report.per_category.values().sum();
        assert_eq!(per_cat_sum, report.cloud_ingress_acct_bytes);
        // Every byte crossed two hops (fog1->fog2->cloud routing).
        assert_eq!(report.network_bytes, 2 * report.cloud_ingress_acct_bytes);
    }

    #[test]
    fn baseline_matches_table1_cloud_column_at_scale() {
        let mut c = BaselineConfig::paper_scaled();
        c.scale = 2_000;
        let report = simulate_baseline(c).unwrap();
        let expected = TrafficModel::paper().table1_totals().daily_fog1;
        let measured = report.scaled_up(report.cloud_ingress_acct_bytes) as f64;
        let err = (measured - expected as f64).abs() / expected as f64;
        assert!(err < 0.12, "baseline off by {:.1}%", err * 100.0);
    }

    #[test]
    fn f2c_beats_baseline_on_wan_traffic() {
        // The paper's headline comparison, at matched scale and horizon.
        let baseline = simulate_baseline(small()).unwrap();
        let mut f2c_config = SimConfig::paper_scaled();
        f2c_config.scale = 5_000;
        f2c_config.horizon_s = 4 * 3600;
        let f2c = simulate(f2c_config).unwrap();
        assert!(
            f2c.fog2_uplink_acct_bytes < baseline.cloud_ingress_acct_bytes,
            "F2C cloud ingress {} must be below baseline {}",
            f2c.fog2_uplink_acct_bytes,
            baseline.cloud_ingress_acct_bytes
        );
        // And the reduction factor is in the paper's band (~41%).
        let factor = f2c.fog2_uplink_acct_bytes as f64 / baseline.cloud_ingress_acct_bytes as f64;
        assert!(
            (0.5..0.72).contains(&factor),
            "F2C/baseline ratio {factor:.3}, paper predicts ~0.587"
        );
    }

    #[test]
    fn frequency_increase_scales_traffic() {
        let mut c = small();
        c.horizon_s = 2 * 3600;
        let base = simulate_baseline(c.clone()).unwrap();
        c.frequency_factor = 2.0;
        let doubled = simulate_baseline(c).unwrap();
        let ratio = doubled.cloud_ingress_acct_bytes as f64 / base.cloud_ingress_acct_bytes as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut c = small();
        c.scale = 0;
        assert!(simulate_baseline(c).is_err());
        let mut c = small();
        c.frequency_factor = 0.0;
        assert!(simulate_baseline(c).is_err());
    }
}
