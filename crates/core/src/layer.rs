//! The three layers of the F2C architecture (Fig. 4).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An architecture layer, ordered from edge to cloud.
///
/// Fog layer 1 nodes cover one city section (~1 km² in Barcelona, §V.B);
/// fog layer 2 nodes cover one district; the cloud covers the whole city.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Fog layer 1: edge devices coordinating one section.
    Fog1,
    /// Fog layer 2: district-level nodes.
    Fog2,
    /// The cloud data center.
    Cloud,
}

impl Layer {
    /// All layers, edge first.
    pub const ALL: [Layer; 3] = [Layer::Fog1, Layer::Fog2, Layer::Cloud];

    /// Dense index (fog 1 = 0, fog 2 = 1, cloud = 2) for per-layer
    /// tables (histograms, in-flight slots, shed counters).
    pub fn index(self) -> usize {
        match self {
            Layer::Fog1 => 0,
            Layer::Fog2 => 1,
            Layer::Cloud => 2,
        }
    }

    /// The layer one step up, or `None` at the cloud.
    pub fn parent(self) -> Option<Layer> {
        match self {
            Layer::Fog1 => Some(Layer::Fog2),
            Layer::Fog2 => Some(Layer::Cloud),
            Layer::Cloud => None,
        }
    }

    /// Relative compute capability (cloud ≫ fog 2 > fog 1), in abstract
    /// "compute units" used by the placement engine.
    pub fn compute_capacity(self) -> u64 {
        match self {
            Layer::Fog1 => 10,
            Layer::Fog2 => 100,
            Layer::Cloud => u64::MAX,
        }
    }

    /// Whether data at this layer is typically within the paper's
    /// "real-time" reach of the generating sensors.
    pub fn is_fog(self) -> bool {
        self != Layer::Cloud
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Layer::Fog1 => "fog layer 1",
            Layer::Fog2 => "fog layer 2",
            Layer::Cloud => "cloud",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parents_climb_to_cloud() {
        assert_eq!(Layer::Fog1.parent(), Some(Layer::Fog2));
        assert_eq!(Layer::Fog2.parent(), Some(Layer::Cloud));
        assert_eq!(Layer::Cloud.parent(), None);
    }

    #[test]
    fn indices_are_dense_and_match_all_order() {
        for (i, layer) in Layer::ALL.into_iter().enumerate() {
            assert_eq!(layer.index(), i);
        }
    }

    #[test]
    fn ordering_is_edge_to_cloud() {
        assert!(Layer::Fog1 < Layer::Fog2);
        assert!(Layer::Fog2 < Layer::Cloud);
    }

    #[test]
    fn capacity_grows_upward() {
        assert!(Layer::Fog1.compute_capacity() < Layer::Fog2.compute_capacity());
        assert!(Layer::Fog2.compute_capacity() < Layer::Cloud.compute_capacity());
    }

    #[test]
    fn fog_predicate() {
        assert!(Layer::Fog1.is_fog());
        assert!(Layer::Fog2.is_fog());
        assert!(!Layer::Cloud.is_fog());
    }
}
