//! The deterministic parallel runtime's building blocks.
//!
//! The city is partitioned into **district shards** — a fixed logical
//! partition (one shard per fog-2 district, owning that district's fog-1
//! sections) that never depends on the thread count. Threads only *map*
//! shards to workers: shard `i` runs on worker `i % threads`, and each
//! worker walks its shards in ascending order. Between synchronization
//! points a shard mutates only what it owns plus an [`ObsScratch`] of
//! buffered observability (metrics deltas, trace spans, incidents,
//! network metering); at every barrier the coordinator absorbs the
//! scratches in canonical district order. Because a shard's work is a
//! pure function of the shared snapshot and its own state, and merges
//! fold in district order — never arrival order — every artifact
//! (snapshots, transcripts, the BENCH export) is byte-identical at any
//! thread count, including 1.

use citysim::NetScratch;
use f2c_obs::{CounterId, ExemplarStore, ExplainStore, Labels, MetricsRegistry, Tracer};

use crate::incident::{ChaosSite, IncidentKind, IncidentTimeline};

/// Worker-thread count for sharded phases. `1` runs every shard inline
/// on the caller, in district order — the same schedule the workers
/// reproduce, which is why thread counts cannot diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Run all shards inline on the calling thread.
    pub const SEQUENTIAL: Self = Self(1);

    /// A worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self(threads.max(1))
    }

    /// The `PARALLELISM` environment knob: an explicit thread count, or
    /// the machine's available cores when unset/unparseable.
    pub fn from_env() -> Self {
        match std::env::var("PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) => Self::new(n),
            None => Self::new(
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// The worker count (≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Runs `f(i, &mut shards[i])` for every shard, on `threads` workers.
///
/// Shard `i` is pinned to worker `i % threads` and every worker visits
/// its shards in ascending index; with `threads == 1` the loop runs
/// inline in the same order. The shard → work assignment is therefore a
/// function of the shard index alone, so any observable the closure
/// writes into its shard is identical at every thread count.
pub fn run_shards<S, F>(threads: Parallelism, shards: &mut [S], f: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    let workers = threads.get().min(shards.len().max(1));
    if workers <= 1 {
        for (i, shard) in shards.iter_mut().enumerate() {
            f(i, shard);
        }
        return;
    }
    let mut buckets: Vec<Vec<(usize, &mut S)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in shards.iter_mut().enumerate() {
        buckets[i % workers].push((i, shard));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let f = &f;
            scope.spawn(move || {
                for (i, shard) in bucket {
                    f(i, shard);
                }
            });
        }
    });
}

/// One encoded flush shipment as it crossed a hop, captured only when
/// the city's shipment tap is on (differential corpus tests re-encode
/// and re-decode these offline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipmentRecord {
    /// Which hop shipped it: `1` = fog-1 → fog-2, `2` = fog-2 → cloud.
    pub hop: u8,
    /// The child stream at the receiver (hop 1: global section index,
    /// hop 2: district index) — the key the decoder state is kept under.
    pub origin: u16,
    /// Simulated instant of the flush wave.
    pub at_s: u64,
    /// The encoded `tsenc` payload that crossed the link.
    pub payload: Vec<u8>,
    /// The same records in verbatim wire-batch form, for the
    /// DEFLATE-vs-tsenc differential bound.
    pub wire: Vec<u8>,
}

/// One shard's buffered observability: everything a phase would normally
/// publish into the city's unified registry/tracer/timeline/meter, held
/// locally until the coordinator absorbs it at a barrier.
///
/// The scratch registry registers series on demand with the same
/// `(name, labels)` keys the city uses; absorption translates by key
/// (with a cached dense-id map, so the steady-state cost is one array
/// add per series), which makes the merge insensitive to registration
/// order across shards.
#[derive(Debug)]
pub struct ObsScratch {
    pub(crate) reg: MetricsRegistry,
    pub(crate) tracer: Tracer,
    pub(crate) timeline: IncidentTimeline,
    pub(crate) net: NetScratch,
    pub(crate) explains: ExplainStore,
    pub(crate) exemplars: ExemplarStore,
    /// Captured flush shipments (empty unless the tap is on).
    pub(crate) shipments: Vec<ShipmentRecord>,
    /// Cached scratch-counter-id → city-counter-id translation.
    pub(crate) map: Vec<CounterId>,
}

impl Default for ObsScratch {
    fn default() -> Self {
        Self {
            reg: MetricsRegistry::default(),
            tracer: Tracer::default(),
            timeline: IncidentTimeline::default(),
            net: NetScratch::default(),
            explains: ExplainStore::new(),
            exemplars: ExemplarStore::new(),
            shipments: Vec::new(),
            map: Vec::new(),
        }
    }
}

impl ObsScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard-local metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.reg
    }

    /// The shard-local tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The shard-local network scratch (metering + loss-coin draws).
    pub fn net_mut(&mut self) -> &mut NetScratch {
        &mut self.net
    }

    /// The shard-local explain reservoir.
    pub fn explains_mut(&mut self) -> &mut ExplainStore {
        &mut self.explains
    }

    /// The shard-local exemplar slots.
    pub fn exemplars_mut(&mut self) -> &mut ExemplarStore {
        &mut self.exemplars
    }

    /// Records an incident, mirroring `F2cCity::record_incident`: the
    /// event lands on the shard timeline and bumps the shard's
    /// `incidents{kind=…}` counter, so absorption reproduces exactly
    /// what a direct city-side record would have published.
    pub fn record_incident(&mut self, at_s: u64, site: ChaosSite, kind: IncidentKind) {
        let id = self
            .reg
            .counter("incidents", Labels::new().kind(kind.label()));
        self.reg.inc(id);
        self.timeline.record(at_s, site, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reads_env_shape() {
        assert_eq!(Parallelism::new(0).get(), 1);
        assert_eq!(Parallelism::new(4).get(), 4);
        assert_eq!(Parallelism::SEQUENTIAL.get(), 1);
    }

    #[test]
    fn run_shards_visits_every_shard_once_at_any_thread_count() {
        for threads in [1usize, 2, 3, 8, 32] {
            let mut shards: Vec<u64> = vec![0; 10];
            run_shards(Parallelism::new(threads), &mut shards, |i, s| {
                *s += i as u64 + 1;
            });
            let want: Vec<u64> = (1..=10).collect();
            assert_eq!(shards, want, "threads={threads}");
        }
    }

    #[test]
    fn scratch_incidents_mirror_city_accounting() {
        let mut s = ObsScratch::new();
        s.record_incident(100, ChaosSite::Cloud, IncidentKind::NodeDown);
        s.record_incident(101, ChaosSite::Fog2(3), IncidentKind::NodeDown);
        assert_eq!(s.timeline.len(), 2);
        assert_eq!(
            s.reg
                .counter_named("incidents", Labels::new().kind("node-down")),
            Some(2)
        );
    }
}
