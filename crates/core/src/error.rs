use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from architecture configuration and operation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A flush policy with a zero period.
    ZeroFlushPeriod,
    /// An off-peak window that does not fit in a day.
    BadOffPeakWindow {
        /// Window start, seconds since midnight.
        start_s: u64,
        /// Window end, seconds since midnight.
        end_s: u64,
    },
    /// A placement request no layer can satisfy.
    Unplaceable {
        /// Human-readable reason.
        reason: String,
    },
    /// A simulation configuration problem.
    BadConfig {
        /// Which field.
        field: &'static str,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// An underlying network error surfaced during simulation.
    Network(citysim::Error),
    /// An underlying compression error surfaced during flushing.
    Compression(f2c_compress::Error),
    /// A flush payload decoded cleanly but disagreed with the records
    /// it shipped alongside — the receiver-side decode-equality proof
    /// failed for the child stream `origin`.
    CodecMismatch {
        /// The child stream (fog-2: child section; cloud: district).
        origin: u16,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ZeroFlushPeriod => write!(f, "flush period must be positive"),
            Error::BadOffPeakWindow { start_s, end_s } => {
                write!(
                    f,
                    "off-peak window [{start_s}, {end_s}) must lie within a day"
                )
            }
            Error::Unplaceable { reason } => write!(f, "service cannot be placed: {reason}"),
            Error::BadConfig { field, reason } => {
                write!(f, "bad configuration for {field}: {reason}")
            }
            Error::Network(e) => write!(f, "network error: {e}"),
            Error::Compression(e) => write!(f, "compression error: {e}"),
            Error::CodecMismatch { origin } => write!(
                f,
                "flush payload from child stream {origin} decodes to different records"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Network(e) => Some(e),
            Error::Compression(e) => Some(e),
            _ => None,
        }
    }
}

impl From<citysim::Error> for Error {
    fn from(e: citysim::Error) -> Self {
        Error::Network(e)
    }
}

impl From<f2c_compress::Error> for Error {
    fn from(e: f2c_compress::Error) -> Self {
        Error::Compression(e)
    }
}
