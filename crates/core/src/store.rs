//! The tiered store: one node's slice of the "reversed memory hierarchy"
//! (§IV.B) — data is born at the lowest tier and migrates *upward*, the
//! opposite of a CPU cache hierarchy. Each node stores recent data locally
//! (for real-time access), periodically ships everything received since the
//! previous flush to its parent, and evicts what has outlived its
//! retention.

use scc_dlc::preservation::ArchiveStore;
use scc_dlc::DataRecord;

use crate::policy::RetentionPolicy;

/// A node-local record store with a pending-ship queue and retention.
///
/// Shipping is by *arrival*, not by creation time: a record that reaches
/// the node late (e.g. deferred by an off-peak flush window downstream)
/// still ships on the next flush instead of being skipped.
///
/// # Examples
///
/// ```
/// use f2c_core::{TieredStore, RetentionPolicy};
/// use scc_dlc::DataRecord;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let mut store = TieredStore::new(RetentionPolicy::keep(3600));
/// for t in 0..4u64 {
///     let r = Reading::new(SensorId::new(SensorType::Traffic, 0), t * 900, Value::Counter(t));
///     store.insert(DataRecord::from_reading(r));
/// }
/// let batch = store.take_flush_batch(3600);
/// assert_eq!(batch.len(), 4);           // everything received so far ships
/// assert!(store.take_flush_batch(3600).is_empty()); // nothing new
/// assert_eq!(store.len(), 4);           // local copies stay for real-time reads
/// ```
#[derive(Debug, Clone, Default)]
pub struct TieredStore {
    archive: ArchiveStore,
    pending: Vec<DataRecord>,
    retention: Option<RetentionPolicy>,
    /// Root stores (the cloud) have no parent; they skip the pending queue.
    is_root: bool,
    /// Oldest creation time among the pending records, if any.
    pending_earliest_s: Option<u64>,
    /// Highest eviction deadline ever applied: every record received with
    /// a creation time at or after this is still held locally.
    evicted_before_s: u64,
}

impl TieredStore {
    /// A store with `retention` that queues arrivals for upward shipping.
    pub fn new(retention: RetentionPolicy) -> Self {
        Self {
            retention: Some(retention),
            ..Self::default()
        }
    }

    /// A permanent root store (cloud tier): nothing is ever shipped or
    /// evicted.
    pub fn permanent() -> Self {
        Self {
            is_root: true,
            ..Self::default()
        }
    }

    /// Inserts one record.
    pub fn insert(&mut self, record: DataRecord) {
        if !self.is_root {
            let created = record.descriptor().created_s();
            self.pending_earliest_s = Some(match self.pending_earliest_s {
                Some(e) => e.min(created),
                None => created,
            });
            self.pending.push(record.clone());
        }
        self.archive.insert(record);
    }

    /// Inserts a batch.
    pub fn insert_batch(&mut self, records: Vec<DataRecord>) {
        for r in records {
            self.insert(r);
        }
    }

    /// Number of locally stored records.
    pub fn len(&self) -> usize {
        self.archive.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.archive.is_empty()
    }

    /// Number of records awaiting the next flush.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Total wire size of the stored records.
    pub fn wire_bytes(&self) -> u64 {
        self.archive.wire_bytes()
    }

    /// Read access to the archive (queries, dissemination).
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// Iterates locally held records created in `[from_s, until_s)`,
    /// oldest first, without cloning. The query executor and the
    /// hierarchy's fetch path scan through this instead of materializing
    /// the matching slice.
    pub fn range(&self, from_s: u64, until_s: u64) -> impl DoubleEndedIterator<Item = &DataRecord> {
        self.archive.range(from_s, until_s)
    }

    /// The retention policy, or `None` for a permanent root store.
    pub fn retention(&self) -> Option<RetentionPolicy> {
        self.retention
    }

    /// The completeness watermark: the store still holds *every* record it
    /// ever received whose creation time is at or after this instant.
    /// Planners use it to decide whether a window can be answered here or
    /// has aged out upward.
    pub fn evicted_before_s(&self) -> u64 {
        self.evicted_before_s
    }

    /// Oldest creation time still awaiting the next flush, or `None` when
    /// the pending queue is empty. A parent tier is complete for windows
    /// ending at or before this frontier.
    pub fn pending_earliest_s(&self) -> Option<u64> {
        self.pending_earliest_s
    }

    /// Whether everything created before `until_s` has left the pending
    /// queue (i.e. has been flushed to the tier above — and, on the
    /// sketch plane, folded into the node's ledger). The planner's
    /// propagation proof and the warm-sketch staleness check both read
    /// this frontier.
    pub fn settled_through(&self, until_s: u64) -> bool {
        self.pending_earliest_s.is_none_or(|e| e >= until_s)
    }

    /// Takes everything received since the previous flush for upward
    /// shipping. Local copies remain until retention evicts them — that is
    /// what keeps real-time access fast while the data also climbs the
    /// hierarchy. `_now_s` documents the flush instant for callers; the
    /// batch itself is arrival-defined.
    pub fn take_flush_batch(&mut self, _now_s: u64) -> Vec<DataRecord> {
        self.pending_earliest_s = None;
        std::mem::take(&mut self.pending)
    }

    /// Evicts records past retention at `now_s`; returns the evicted count.
    pub fn evict_expired(&mut self, now_s: u64) -> usize {
        match self.retention.and_then(|r| r.eviction_deadline(now_s)) {
            Some(deadline) => {
                self.evicted_before_s = self.evicted_before_s.max(deadline);
                self.archive.evict_older_than(deadline).len()
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(t: u64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::ParkingSpot, 0),
            t,
            Value::Flag(t.is_multiple_of(2)),
        ))
    }

    #[test]
    fn flush_batches_partition_the_stream() {
        let mut s = TieredStore::new(RetentionPolicy::permanent());
        for t in 0..5 {
            s.insert(rec(t * 100));
        }
        let b1 = s.take_flush_batch(500);
        for t in 5..10 {
            s.insert(rec(t * 100));
        }
        let b2 = s.take_flush_batch(1000);
        assert_eq!(b1.len(), 5);
        assert_eq!(b2.len(), 5);
        // No record shipped twice, none lost.
        assert!(s.take_flush_batch(2000).is_empty());
    }

    #[test]
    fn retention_evicts_but_flushing_does_not() {
        let mut s = TieredStore::new(RetentionPolicy::keep(1000));
        for t in 0..10 {
            s.insert(rec(t * 500));
        }
        s.take_flush_batch(5000);
        assert_eq!(s.len(), 10, "flush keeps local copies");
        let evicted = s.evict_expired(5000);
        // Deadline 4000: evicts creation times 0..3500 (8 records).
        assert_eq!(evicted, 8);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn permanent_store_never_evicts_or_queues() {
        let mut s = TieredStore::permanent();
        for t in 0..5 {
            s.insert(rec(t));
        }
        assert_eq!(s.evict_expired(u64::MAX), 0);
        assert_eq!(s.len(), 5);
        assert_eq!(s.pending_len(), 0);
        assert!(s.take_flush_batch(100).is_empty());
    }

    #[test]
    fn late_data_still_ships() {
        // A record created long ago but arriving now ships on the next
        // flush — arrival-based queues cannot lose stragglers.
        let mut s = TieredStore::new(RetentionPolicy::permanent());
        s.insert(rec(1000));
        s.take_flush_batch(2000);
        s.insert(rec(500)); // late arrival, created before the last flush
        let batch = s.take_flush_batch(3000);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].descriptor().created_s(), 500);
    }

    #[test]
    fn pending_len_tracks_queue() {
        let mut s = TieredStore::new(RetentionPolicy::permanent());
        s.insert(rec(1));
        s.insert(rec(2));
        assert_eq!(s.pending_len(), 2);
        s.take_flush_batch(10);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn watermark_and_pending_frontier_track_completeness() {
        let mut s = TieredStore::new(RetentionPolicy::keep(1000));
        assert_eq!(s.evicted_before_s(), 0);
        assert_eq!(s.pending_earliest_s(), None);
        s.insert(rec(700));
        s.insert(rec(300));
        assert_eq!(s.pending_earliest_s(), Some(300));
        s.take_flush_batch(800);
        assert_eq!(s.pending_earliest_s(), None);
        // Eviction advances the watermark even when nothing is removed yet.
        s.evict_expired(1200);
        assert_eq!(s.evicted_before_s(), 200);
        s.evict_expired(2000);
        assert_eq!(s.evicted_before_s(), 1000);
        // The watermark never moves backwards.
        s.evict_expired(1500);
        assert_eq!(s.evicted_before_s(), 1000);
    }

    #[test]
    fn range_reads_do_not_disturb_pending() {
        let mut s = TieredStore::new(RetentionPolicy::permanent());
        for t in 0..5 {
            s.insert(rec(t * 100));
        }
        let seen: Vec<u64> = s
            .range(100, 400)
            .map(|r| r.descriptor().created_s())
            .collect();
        assert_eq!(seen, [100, 200, 300]);
        assert_eq!(s.pending_len(), 5, "reads must not consume the queue");
    }

    #[test]
    fn wire_bytes_track_inserts() {
        let mut s = TieredStore::permanent();
        assert_eq!(s.wire_bytes(), 0);
        s.insert(rec(1));
        assert!(s.wire_bytes() > 0);
    }
}
