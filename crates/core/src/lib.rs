//! # f2c-core — Fog-to-Cloud data management for smart cities
//!
//! The paper's primary contribution (ICDCS 2017): mapping the SCC-DLC data
//! life-cycle onto a hierarchical fog-to-cloud resource-management
//! architecture (Fig. 5), and quantifying the traffic savings of fog-side
//! aggregation against a centralized cloud platform (Table I, Fig. 7).
//!
//! * [`layer`] — the three architecture layers (fog 1, fog 2, cloud),
//! * [`policy`] — flush/retention policies (§IV.B: periodic upward
//!   movement, off-peak scheduling, aggregation toggles),
//! * [`store`] — the tiered store: the "reversed memory hierarchy" (§IV.B),
//! * [`node`] — an F2C node hosting its layer's DLC phases (Fig. 5),
//! * [`traffic`] — the analytic traffic model that regenerates Table I and
//!   Fig. 7 exactly from the published parameters,
//! * [`runtime`] — the event-driven simulation that cross-validates the
//!   analytic model over synthetic Sentilo data on the Barcelona topology,
//! * [`baseline`] — the centralized cloud architecture (Fig. 3),
//! * [`hierarchy`] — the assembled city ([`hierarchy::F2cCity`]) with the
//!   §IV.C cost-model-driven data fetch and the fan-out metering used by
//!   scatter-gather serving,
//! * [`placement`] / [`cost`] — service placement and the access cost
//!   model (§IV.C): local / neighbor / parent / sibling-fog-2 / cloud
//!   single sources, plus scatter-gather pricing (max over concurrent
//!   fan-out legs + per-leg merge/admission overhead + last-hop
//!   delivery),
//! * [`incident`] — the chaos plane's queryable per-node incident
//!   timeline (injected faults and their downstream effects),
//! * [`request`] — data-access latency: fog-local vs cloud round trips,
//!   including the centralized "two transfers through the same path" effect
//!   (§IV.D),
//! * [`report`] — table formatting for the experiment harnesses.
//!
//! # Quickstart
//!
//! ```
//! use f2c_core::traffic::TrafficModel;
//!
//! let model = TrafficModel::paper();
//! let totals = model.table1_totals();
//! assert_eq!(totals.sensors, 1_005_019);
//! assert_eq!(totals.daily_fog1, 8_583_503_168);      // ~8 GB/day generated
//! assert_eq!(totals.daily_cloud_f2c, 5_036_071_584); // after fog-1 dedup
//! ```

pub mod baseline;
pub mod cost;
mod error;
pub mod hierarchy;
pub mod incident;
pub mod layer;
pub mod node;
pub mod placement;
pub mod policy;
pub mod report;
pub mod request;
pub mod runtime;
pub mod service;
pub mod shard;
pub mod store;
pub mod traffic;

pub use error::{Error, Result};
pub use hierarchy::{DataSource, F2cCity, FanoutLeg, FetchOutcome, HealReport};
pub use incident::{ChaosSite, Incident, IncidentKind, IncidentTimeline};
pub use layer::Layer;
pub use node::{F2cNode, FlushBatch, IngestOutcome, SKETCH_BUCKET_S, SKETCH_RETENTION_S};
pub use policy::{FlushPolicy, RetentionPolicy};
pub use service::CityService;
pub use shard::{run_shards, ObsScratch, Parallelism, ShipmentRecord};
pub use store::TieredStore;
pub use traffic::TrafficModel;
