//! Data-access latency: the §IV.D comparison between reading just-collected
//! data at fog layer 1 and reading it from a centralized cloud.
//!
//! The centralized read pays the "two times data transfer through the same
//! path" penalty: the datum first travels edge→cloud to be classified and
//! stored, and the consumer then reads it cloud→edge.

use citysim::barcelona::BarcelonaTopology;
use citysim::time::{Duration, SimTime};

use crate::Result;

/// Outcome of one simulated access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Time from request to last byte.
    pub latency: Duration,
    /// Bytes that crossed metered network links for this access.
    pub network_bytes: u64,
}

/// Simulates read paths over the Barcelona topology.
#[derive(Debug)]
pub struct AccessSimulator {
    city: BarcelonaTopology,
    request_bytes: u64,
}

impl AccessSimulator {
    /// A simulator over `city`; requests are `request_bytes` (headers etc.).
    pub fn new(city: BarcelonaTopology) -> Self {
        Self {
            city,
            request_bytes: 200,
        }
    }

    /// The wrapped topology.
    pub fn city(&self) -> &BarcelonaTopology {
        &self.city
    }

    /// F2C real-time read: consumer and datum are both at the section's
    /// fog-1 node, so the access is one edge RTT plus local transfer.
    pub fn realtime_read_f2c(&mut self, _section: usize, bytes: u64) -> AccessOutcome {
        let profile = *self.city.profile();
        let rtt = Duration::from_micros(profile.sensor_to_fog1.as_micros() * 2);
        // Local serving link: fog-node internal bandwidth, taken as the
        // fog1-neighbor bandwidth class.
        let link = citysim::Link::new(Duration::ZERO, profile.fog1_neighbor.1);
        AccessOutcome {
            latency: rtt + link.transfer_time(bytes),
            network_bytes: 0, // never leaves the fog node
        }
    }

    /// Centralized real-time read: the just-generated datum must first be
    /// uploaded section→cloud, then the consumer downloads it cloud→section
    /// — two transfers over the same path (§IV.D).
    ///
    /// # Errors
    ///
    /// Propagates network errors (outages injected by failure plans).
    pub fn realtime_read_centralized(
        &mut self,
        section: usize,
        bytes: u64,
    ) -> Result<AccessOutcome> {
        let fog1 = self.city.fog1_nodes()[section];
        let cloud = self.city.cloud();
        let edge_rtt = {
            let p = self.city.profile();
            Duration::from_micros(p.sensor_to_fog1.as_micros() * 2)
        };
        let before = self.city.network().meter().total_bytes();
        let net = self.city.network_mut();
        // Upload the datum, then request + download.
        let up = net.send(fog1, cloud, bytes, SimTime::ZERO)?;
        let req = net.send(fog1, cloud, self.request_bytes, up.arrival)?;
        let down = net.send(cloud, fog1, bytes, req.arrival)?;
        let after = self.city.network().meter().total_bytes();
        Ok(AccessOutcome {
            latency: edge_rtt + down.arrival.since(SimTime::ZERO),
            network_bytes: after - before,
        })
    }

    /// Historical read under F2C: the consumer at `section` fetches
    /// archived data from the cloud (request up, payload down).
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn historical_read_f2c(&mut self, section: usize, bytes: u64) -> Result<AccessOutcome> {
        let fog1 = self.city.fog1_nodes()[section];
        let cloud = self.city.cloud();
        let before = self.city.network().meter().total_bytes();
        let d = self.city.network_mut().request_response(
            fog1,
            cloud,
            self.request_bytes,
            bytes,
            SimTime::ZERO,
        )?;
        let after = self.city.network().meter().total_bytes();
        Ok(AccessOutcome {
            latency: d.arrival.since(SimTime::ZERO),
            network_bytes: after - before,
        })
    }

    /// Recent read under F2C: fetched from the district's fog-2 node.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn recent_read_f2c(&mut self, section: usize, bytes: u64) -> Result<AccessOutcome> {
        let fog1 = self.city.fog1_nodes()[section];
        let fog2 = self.city.parent_of(section);
        let before = self.city.network().meter().total_bytes();
        let d = self.city.network_mut().request_response(
            fog1,
            fog2,
            self.request_bytes,
            bytes,
            SimTime::ZERO,
        )?;
        let after = self.city.network().meter().total_bytes();
        Ok(AccessOutcome {
            latency: d.arrival.since(SimTime::ZERO),
            network_bytes: after - before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citysim::barcelona::LatencyProfile;

    fn sim() -> AccessSimulator {
        AccessSimulator::new(BarcelonaTopology::build(&LatencyProfile::default()))
    }

    #[test]
    fn f2c_realtime_read_is_an_edge_rtt() {
        let mut s = sim();
        let out = s.realtime_read_f2c(0, 1_000);
        // 2 × 2 ms edge latency plus negligible transfer.
        assert!(out.latency < Duration::from_millis(5));
        assert_eq!(out.network_bytes, 0);
    }

    #[test]
    fn centralized_realtime_read_pays_double_path() {
        let mut s = sim();
        let fog = s.realtime_read_f2c(0, 1_000);
        let cloud = s.realtime_read_centralized(0, 1_000).unwrap();
        // Paper claim: much faster at the fog — here more than 10×.
        assert!(
            cloud.latency.as_micros() > 10 * fog.latency.as_micros(),
            "fog {} vs cloud {}",
            fog.latency,
            cloud.latency
        );
        // Upload + request + download all crossed both WAN hops.
        assert!(cloud.network_bytes >= 2 * 2 * 1_000);
    }

    #[test]
    fn recent_read_sits_between_local_and_cloud() {
        let mut s = sim();
        let local = s.realtime_read_f2c(5, 10_000).latency;
        let recent = s.recent_read_f2c(5, 10_000).unwrap().latency;
        let historical = s.historical_read_f2c(5, 10_000).unwrap().latency;
        assert!(local < recent);
        assert!(recent < historical);
    }

    #[test]
    fn every_section_can_read() {
        let mut s = sim();
        for section in 0..73 {
            assert!(s.realtime_read_centralized(section, 100).is_ok());
        }
    }
}
