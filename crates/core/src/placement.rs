//! Service placement (§IV.C): "critical real-time services will be
//! executed at fog layer 1 … deep computing complex applications will be
//! executed at the cloud layer. For the other applications, they will be
//! executed at the lowest fog layer that provides the required computing
//! capabilities and the lowest fog layer that contains the required data
//! set."

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;
use scc_dlc::AgeClass;

use crate::cost::{AccessCostModel, AccessOption};
use crate::layer::Layer;
use crate::{Error, Result};

/// Geographic span of the data a service needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AreaSpan {
    /// One section — available at its fog-1 node.
    Section,
    /// One district — first combined at the fog-2 node.
    District,
    /// The whole city — only the cloud holds it all.
    City,
}

impl AreaSpan {
    /// The lowest layer whose store covers this span.
    pub fn lowest_layer(self) -> Layer {
        match self {
            AreaSpan::Section => Layer::Fog1,
            AreaSpan::District => Layer::Fog2,
            AreaSpan::City => Layer::Cloud,
        }
    }
}

/// What a service requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSpec {
    /// Compute demand in the abstract units of
    /// [`Layer::compute_capacity`].
    pub compute_units: u64,
    /// Geographic span of the input data.
    pub data_span: AreaSpan,
    /// Oldest data age class the service reads.
    pub data_age: AgeClass,
    /// Response-time bound for each data access, if the service is
    /// latency-critical.
    pub latency_bound: Option<Duration>,
    /// Typical bytes fetched per access (for the latency check).
    pub access_bytes: u64,
}

impl ServiceSpec {
    /// A critical real-time service on section-local data.
    pub fn realtime_critical(latency_bound: Duration) -> Self {
        Self {
            compute_units: 1,
            data_span: AreaSpan::Section,
            data_age: AgeClass::RealTime,
            latency_bound: Some(latency_bound),
            access_bytes: 1_000,
        }
    }

    /// A deep-analytics batch job over city-wide history.
    pub fn deep_analytics() -> Self {
        Self {
            compute_units: 10_000,
            data_span: AreaSpan::City,
            data_age: AgeClass::Historical,
            latency_bound: None,
            access_bytes: 1_000_000_000,
        }
    }
}

/// A placement decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The chosen layer.
    pub layer: Layer,
    /// Estimated per-access data latency at that layer.
    pub access_latency: Duration,
}

/// The placement engine: lowest feasible layer wins.
#[derive(Debug, Clone, Copy)]
pub struct PlacementEngine {
    cost: AccessCostModel,
}

impl PlacementEngine {
    /// An engine over the deployment's link profile.
    pub fn new(profile: LatencyProfile) -> Self {
        Self {
            cost: AccessCostModel::new(profile),
        }
    }

    /// Where data of `age` lives in the hierarchy (§IV.B residency):
    /// real-time at fog 1, recent at fog 2, historical at the cloud.
    pub fn data_home(age: AgeClass) -> Layer {
        match age {
            AgeClass::RealTime => Layer::Fog1,
            AgeClass::Recent => Layer::Fog2,
            AgeClass::Historical => Layer::Cloud,
        }
    }

    /// Access latency for a service running at `layer` touching data that
    /// lives at [`Self::data_home`]`(age)`.
    pub fn access_latency(&self, layer: Layer, age: AgeClass, bytes: u64) -> Duration {
        let home = Self::data_home(age);
        // Same layer: local store. Otherwise the access crosses the
        // hierarchy between the two layers.
        let option = match (layer, home) {
            (a, b) if a == b => AccessOption::Local,
            (Layer::Fog1, Layer::Fog2) | (Layer::Fog2, Layer::Fog1) => AccessOption::Parent,
            _ => AccessOption::Cloud,
        };
        self.cost.cost(option, bytes)
    }

    /// Picks the lowest layer satisfying compute, data span/age residency,
    /// and the latency bound.
    ///
    /// # Errors
    ///
    /// [`Error::Unplaceable`] when no layer satisfies the spec (e.g. a
    /// microsecond latency bound on city-wide historical data).
    pub fn place(&self, spec: &ServiceSpec) -> Result<Placement> {
        let min_by_span = spec.data_span.lowest_layer();
        for layer in Layer::ALL {
            if layer < min_by_span {
                continue;
            }
            if layer.compute_capacity() < spec.compute_units {
                continue;
            }
            let access_latency = self.access_latency(layer, spec.data_age, spec.access_bytes);
            if let Some(bound) = spec.latency_bound {
                if access_latency > bound {
                    continue;
                }
            }
            return Ok(Placement {
                layer,
                access_latency,
            });
        }
        Err(Error::Unplaceable {
            reason: format!(
                "no layer satisfies compute={} span={:?} age={:?} bound={:?}",
                spec.compute_units, spec.data_span, spec.data_age, spec.latency_bound
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PlacementEngine {
        PlacementEngine::new(LatencyProfile::default())
    }

    #[test]
    fn realtime_critical_lands_on_fog1() {
        let p = engine()
            .place(&ServiceSpec::realtime_critical(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(p.layer, Layer::Fog1);
        assert!(p.access_latency <= Duration::from_millis(10));
    }

    #[test]
    fn deep_analytics_lands_on_cloud() {
        let p = engine().place(&ServiceSpec::deep_analytics()).unwrap();
        assert_eq!(p.layer, Layer::Cloud);
    }

    #[test]
    fn district_span_lands_on_fog2() {
        let spec = ServiceSpec {
            compute_units: 50,
            data_span: AreaSpan::District,
            data_age: AgeClass::Recent,
            latency_bound: None,
            access_bytes: 10_000,
        };
        let p = engine().place(&spec).unwrap();
        assert_eq!(p.layer, Layer::Fog2);
    }

    #[test]
    fn compute_demand_pushes_upward() {
        // Section-local data but a demand beyond fog-1 capacity.
        let spec = ServiceSpec {
            compute_units: 50,
            data_span: AreaSpan::Section,
            data_age: AgeClass::RealTime,
            latency_bound: None,
            access_bytes: 1_000,
        };
        let p = engine().place(&spec).unwrap();
        assert_eq!(p.layer, Layer::Fog2, "fog-1 capacity is 10 units");
    }

    #[test]
    fn impossible_bounds_are_unplaceable() {
        let spec = ServiceSpec {
            compute_units: 10_000, // cloud only
            data_span: AreaSpan::City,
            data_age: AgeClass::Historical,
            latency_bound: Some(Duration::from_micros(1)),
            access_bytes: 1_000,
        };
        assert!(matches!(
            engine().place(&spec),
            Err(Error::Unplaceable { .. })
        ));
    }

    #[test]
    fn realtime_bound_excludes_cloud_for_big_compute() {
        // A service needing cloud-scale compute on real-time data with a
        // tight bound: the cloud access to fog-1-resident data is too slow.
        let spec = ServiceSpec {
            compute_units: 10_000,
            data_span: AreaSpan::Section,
            data_age: AgeClass::RealTime,
            latency_bound: Some(Duration::from_millis(5)),
            access_bytes: 1_000,
        };
        assert!(engine().place(&spec).is_err());
        // Relaxing the bound makes the cloud feasible.
        let relaxed = ServiceSpec {
            latency_bound: Some(Duration::from_millis(500)),
            ..spec
        };
        assert_eq!(engine().place(&relaxed).unwrap().layer, Layer::Cloud);
    }

    #[test]
    fn access_latency_orders_by_distance() {
        let e = engine();
        let local = e.access_latency(Layer::Fog1, AgeClass::RealTime, 1_000);
        let parent = e.access_latency(Layer::Fog2, AgeClass::RealTime, 1_000);
        let far = e.access_latency(Layer::Cloud, AgeClass::RealTime, 1_000);
        assert!(local < parent && parent < far);
    }

    #[test]
    fn data_home_matches_section_iv_b() {
        assert_eq!(PlacementEngine::data_home(AgeClass::RealTime), Layer::Fog1);
        assert_eq!(PlacementEngine::data_home(AgeClass::Recent), Layer::Fog2);
        assert_eq!(
            PlacementEngine::data_home(AgeClass::Historical),
            Layer::Cloud
        );
    }
}
