//! Service execution over the F2C hierarchy — the consumer side of §IV.C:
//! "the system can use each computing option according to the requirements
//! of the particular service executed". A [`CityService`] is placed once
//! by the [`crate::placement::PlacementEngine`] and then executes requests
//! against an [`F2cCity`], fetching its input data via the §IV.C cost
//! model and accounting end-to-end latency per request.

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;
use citysim::Histogram;
use scc_sensors::SensorType;

use crate::hierarchy::{DataSource, F2cCity};
use crate::layer::Layer;
use crate::placement::{Placement, PlacementEngine, ServiceSpec};
use crate::Result;

/// Outcome of one service request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Records the service consumed.
    pub records_read: usize,
    /// Where the data came from.
    pub source: DataSource,
    /// End-to-end latency estimate (data fetch + compute).
    pub latency: Duration,
    /// Whether the latency bound (if any) was met.
    pub deadline_met: bool,
}

/// A placed, running city service.
#[derive(Debug)]
pub struct CityService {
    name: String,
    spec: ServiceSpec,
    placement: Placement,
    /// Fixed compute time per request, scaled down by layer capability.
    compute: Duration,
    latencies: Histogram,
    deadline_misses: u64,
    requests: u64,
}

impl CityService {
    /// Places and instantiates a service.
    ///
    /// `compute_reference` is the request compute time *at fog layer 1*;
    /// higher layers execute proportionally faster (capability model of
    /// [`Layer::compute_capacity`], saturating at 100× for the cloud).
    ///
    /// # Errors
    ///
    /// [`crate::Error::Unplaceable`] when no layer satisfies the spec.
    pub fn place(
        name: &str,
        spec: ServiceSpec,
        profile: &LatencyProfile,
        compute_reference: Duration,
    ) -> Result<Self> {
        let placement = PlacementEngine::new(*profile).place(&spec)?;
        let speedup = match placement.layer {
            Layer::Fog1 => 1,
            Layer::Fog2 => 10,
            Layer::Cloud => 100,
        };
        let compute = Duration::from_micros(compute_reference.as_micros() / speedup);
        Ok(Self {
            name: name.to_owned(),
            spec,
            placement,
            compute,
            latencies: Histogram::new(),
            deadline_misses: 0,
            requests: 0,
        })
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the service runs.
    pub fn layer(&self) -> Layer {
        self.placement.layer
    }

    /// The placement decision.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Executes one request: fetch `(ty, [from_s, until_s))` for a consumer
    /// at `section`, then compute.
    ///
    /// # Errors
    ///
    /// Propagates fetch errors (missing data, network failures).
    pub fn execute(
        &mut self,
        city: &mut F2cCity,
        section: usize,
        ty: SensorType,
        from_s: u64,
        until_s: u64,
        now_s: u64,
    ) -> Result<RequestOutcome> {
        let fetch = city.fetch(section, ty, from_s, until_s, now_s)?;
        let latency = fetch.est_latency + self.compute;
        let deadline_met = self.spec.latency_bound.is_none_or(|bound| latency <= bound);
        self.latencies.record(latency);
        self.requests += 1;
        if !deadline_met {
            self.deadline_misses += 1;
        }
        Ok(RequestOutcome {
            records_read: fetch.records.len(),
            source: fetch.source,
            latency,
            deadline_met,
        })
    }

    /// Latency distribution over all executed requests.
    pub fn latencies(&self) -> &Histogram {
        &self.latencies
    }

    /// Requests executed.
    pub fn request_count(&self) -> u64 {
        self.requests
    }

    /// Fraction of requests that missed the latency bound.
    pub fn miss_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.requests as f64
        }
    }
}

/// Convenience: places the paper's two flagship services and runs a
/// request from each, returning `(fog_latency, cloud_latency)` — the §IV.D
/// contrast in one call. Used by examples and tests.
///
/// # Errors
///
/// Placement or fetch errors.
pub fn flagship_contrast(
    city: &mut F2cCity,
    section: usize,
    ty: SensorType,
    now_s: u64,
) -> Result<(Duration, Duration)> {
    let profile = LatencyProfile::default();
    let mut realtime = CityService::place(
        "critical-realtime",
        ServiceSpec::realtime_critical(Duration::from_millis(10)),
        &profile,
        Duration::from_millis(1),
    )?;
    let mut analytics = CityService::place(
        "deep-analytics",
        ServiceSpec::deep_analytics(),
        &profile,
        Duration::from_millis(100),
    )?;
    // Look back two collection periods so the most recent wave is covered.
    let rt = realtime.execute(
        city,
        section,
        ty,
        now_s.saturating_sub(1800),
        now_s + 1,
        now_s,
    )?;
    let an = analytics.execute(city, section, ty, 0, now_s + 1, now_s)?;
    Ok((rt.latency, an.latency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::AreaSpan;
    use scc_dlc::AgeClass;
    use scc_sensors::ReadingGenerator;

    fn city_with_data(section: usize, ty: SensorType) -> F2cCity {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(ty, 10, 3);
        for w in 0..4u64 {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
        city
    }

    #[test]
    fn realtime_service_meets_its_deadline_from_fog1() {
        let mut city = city_with_data(2, SensorType::Traffic);
        let mut svc = CityService::place(
            "traffic-control",
            ServiceSpec::realtime_critical(Duration::from_millis(10)),
            &LatencyProfile::default(),
            Duration::from_millis(1),
        )
        .unwrap();
        assert_eq!(svc.layer(), Layer::Fog1);
        let out = svc
            .execute(&mut city, 2, SensorType::Traffic, 0, 10_000, 4_000)
            .unwrap();
        assert!(out.deadline_met, "latency {}", out.latency);
        assert_eq!(out.source, DataSource::Local);
        assert_eq!(svc.miss_rate(), 0.0);
    }

    #[test]
    fn cloud_service_computes_faster_but_fetches_slower() {
        let mut city = city_with_data(2, SensorType::Weather);
        let profile = LatencyProfile::default();
        let heavy_compute = Duration::from_millis(500);
        let mut cloud_svc = CityService::place(
            "ml",
            ServiceSpec {
                compute_units: 10_000,
                data_span: AreaSpan::City,
                data_age: AgeClass::Historical,
                latency_bound: None,
                access_bytes: 1_000,
            },
            &profile,
            heavy_compute,
        )
        .unwrap();
        assert_eq!(cloud_svc.layer(), Layer::Cloud);
        // The cloud's 100x speedup turns 500 ms of fog-1 compute into 5 ms.
        assert_eq!(cloud_svc.compute, Duration::from_millis(5));
        let out = cloud_svc
            .execute(&mut city, 2, SensorType::Weather, 0, 10_000, 4_000)
            .unwrap();
        // Fetch dominates: data is still fog-1-local, the cloud reaches down.
        assert!(out.latency > Duration::from_millis(5));
    }

    #[test]
    fn deadline_misses_are_counted() {
        let mut city = city_with_data(0, SensorType::ParkingSpot);
        // Impossible 1 µs bound but placeable (bound checked per request
        // against fetch+compute, placement only checks access latency...
        // so pick a bound between access latency and access+compute).
        let spec = ServiceSpec {
            latency_bound: Some(Duration::from_micros(4_300)),
            ..ServiceSpec::realtime_critical(Duration::from_micros(4_300))
        };
        let mut svc = CityService::place(
            "tight",
            spec,
            &LatencyProfile::default(),
            Duration::from_millis(50), // compute blows the bound
        )
        .unwrap();
        let out = svc
            .execute(&mut city, 0, SensorType::ParkingSpot, 0, 10_000, 4_000)
            .unwrap();
        assert!(!out.deadline_met);
        assert_eq!(svc.miss_rate(), 1.0);
        assert_eq!(svc.request_count(), 1);
    }

    #[test]
    fn flagship_contrast_orders_fog_below_cloud() {
        let mut city = city_with_data(5, SensorType::AirQuality);
        let (rt, an) = flagship_contrast(&mut city, 5, SensorType::AirQuality, 4_000).unwrap();
        assert!(rt < an, "realtime {rt} should beat analytics {an}");
    }

    #[test]
    fn latency_histogram_accumulates() {
        let mut city = city_with_data(1, SensorType::BicycleFlow);
        let mut svc = CityService::place(
            "dash",
            ServiceSpec::realtime_critical(Duration::from_millis(50)),
            &LatencyProfile::default(),
            Duration::from_millis(2),
        )
        .unwrap();
        for _ in 0..10 {
            svc.execute(&mut city, 1, SensorType::BicycleFlow, 0, 10_000, 4_000)
                .unwrap();
        }
        assert_eq!(svc.latencies().count(), 10);
        assert!(svc.latencies().max() >= svc.latencies().min());
    }
}
