//! An F2C node: one box of Fig. 5, hosting the DLC phases appropriate to
//! its layer. Fog-1 nodes run the acquisition block over their section's
//! sensors and keep a short-retention tier; fog-2 nodes combine their
//! children's flushes in a medium tier; the cloud runs preservation
//! (classification + permanent archive + dissemination).

use scc_dlc::acquisition::AcquisitionBlock;
use scc_dlc::phase::{Phase, PhaseContext};
use scc_dlc::preservation::ClassificationPhase;
use scc_dlc::DataRecord;
use scc_sensors::{wire, Catalog, Reading};

use crate::layer::Layer;
use crate::policy::{FlushPolicy, RetentionPolicy};
use crate::store::TieredStore;
use crate::{Error, Result};

/// What happened to one ingested wave at a fog-1 node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Readings offered by the sensors.
    pub offered: u64,
    /// Records stored after acquisition (dedup + quality).
    pub stored: u64,
    /// Table-I accounting bytes of the offered readings.
    pub raw_bytes: u64,
    /// Table-I accounting bytes of the stored records.
    pub kept_bytes: u64,
}

/// One upward shipment.
#[derive(Debug, Clone)]
pub struct FlushBatch {
    /// The shipped records.
    pub records: Vec<DataRecord>,
    /// Table-I accounting bytes (Σ per-type transaction sizes).
    pub acct_bytes: u64,
    /// Actual wire-encoded size of the batch.
    pub wire_bytes: u64,
    /// Compressed size of the wire batch, when the policy compresses.
    pub compressed_bytes: Option<u64>,
}

impl FlushBatch {
    /// Bytes that actually cross the uplink: compressed size when
    /// compression is on, accounting bytes otherwise (the paper's Table I
    /// accounts transaction sizes, Fig. 7 adds compression).
    pub fn uplink_bytes(&self) -> u64 {
        self.compressed_bytes.unwrap_or(self.acct_bytes)
    }

    /// An empty batch.
    pub fn empty() -> Self {
        Self {
            records: Vec::new(),
            acct_bytes: 0,
            wire_bytes: 0,
            compressed_bytes: None,
        }
    }
}

/// One node of the F2C hierarchy.
#[derive(Debug)]
pub struct F2cNode {
    label: String,
    layer: Layer,
    district: u16,
    section: Option<u16>,
    acquisition: Option<AcquisitionBlock>,
    classification: Option<ClassificationPhase>,
    store: TieredStore,
    flush_policy: FlushPolicy,
}

impl F2cNode {
    /// A fog-1 node for `section` of `district`, with the given policies.
    ///
    /// # Errors
    ///
    /// Propagates policy validation errors.
    pub fn fog1(
        district: u16,
        section: u16,
        flush_policy: FlushPolicy,
        retention: RetentionPolicy,
    ) -> Result<Self> {
        let flush_policy = flush_policy.validated()?;
        let acquisition = if flush_policy.aggregate {
            AcquisitionBlock::new("Barcelona", district, section)
        } else {
            AcquisitionBlock::without_filtering("Barcelona", district, section)
        };
        Ok(Self {
            label: format!("fog1/d{district}/s{section}"),
            layer: Layer::Fog1,
            district,
            section: Some(section),
            acquisition: Some(acquisition),
            classification: None,
            store: TieredStore::new(retention),
            flush_policy,
        })
    }

    /// A fog-2 node for `district`.
    ///
    /// # Errors
    ///
    /// Propagates policy validation errors.
    pub fn fog2(
        district: u16,
        flush_policy: FlushPolicy,
        retention: RetentionPolicy,
    ) -> Result<Self> {
        Ok(Self {
            label: format!("fog2/d{district}"),
            layer: Layer::Fog2,
            district,
            section: None,
            acquisition: None,
            classification: None,
            store: TieredStore::new(retention),
            flush_policy: flush_policy.validated()?,
        })
    }

    /// The cloud node: permanent storage, classification on receive.
    pub fn cloud() -> Self {
        Self {
            label: "cloud".to_owned(),
            layer: Layer::Cloud,
            district: 0,
            section: None,
            acquisition: None,
            classification: Some(ClassificationPhase::new()),
            store: TieredStore::permanent(),
            flush_policy: FlushPolicy::plain(86_400),
        }
    }

    /// The node's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The node's layer.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// District index.
    pub fn district(&self) -> u16 {
        self.district
    }

    /// Section index (fog-1 only).
    pub fn section(&self) -> Option<u16> {
        self.section
    }

    /// The flush policy.
    pub fn flush_policy(&self) -> &FlushPolicy {
        &self.flush_policy
    }

    /// The local store.
    pub fn store(&self) -> &TieredStore {
        &self.store
    }

    /// Ingests one wave of raw sensor readings (fog-1 only): runs the
    /// acquisition block and stores the surviving records locally.
    ///
    /// `catalog` supplies the Table-I per-transaction sizes used for
    /// traffic accounting.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] when called on a non-fog-1 node.
    pub fn ingest_wave(
        &mut self,
        readings: Vec<Reading>,
        now_s: u64,
        catalog: &Catalog,
    ) -> Result<IngestOutcome> {
        let acquisition = self.acquisition.as_mut().ok_or(Error::BadConfig {
            field: "layer",
            reason: "only fog-1 nodes ingest sensor waves",
        })?;
        let offered = readings.len() as u64;
        let raw_bytes: u64 = readings
            .iter()
            .map(|r| acct_bytes_for(r.sensor_type(), catalog))
            .sum();
        let records = acquisition.ingest(readings, &PhaseContext::at(now_s));
        let stored = records.len() as u64;
        let kept_bytes: u64 = records
            .iter()
            .map(|rec| acct_bytes_for(rec.sensor_type(), catalog))
            .sum();
        self.store.insert_batch(records);
        Ok(IngestOutcome {
            offered,
            stored,
            raw_bytes,
            kept_bytes,
        })
    }

    /// Receives a batch shipped from a child node. At the cloud the batch
    /// additionally passes classification (versioning/lineage) before the
    /// permanent archive, per §IV.B.
    pub fn receive(&mut self, records: Vec<DataRecord>, now_s: u64) {
        let records = match &mut self.classification {
            Some(phase) => phase.run(records, &PhaseContext::at(now_s)),
            None => records,
        };
        self.store.insert_batch(records);
    }

    /// Takes the records due for upward shipping at `now_s` and packages
    /// them as a [`FlushBatch`] (compressing if the policy says so), then
    /// applies retention eviction.
    ///
    /// # Errors
    ///
    /// Propagates compression failures.
    pub fn flush(&mut self, now_s: u64, catalog: &Catalog) -> Result<FlushBatch> {
        let records = self.store.take_flush_batch(now_s);
        self.store.evict_expired(now_s);
        if records.is_empty() {
            return Ok(FlushBatch::empty());
        }
        let acct_bytes: u64 = records
            .iter()
            .map(|rec| acct_bytes_for(rec.sensor_type(), catalog))
            .sum();
        let readings: Vec<Reading> = records.iter().map(|r| r.reading().clone()).collect();
        let encoded = wire::encode_batch(&readings);
        let wire_bytes = encoded.len() as u64;
        let compressed_bytes = if self.flush_policy.compress {
            Some(f2c_compress::compress(&encoded)?.len() as u64)
        } else {
            None
        };
        Ok(FlushBatch {
            records,
            acct_bytes,
            wire_bytes,
            compressed_bytes,
        })
    }
}

/// Table-I accounting size of one reading of `ty`.
fn acct_bytes_for(ty: scc_sensors::SensorType, catalog: &Catalog) -> u64 {
    catalog.spec(ty).map_or(0, |s| s.tx_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{ReadingGenerator, SensorType};

    fn fog1() -> F2cNode {
        F2cNode::fog1(
            0,
            0,
            FlushPolicy::paper_fog1(),
            RetentionPolicy::keep(86_400),
        )
        .unwrap()
    }

    #[test]
    fn fog1_ingest_dedups_at_category_rate() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::ContainerPaper, 100, 7);
        let mut total = IngestOutcome::default();
        for w in 0..50u64 {
            let out = node
                .ingest_wave(gen.wave(w * 2400), w * 2400 + 1, &catalog)
                .unwrap();
            total.offered += out.offered;
            total.stored += out.stored;
            total.raw_bytes += out.raw_bytes;
            total.kept_bytes += out.kept_bytes;
        }
        let keep_rate = total.kept_bytes as f64 / total.raw_bytes as f64;
        // Garbage redundancy is 70% -> ~30% kept.
        assert!((keep_rate - 0.30).abs() < 0.05, "keep rate {keep_rate:.3}");
        assert_eq!(total.raw_bytes, 50 * 100 * 50); // 50 waves × 100 sensors × 50 B
    }

    #[test]
    fn non_aggregating_node_keeps_everything() {
        let catalog = Catalog::barcelona();
        let mut node =
            F2cNode::fog1(0, 0, FlushPolicy::plain(900), RetentionPolicy::keep(86_400)).unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::ContainerPaper, 50, 7);
        for w in 0..10u64 {
            let out = node
                .ingest_wave(gen.wave(w * 2400), w * 2400 + 1, &catalog)
                .unwrap();
            assert_eq!(out.offered, out.stored);
        }
    }

    #[test]
    fn fog2_rejects_sensor_ingest() {
        let catalog = Catalog::barcelona();
        let mut node = F2cNode::fog2(
            0,
            FlushPolicy::plain(3600),
            RetentionPolicy::keep(7 * 86_400),
        )
        .unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Weather, 5, 1);
        assert!(matches!(
            node.ingest_wave(gen.wave(0), 0, &catalog),
            Err(Error::BadConfig { .. })
        ));
    }

    #[test]
    fn flush_ships_and_compresses() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 200, 5);
        for w in 0..4u64 {
            node.ingest_wave(gen.wave(w * 900), w * 900 + 1, &catalog)
                .unwrap();
        }
        let batch = node.flush(3600, &catalog).unwrap();
        assert!(!batch.records.is_empty());
        assert_eq!(
            batch.acct_bytes,
            batch.records.len() as u64 * 22,
            "temperature rows are 22 B in Table I"
        );
        let compressed = batch.compressed_bytes.expect("policy compresses");
        assert!(compressed < batch.wire_bytes);
        // Second flush at the same instant ships nothing.
        let again = node.flush(3600, &catalog).unwrap();
        assert!(again.records.is_empty());
        assert_eq!(again.uplink_bytes(), 0);
    }

    #[test]
    fn cloud_receives_and_classifies_permanently() {
        let catalog = Catalog::barcelona();
        let mut f1 = fog1();
        let mut cloud = F2cNode::cloud();
        let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 50, 2);
        for w in 0..5u64 {
            f1.ingest_wave(gen.wave(w * 864), w * 864 + 1, &catalog)
                .unwrap();
        }
        let batch = f1.flush(86_400, &catalog).unwrap();
        let n = batch.records.len();
        cloud.receive(batch.records, 86_400);
        assert_eq!(cloud.store().len(), n);
        assert_eq!(cloud.layer(), Layer::Cloud);
        // Cloud never evicts.
        let mut cloud2 = F2cNode::cloud();
        cloud2.receive(Vec::new(), 0);
        assert!(cloud2.store().is_empty());
    }

    #[test]
    fn labels_and_accessors() {
        let node = fog1();
        assert_eq!(node.label(), "fog1/d0/s0");
        assert_eq!(node.layer(), Layer::Fog1);
        assert_eq!(node.section(), Some(0));
        assert!(node.flush_policy().aggregate);
    }
}
