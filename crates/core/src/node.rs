//! An F2C node: one box of Fig. 5, hosting the DLC phases appropriate to
//! its layer. Fog-1 nodes run the acquisition block over their section's
//! sensors and keep a short-retention tier; fog-2 nodes combine their
//! children's flushes in a medium tier; the cloud runs preservation
//! (classification + permanent archive + dissemination).
//!
//! Every node also rides the **sketch plane**: a fog-1 flush folds its
//! batch into per-`(section, type, bucket)` [`AggPartial`]s and ships the
//! CRC-protected encodings upward *alongside* the raw records; fog-2 and
//! the cloud fold the incoming shipments into their own
//! [`SketchLedger`]s (and fog-2 relays them on its next flush) instead
//! of ever re-scanning raw records for aggregate state. The ledgers
//! outlive raw retention by design — that is what lets the query planner
//! answer aggregate windows fog 1 has already evicted.

use std::collections::{BTreeMap, BTreeSet};

use f2c_aggregate::sketch::{AggPartial, SketchKey, SketchLedger};
use f2c_compress::tsenc;
use scc_dlc::acquisition::AcquisitionBlock;
use scc_dlc::phase::{Phase, PhaseContext};
use scc_dlc::preservation::ClassificationPhase;
use scc_dlc::DataRecord;
use scc_sensors::{wire, Catalog, Reading};

use crate::layer::Layer;
use crate::policy::{FlushPolicy, RetentionPolicy};
use crate::store::TieredStore;
use crate::{Error, Result};

/// What happened to one ingested wave at a fog-1 node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Readings offered by the sensors.
    pub offered: u64,
    /// Records stored after acquisition (dedup + quality).
    pub stored: u64,
    /// Table-I accounting bytes of the offered readings.
    pub raw_bytes: u64,
    /// Table-I accounting bytes of the stored records.
    pub kept_bytes: u64,
}

/// Aggregation bucket width of every node's sketch ledger (matches the
/// query engine's default bucket so flush-shipped partials line up with
/// serving-time bucket keys).
pub const SKETCH_BUCKET_S: u64 = 900;

/// How long fog-tier ledgers keep bucket partials after the records they
/// summarize were created. Far past raw retention (1 day at fog 1, 7 at
/// fog 2): partials are constant-size, so warm sketches stay answerable
/// for a month while the raw archives stay small.
pub const SKETCH_RETENTION_S: u64 = 30 * 86_400;

/// One upward shipment.
#[derive(Debug, Clone)]
pub struct FlushBatch {
    /// The shipped records.
    pub records: Vec<DataRecord>,
    /// Table-I accounting bytes (Σ per-type transaction sizes).
    pub acct_bytes: u64,
    /// Actual wire-encoded size of the batch.
    pub wire_bytes: u64,
    /// Compressed size of the shipped payload, when the policy
    /// compresses (always `payload.len()` when `payload` is `Some`).
    pub compressed_bytes: Option<u64>,
    /// The encoded shipment itself (`f2c_compress::tsenc` stream),
    /// present when the policy compresses. The receiver decodes it with
    /// its per-child stream decoder and verifies it against `records` —
    /// a live end-to-end proof of decode equality on every flush.
    pub payload: Option<Vec<u8>>,
    /// Pre-folded bucket partials shipped alongside the records (wire
    /// encoded, CRC-protected), sorted by key for determinism.
    pub sketches: Vec<(SketchKey, Vec<u8>)>,
    /// Per-section seal frontiers this shipment advances at the parent:
    /// everything of that section created before the frontier has been
    /// shipped (and folded) by now. Carried even when no records are due
    /// so idle sections still seal.
    pub seals: Vec<(u16, u64)>,
    /// Coverage holes relayed upward: buckets whose partial was refused
    /// as corrupt somewhere below, so no tier above may ever prove them
    /// complete from its ledger.
    pub holes: Vec<SketchKey>,
    /// Total wire bytes of the encoded partials (the sketch channel's
    /// cost, reported next to `acct_bytes` by the benches).
    pub sketch_bytes: u64,
}

impl FlushBatch {
    /// Bytes that actually cross the uplink: compressed size when
    /// compression is on, accounting bytes otherwise (the paper's Table I
    /// accounts transaction sizes, Fig. 7 adds compression).
    pub fn uplink_bytes(&self) -> u64 {
        self.compressed_bytes.unwrap_or(self.acct_bytes)
    }

    /// An empty batch.
    pub fn empty() -> Self {
        Self {
            records: Vec::new(),
            acct_bytes: 0,
            wire_bytes: 0,
            compressed_bytes: None,
            payload: None,
            sketches: Vec::new(),
            seals: Vec::new(),
            holes: Vec::new(),
            sketch_bytes: 0,
        }
    }
}

/// One node of the F2C hierarchy.
#[derive(Debug)]
pub struct F2cNode {
    label: String,
    layer: Layer,
    district: u16,
    section: Option<u16>,
    acquisition: Option<AcquisitionBlock>,
    classification: Option<ClassificationPhase>,
    store: TieredStore,
    flush_policy: FlushPolicy,
    /// The node's slice of the sketch plane: bucketed aggregate partials
    /// that survive raw-record eviction.
    sketches: SketchLedger,
    /// Fog-2 only: decoded partials received since the last flush,
    /// merged per key, awaiting upward relay (BTreeMap so the relayed
    /// order is deterministic).
    sketch_relay: BTreeMap<SketchKey, AggPartial>,
    /// Fog-2 only: seal frontiers received since the last flush,
    /// awaiting upward relay.
    seal_relay: BTreeMap<u16, u64>,
    /// Fog-2 only: coverage holes (local refusals + relayed ones)
    /// awaiting upward relay (BTreeSet for deterministic order).
    hole_relay: BTreeSet<SketchKey>,
    /// Node-local flush sequence number, stamped on ledger folds for
    /// observability (which flush last touched a bucket). Staleness
    /// *proofs* never read it — they use the seal and pending frontiers.
    flush_seq: u64,
    /// The upward flush stream's codec state (used when the policy
    /// compresses): a sensor dictionary that persists across
    /// consecutive flushes, so steady-state batches code each sensor as
    /// a small dense integer. Advances only when a batch actually
    /// ships — a deferred wave (chaos gate) never touches it, which is
    /// what keeps it in lock-step with the parent's mirror decoder.
    codec: tsenc::StreamEncoder,
    /// Per-child mirror decoders (fog-2: keyed by child section; cloud:
    /// keyed by district), advancing exactly once per received payload.
    decoders: BTreeMap<u16, tsenc::StreamDecoder>,
}

impl F2cNode {
    /// A fog-1 node for `section` of `district`, with the given policies.
    ///
    /// # Errors
    ///
    /// Propagates policy validation errors.
    pub fn fog1(
        district: u16,
        section: u16,
        flush_policy: FlushPolicy,
        retention: RetentionPolicy,
    ) -> Result<Self> {
        let flush_policy = flush_policy.validated()?;
        let acquisition = if flush_policy.aggregate {
            AcquisitionBlock::new("Barcelona", district, section)
        } else {
            AcquisitionBlock::without_filtering("Barcelona", district, section)
        };
        Ok(Self {
            label: format!("fog1/d{district}/s{section}"),
            layer: Layer::Fog1,
            district,
            section: Some(section),
            acquisition: Some(acquisition),
            classification: None,
            store: TieredStore::new(retention),
            flush_policy,
            sketches: SketchLedger::new(SKETCH_BUCKET_S).expect("constant bucket width"),
            sketch_relay: BTreeMap::new(),
            seal_relay: BTreeMap::new(),
            hole_relay: BTreeSet::new(),
            flush_seq: 0,
            codec: tsenc::StreamEncoder::new(),
            decoders: BTreeMap::new(),
        })
    }

    /// A fog-2 node for `district`.
    ///
    /// # Errors
    ///
    /// Propagates policy validation errors.
    pub fn fog2(
        district: u16,
        flush_policy: FlushPolicy,
        retention: RetentionPolicy,
    ) -> Result<Self> {
        Ok(Self {
            label: format!("fog2/d{district}"),
            layer: Layer::Fog2,
            district,
            section: None,
            acquisition: None,
            classification: None,
            store: TieredStore::new(retention),
            flush_policy: flush_policy.validated()?,
            sketches: SketchLedger::new(SKETCH_BUCKET_S).expect("constant bucket width"),
            sketch_relay: BTreeMap::new(),
            seal_relay: BTreeMap::new(),
            hole_relay: BTreeSet::new(),
            flush_seq: 0,
            codec: tsenc::StreamEncoder::new(),
            decoders: BTreeMap::new(),
        })
    }

    /// The cloud node: permanent storage, classification on receive.
    pub fn cloud() -> Self {
        Self {
            label: "cloud".to_owned(),
            layer: Layer::Cloud,
            district: 0,
            section: None,
            acquisition: None,
            classification: Some(ClassificationPhase::new()),
            store: TieredStore::permanent(),
            flush_policy: FlushPolicy::plain(86_400),
            sketches: SketchLedger::new(SKETCH_BUCKET_S).expect("constant bucket width"),
            sketch_relay: BTreeMap::new(),
            seal_relay: BTreeMap::new(),
            hole_relay: BTreeSet::new(),
            flush_seq: 0,
            codec: tsenc::StreamEncoder::new(),
            decoders: BTreeMap::new(),
        }
    }

    /// The node's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The node's layer.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// District index.
    pub fn district(&self) -> u16 {
        self.district
    }

    /// Section index (fog-1 only).
    pub fn section(&self) -> Option<u16> {
        self.section
    }

    /// The flush policy.
    pub fn flush_policy(&self) -> &FlushPolicy {
        &self.flush_policy
    }

    /// The local store.
    pub fn store(&self) -> &TieredStore {
        &self.store
    }

    /// The node's sketch ledger: bucketed aggregate partials (and their
    /// seal/eviction watermarks) that survive raw-record eviction.
    pub fn sketches(&self) -> &SketchLedger {
        &self.sketches
    }

    /// Folds a shipment of encoded bucket partials (CRC-verified — a
    /// corrupt one is counted in the ledger, punches a permanent
    /// coverage hole at its bucket, and is never merged) and applies
    /// the accompanying seal frontiers and relayed holes. The seal may
    /// still advance past a refused bucket: the hole is what keeps
    /// [`SketchLedger::covers`] honest there, so a lost shipment
    /// degrades availability for exactly the damaged bucket — never
    /// correctness. Fog-2 nodes queue partials, seals *and* holes for
    /// upward relay on their next flush. Returns how many partials were
    /// refused as corrupt.
    pub fn receive_sketches(
        &mut self,
        sketches: &[(SketchKey, Vec<u8>)],
        seals: &[(u16, u64)],
        holes: &[SketchKey],
    ) -> u64 {
        let mut refused = 0;
        for (key, bytes) in sketches {
            // One decode: the ledger verifies the CRC, folds, and hands
            // the partial back for the relay; a corrupt shipment is
            // counted (and holed) there and merged nowhere.
            match self.sketches.fold_encoded(*key, bytes, self.flush_seq) {
                Ok(partial) => {
                    if self.layer == Layer::Fog2 {
                        self.sketch_relay
                            .entry(*key)
                            .or_insert_with(AggPartial::empty)
                            .merge(&partial);
                    }
                }
                Err(_) => {
                    refused += 1;
                    if self.layer == Layer::Fog2 {
                        self.hole_relay.insert(*key);
                    }
                }
            }
        }
        for &hole in holes {
            self.sketches.mark_hole(hole);
            if self.layer == Layer::Fog2 {
                self.hole_relay.insert(hole);
            }
        }
        for &(section, through_s) in seals {
            self.sketches.seal(section, through_s);
            if self.layer == Layer::Fog2 {
                let slot = self.seal_relay.entry(section).or_insert(0);
                *slot = (*slot).max(through_s);
            }
        }
        refused
    }

    /// Installs an authoritative re-shipped partial over a coverage hole
    /// (the anti-entropy heal path): CRC-verified, *replaces* whatever
    /// fragment the ledger holds for the bucket — the shipper's own
    /// ledger entry is the full fold for its section, so merging would
    /// double-count — and clears the hole. Returns whether a hole was
    /// actually cleared; a heal below the compaction watermark or a
    /// corrupt re-shipment leaves the ledger untouched and returns
    /// `false`.
    pub fn heal_sketch(&mut self, key: SketchKey, bytes: &[u8]) -> bool {
        self.sketches
            .heal_encoded(key, bytes, self.flush_seq)
            .unwrap_or(false)
    }

    /// Drops any partial queued for upward relay at `key` (fog-2 only;
    /// a no-op elsewhere). Called after an anti-entropy heal shipped
    /// this node's full current fold upward: the queued increment is
    /// subsumed by it, and relaying it afterwards would double-count at
    /// the parent.
    pub fn drop_queued_relay(&mut self, key: &SketchKey) {
        self.sketch_relay.remove(key);
    }

    /// Applies the sketch-horizon compaction that [`F2cNode::flush`]
    /// runs for fog nodes. The cloud never flushes (it has no parent),
    /// so without this its ledger — and its coverage-hole set — would
    /// grow without bound; [`crate::F2cCity::flush_all`] calls it on
    /// the cloud every wave. Returns how many bucket entries were
    /// dropped; holes below the watermark retire with them.
    pub fn compact_sketches(&mut self, now_s: u64) -> usize {
        self.sketches
            .evict_older_than(now_s.saturating_sub(SKETCH_RETENTION_S))
    }

    /// Ingests one wave of raw sensor readings (fog-1 only): runs the
    /// acquisition block and stores the surviving records locally.
    ///
    /// `catalog` supplies the Table-I per-transaction sizes used for
    /// traffic accounting.
    ///
    /// # Errors
    ///
    /// [`Error::BadConfig`] when called on a non-fog-1 node.
    pub fn ingest_wave(
        &mut self,
        readings: Vec<Reading>,
        now_s: u64,
        catalog: &Catalog,
    ) -> Result<IngestOutcome> {
        let acquisition = self.acquisition.as_mut().ok_or(Error::BadConfig {
            field: "layer",
            reason: "only fog-1 nodes ingest sensor waves",
        })?;
        let offered = readings.len() as u64;
        let raw_bytes: u64 = readings
            .iter()
            .map(|r| acct_bytes_for(r.sensor_type(), catalog))
            .sum();
        let records = acquisition.ingest(readings, &PhaseContext::at(now_s));
        let stored = records.len() as u64;
        let kept_bytes: u64 = records
            .iter()
            .map(|rec| acct_bytes_for(rec.sensor_type(), catalog))
            .sum();
        self.store.insert_batch(records);
        Ok(IngestOutcome {
            offered,
            stored,
            raw_bytes,
            kept_bytes,
        })
    }

    /// Receives a batch shipped from a child node. At the cloud the batch
    /// additionally passes classification (versioning/lineage) before the
    /// permanent archive, per §IV.B.
    pub fn receive(&mut self, records: Vec<DataRecord>, now_s: u64) {
        let records = match &mut self.classification {
            Some(phase) => phase.run(records, &PhaseContext::at(now_s)),
            None => records,
        };
        self.store.insert_batch(records);
    }

    /// Receives one flush shipment from the child stream `origin`
    /// (fog-2: the child's section; cloud: the shipping district).
    ///
    /// When the shipment carries an encoded payload, the stream's
    /// mirror decoder decodes it and verifies the result against the
    /// plainly-shipped records, reading-for-reading — every flush is a
    /// live decode-equality proof, and the decoder's dictionary
    /// advances in lock-step with the child's encoder. Only then do the
    /// records enter the store (via [`F2cNode::receive`]).
    ///
    /// # Errors
    ///
    /// Decode failures ([`Error::Compression`]) or a decoded batch that
    /// disagrees with the shipped records ([`Error::CodecMismatch`]).
    pub fn receive_flush(
        &mut self,
        origin: u16,
        payload: Option<&[u8]>,
        records: Vec<DataRecord>,
        now_s: u64,
    ) -> Result<()> {
        if let Some(bytes) = payload {
            let decoder = self.decoders.entry(origin).or_default();
            let decoded = decoder.decode_batch(bytes)?;
            let matches = decoded.len() == records.len()
                && decoded
                    .iter()
                    .zip(&records)
                    .all(|(reading, record)| reading == record.reading());
            if !matches {
                return Err(Error::CodecMismatch { origin });
            }
        }
        self.receive(records, now_s);
        Ok(())
    }

    /// Takes the records due for upward shipping at `now_s` and packages
    /// them as a [`FlushBatch`] (compressing if the policy says so), then
    /// applies retention eviction — to the raw archive *and*, on the
    /// much longer sketch horizon, to the ledger.
    ///
    /// The batch also carries the sketch plane's shipment: a fog-1 node
    /// folds the batch into per-`(section, type, bucket)` partials
    /// (merged into its own ledger, then wire-encoded for the parent)
    /// and seals its section through `now_s`; a fog-2 node relays the
    /// partials and seals received from its children since the previous
    /// flush. An empty batch still ships its seals, so idle sections
    /// keep their parents' frontiers moving.
    ///
    /// # Errors
    ///
    /// Propagates compression failures.
    pub fn flush(&mut self, now_s: u64, catalog: &Catalog) -> Result<FlushBatch> {
        let records = self.store.take_flush_batch(now_s);
        self.store.evict_expired(now_s);
        self.flush_seq += 1;
        let (folded, seals, holes) = match self.layer {
            Layer::Fog1 => {
                let own = self.section.unwrap_or(0);
                let mut folded: BTreeMap<SketchKey, AggPartial> = BTreeMap::new();
                for rec in &records {
                    let created = rec.descriptor().created_s();
                    let key = SketchKey {
                        section: rec.descriptor().section().unwrap_or(own),
                        ty: rec.sensor_type(),
                        bucket_start_s: self.sketches.bucket_start(created),
                    };
                    folded.entry(key).or_default().absorb(
                        rec.reading().value().magnitude(),
                        rec.reading().sensor().seed_material(),
                    );
                }
                for (key, partial) in &folded {
                    self.sketches.fold(*key, partial, self.flush_seq);
                }
                self.sketches.seal(own, now_s);
                // Fog 1 folds locally: its own shipments cannot have
                // been refused, so it never originates holes.
                (folded, vec![(own, now_s)], Vec::new())
            }
            Layer::Fog2 => (
                std::mem::take(&mut self.sketch_relay),
                std::mem::take(&mut self.seal_relay).into_iter().collect(),
                std::mem::take(&mut self.hole_relay).into_iter().collect(),
            ),
            // The cloud has no parent; nothing to ship.
            Layer::Cloud => (BTreeMap::new(), Vec::new(), Vec::new()),
        };
        if self.layer != Layer::Cloud {
            self.sketches
                .evict_older_than(now_s.saturating_sub(SKETCH_RETENTION_S));
        }
        let sketches: Vec<(SketchKey, Vec<u8>)> = folded
            .into_iter()
            .map(|(key, partial)| (key, partial.encode()))
            .collect();
        let sketch_bytes = sketches.iter().map(|(_, b)| b.len() as u64).sum();
        if records.is_empty() {
            return Ok(FlushBatch {
                sketches,
                seals,
                holes,
                sketch_bytes,
                ..FlushBatch::empty()
            });
        }
        let acct_bytes: u64 = records
            .iter()
            .map(|rec| acct_bytes_for(rec.sensor_type(), catalog))
            .sum();
        let readings: Vec<Reading> = records.iter().map(|r| r.reading().clone()).collect();
        let encoded = wire::encode_batch(&readings);
        let wire_bytes = encoded.len() as u64;
        // The shipped payload rides the columnar time-series codec, not
        // byte-oriented DEFLATE of the wire text: the stream encoder's
        // sensor dictionary persists across this node's flushes, so the
        // parent's mirror decoder must see every payload exactly once,
        // in order — guaranteed because a deferred wave never reaches
        // this point (the chaos gate runs before `flush()`).
        let payload = if self.flush_policy.compress {
            Some(self.codec.encode_batch(&readings)?)
        } else {
            None
        };
        let compressed_bytes = payload.as_ref().map(|p| p.len() as u64);
        Ok(FlushBatch {
            records,
            acct_bytes,
            wire_bytes,
            compressed_bytes,
            payload,
            sketches,
            seals,
            holes,
            sketch_bytes,
        })
    }
}

/// Table-I accounting size of one reading of `ty`.
fn acct_bytes_for(ty: scc_sensors::SensorType, catalog: &Catalog) -> u64 {
    catalog.spec(ty).map_or(0, |s| s.tx_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{ReadingGenerator, SensorType};

    fn fog1() -> F2cNode {
        F2cNode::fog1(
            0,
            0,
            FlushPolicy::paper_fog1(),
            RetentionPolicy::keep(86_400),
        )
        .unwrap()
    }

    #[test]
    fn fog1_ingest_dedups_at_category_rate() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::ContainerPaper, 100, 7);
        let mut total = IngestOutcome::default();
        for w in 0..50u64 {
            let out = node
                .ingest_wave(gen.wave(w * 2400), w * 2400 + 1, &catalog)
                .unwrap();
            total.offered += out.offered;
            total.stored += out.stored;
            total.raw_bytes += out.raw_bytes;
            total.kept_bytes += out.kept_bytes;
        }
        let keep_rate = total.kept_bytes as f64 / total.raw_bytes as f64;
        // Garbage redundancy is 70% -> ~30% kept.
        assert!((keep_rate - 0.30).abs() < 0.05, "keep rate {keep_rate:.3}");
        assert_eq!(total.raw_bytes, 50 * 100 * 50); // 50 waves × 100 sensors × 50 B
    }

    #[test]
    fn non_aggregating_node_keeps_everything() {
        let catalog = Catalog::barcelona();
        let mut node =
            F2cNode::fog1(0, 0, FlushPolicy::plain(900), RetentionPolicy::keep(86_400)).unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::ContainerPaper, 50, 7);
        for w in 0..10u64 {
            let out = node
                .ingest_wave(gen.wave(w * 2400), w * 2400 + 1, &catalog)
                .unwrap();
            assert_eq!(out.offered, out.stored);
        }
    }

    #[test]
    fn fog2_rejects_sensor_ingest() {
        let catalog = Catalog::barcelona();
        let mut node = F2cNode::fog2(
            0,
            FlushPolicy::plain(3600),
            RetentionPolicy::keep(7 * 86_400),
        )
        .unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Weather, 5, 1);
        assert!(matches!(
            node.ingest_wave(gen.wave(0), 0, &catalog),
            Err(Error::BadConfig { .. })
        ));
    }

    #[test]
    fn flush_ships_and_compresses() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 200, 5);
        for w in 0..4u64 {
            node.ingest_wave(gen.wave(w * 900), w * 900 + 1, &catalog)
                .unwrap();
        }
        let batch = node.flush(3600, &catalog).unwrap();
        assert!(!batch.records.is_empty());
        assert_eq!(
            batch.acct_bytes,
            batch.records.len() as u64 * 22,
            "temperature rows are 22 B in Table I"
        );
        let compressed = batch.compressed_bytes.expect("policy compresses");
        assert!(compressed < batch.wire_bytes);
        // Second flush at the same instant ships nothing.
        let again = node.flush(3600, &catalog).unwrap();
        assert!(again.records.is_empty());
        assert_eq!(again.uplink_bytes(), 0);
    }

    #[test]
    fn cloud_receives_and_classifies_permanently() {
        let catalog = Catalog::barcelona();
        let mut f1 = fog1();
        let mut cloud = F2cNode::cloud();
        let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 50, 2);
        for w in 0..5u64 {
            f1.ingest_wave(gen.wave(w * 864), w * 864 + 1, &catalog)
                .unwrap();
        }
        let batch = f1.flush(86_400, &catalog).unwrap();
        let n = batch.records.len();
        cloud.receive(batch.records, 86_400);
        assert_eq!(cloud.store().len(), n);
        assert_eq!(cloud.layer(), Layer::Cloud);
        // Cloud never evicts.
        let mut cloud2 = F2cNode::cloud();
        cloud2.receive(Vec::new(), 0);
        assert!(cloud2.store().is_empty());
    }

    #[test]
    fn flush_ships_prefolded_partials_and_seals() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 40, 9);
        for w in 0..3u64 {
            node.ingest_wave(gen.wave(w * 900), w * 900 + 1, &catalog)
                .unwrap();
        }
        let batch = node.flush(2_700, &catalog).unwrap();
        assert!(!batch.sketches.is_empty(), "partials ride the batch");
        assert!(batch.sketch_bytes > 0);
        assert_eq!(batch.seals, vec![(0, 2_700)], "own section seals");
        // The shipped partials and the node's own ledger agree: the sum
        // of shipped counts is the record count of the batch.
        let shipped: u64 = batch
            .sketches
            .iter()
            .map(|(_, bytes)| AggPartial::decode(bytes).unwrap().count())
            .sum();
        assert_eq!(shipped, batch.records.len() as u64);
        assert!(node.sketches().covers(0, 0, 2_700));
        // An idle follow-up flush still advances the seal frontier.
        let idle = node.flush(3_600, &catalog).unwrap();
        assert!(idle.records.is_empty() && idle.sketches.is_empty());
        assert_eq!(idle.seals, vec![(0, 3_600)]);
        assert_eq!(node.sketches().sealed_through(0), 3_600);
    }

    #[test]
    fn fog2_folds_received_partials_and_relays_them_upward() {
        let catalog = Catalog::barcelona();
        let mut f1 = fog1();
        let mut f2 = F2cNode::fog2(
            0,
            FlushPolicy::plain(3600),
            RetentionPolicy::keep(7 * 86_400),
        )
        .unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 30, 5);
        for w in 0..2u64 {
            f1.ingest_wave(gen.wave(w * 900), w * 900 + 1, &catalog)
                .unwrap();
        }
        let batch = f1.flush(1_800, &catalog).unwrap();
        let shipped = batch.sketches.len();
        assert_eq!(f2.receive_sketches(&batch.sketches, &batch.seals, &[]), 0);
        f2.receive(batch.records.clone(), 1_800);
        assert_eq!(f2.sketches().sealed_through(0), 1_800);
        // Fog-2's ledger now answers without scanning: its folded count
        // equals the raw records it received.
        let mut acc = AggPartial::empty();
        let mut folded = 0;
        for key in f2.sketches().keys() {
            let (p, _) = f2.sketches().entry(key).unwrap();
            folded += p.count();
            acc.merge(p);
        }
        assert_eq!(folded, batch.records.len() as u64);
        // The next fog-2 flush relays the same partials (and seals) to
        // the cloud.
        let relay = f2.flush(3_600, &catalog).unwrap();
        assert_eq!(relay.sketches.len(), shipped);
        assert_eq!(relay.seals, vec![(0, 1_800)]);
        let mut cloud = F2cNode::cloud();
        assert_eq!(
            cloud.receive_sketches(&relay.sketches, &relay.seals, &[]),
            0
        );
        assert_eq!(cloud.sketches().sealed_through(0), 1_800);
    }

    #[test]
    fn corrupt_shipments_are_refused_and_counted() {
        let catalog = Catalog::barcelona();
        let mut f1 = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 10, 3);
        f1.ingest_wave(gen.wave(0), 1, &catalog).unwrap();
        let mut batch = f1.flush(900, &catalog).unwrap();
        let mid = batch.sketches[0].1.len() / 2;
        batch.sketches[0].1[mid] ^= 0xFF;
        let mut f2 = F2cNode::fog2(
            0,
            FlushPolicy::plain(3600),
            RetentionPolicy::keep(7 * 86_400),
        )
        .unwrap();
        let refused = f2.receive_sketches(&batch.sketches, &batch.seals, &[]);
        assert_eq!(refused, 1, "exactly the corrupted shipment is refused");
        assert_eq!(f2.sketches().len(), batch.sketches.len() - 1);
        assert_eq!(f2.sketches().crc_failures(), 1);
        // The seal still advanced, but the refused bucket is a coverage
        // hole: the ledger must never "prove" the damaged window, and
        // the hole relays to the cloud so no tier above proves it
        // either.
        let damaged = batch.sketches[0].0;
        assert_eq!(f2.sketches().sealed_through(0), 900);
        assert!(!f2.sketches().covers(
            damaged.section,
            damaged.bucket_start_s,
            damaged.bucket_start_s + 900
        ));
        let relay = f2.flush(3_600, &catalog).unwrap();
        assert_eq!(relay.holes, vec![damaged]);
        let mut cloud = F2cNode::cloud();
        cloud.receive_sketches(&relay.sketches, &relay.seals, &relay.holes);
        assert!(!cloud.sketches().covers(
            damaged.section,
            damaged.bucket_start_s,
            damaged.bucket_start_s + 900
        ));
    }

    #[test]
    fn sketch_ledger_outlives_raw_retention() {
        let catalog = Catalog::barcelona();
        let mut node = fog1();
        let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 30, 11);
        node.ingest_wave(gen.wave(0), 1, &catalog).unwrap();
        node.flush(900, &catalog).unwrap();
        // Two days on: raw retention (1 day) has evicted the records,
        // the ledger still covers the window.
        node.flush(2 * 86_400, &catalog).unwrap();
        assert!(node.store().evicted_before_s() > 900, "raw is gone");
        assert!(node.sketches().covers(0, 0, 900), "the sketch survives");
        // Far past the sketch horizon the ledger compacts too.
        node.flush(40 * 86_400, &catalog).unwrap();
        assert!(!node.sketches().covers(0, 0, 900));
    }

    #[test]
    fn labels_and_accessors() {
        let node = fog1();
        assert_eq!(node.label(), "fog1/d0/s0");
        assert_eq!(node.layer(), Layer::Fog1);
        assert_eq!(node.section(), Some(0));
        assert!(node.flush_policy().aggregate);
    }
}
