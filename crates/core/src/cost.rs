//! The data-access cost model of §IV.C: "when the required data is not
//! present in the current fog node at layer 1, but can be accessed from
//! either a node at a higher layer or a neighbor fog node at the same
//! layer 1 … solved using some sort of cost model to estimate the effects
//! of both cases and proceed according to the lowest cost."

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;

/// Where a missing datum could be fetched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOption {
    /// The requesting fog-1 node itself.
    Local,
    /// A neighbor fog-1 node `hops` ring-hops away in the same district.
    Neighbor {
        /// Ring distance (≥ 1).
        hops: u32,
    },
    /// The fog-2 parent.
    Parent,
    /// The cloud.
    Cloud,
}

/// Cost model: request/response latency plus serialization of the payload
/// on the bottleneck link, per candidate source.
#[derive(Debug, Clone, Copy)]
pub struct AccessCostModel {
    profile: LatencyProfile,
}

impl AccessCostModel {
    /// A model over the topology's link profile.
    pub fn new(profile: LatencyProfile) -> Self {
        Self { profile }
    }

    /// Estimated completion time for fetching `bytes` via `option`.
    pub fn cost(&self, option: AccessOption, bytes: u64) -> Duration {
        let (one_way, bandwidth) = match option {
            AccessOption::Local => (self.profile.sensor_to_fog1, 1_000_000_000),
            AccessOption::Neighbor { hops } => {
                let (lat, bw) = self.profile.fog1_neighbor;
                (
                    Duration::from_micros(lat.as_micros() * u64::from(hops.max(1))),
                    bw,
                )
            }
            AccessOption::Parent => self.profile.fog1_to_fog2,
            AccessOption::Cloud => {
                let (l1, bw1) = self.profile.fog1_to_fog2;
                let (l2, bw2) = self.profile.fog2_to_cloud;
                (l1 + l2, bw1.min(bw2))
            }
        };
        // Request there + response back + payload serialization.
        let rtt = Duration::from_micros(one_way.as_micros() * 2);
        let link = citysim::Link::new(Duration::ZERO, bandwidth.max(1));
        rtt + link.transfer_time(bytes)
    }

    /// The cheapest of the given options for `bytes`.
    ///
    /// Returns `None` when `options` is empty.
    pub fn cheapest(&self, options: &[AccessOption], bytes: u64) -> Option<AccessOption> {
        options
            .iter()
            .copied()
            .min_by_key(|&o| self.cost(o, bytes).as_micros())
    }

    /// Crossover analysis: the neighbor hop count above which going to the
    /// parent is cheaper, for a payload of `bytes`.
    pub fn neighbor_parent_crossover(&self, bytes: u64) -> u32 {
        let parent = self.cost(AccessOption::Parent, bytes);
        for hops in 1..=64 {
            if self.cost(AccessOption::Neighbor { hops }, bytes) > parent {
                return hops;
            }
        }
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccessCostModel {
        AccessCostModel::new(LatencyProfile::default())
    }

    #[test]
    fn local_beats_everything() {
        let m = model();
        for bytes in [0u64, 1_000, 1_000_000] {
            let local = m.cost(AccessOption::Local, bytes);
            for other in [
                AccessOption::Neighbor { hops: 1 },
                AccessOption::Parent,
                AccessOption::Cloud,
            ] {
                assert!(local < m.cost(other, bytes), "{other:?} at {bytes}B");
            }
        }
    }

    #[test]
    fn cloud_is_the_most_expensive_source() {
        let m = model();
        let cloud = m.cost(AccessOption::Cloud, 10_000);
        assert!(cloud > m.cost(AccessOption::Parent, 10_000));
        assert!(cloud > m.cost(AccessOption::Neighbor { hops: 1 }, 10_000));
    }

    #[test]
    fn near_neighbor_beats_parent_far_neighbor_does_not() {
        // Default profile: neighbor hop 3 ms, parent 5 ms one-way.
        let m = model();
        let near = m.cost(AccessOption::Neighbor { hops: 1 }, 1_000);
        let far = m.cost(AccessOption::Neighbor { hops: 4 }, 1_000);
        let parent = m.cost(AccessOption::Parent, 1_000);
        assert!(near < parent);
        assert!(far > parent);
    }

    #[test]
    fn crossover_is_at_two_hops_by_default() {
        // 1 hop: 3 ms < 5 ms. 2 hops: 6 ms > 5 ms.
        assert_eq!(model().neighbor_parent_crossover(1_000), 2);
    }

    #[test]
    fn cheapest_picks_minimum() {
        let m = model();
        let options = [
            AccessOption::Cloud,
            AccessOption::Neighbor { hops: 2 },
            AccessOption::Parent,
        ];
        assert_eq!(m.cheapest(&options, 1_000), Some(AccessOption::Parent));
        assert_eq!(m.cheapest(&[], 1_000), None);
    }

    #[test]
    fn payload_size_shifts_nothing_on_equal_bandwidth() {
        // All fog links share bandwidth in the default profile, so size
        // penalizes every option equally and ordering is stable.
        let m = model();
        let small = m.cheapest(
            &[AccessOption::Neighbor { hops: 1 }, AccessOption::Parent],
            100,
        );
        let large = m.cheapest(
            &[AccessOption::Neighbor { hops: 1 }, AccessOption::Parent],
            100_000_000,
        );
        assert_eq!(small, large);
    }

    #[test]
    fn zero_hop_neighbor_is_clamped_to_one() {
        let m = model();
        assert_eq!(
            m.cost(AccessOption::Neighbor { hops: 0 }, 0),
            m.cost(AccessOption::Neighbor { hops: 1 }, 0)
        );
    }
}
