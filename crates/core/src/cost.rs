//! The data-access cost model of §IV.C: "when the required data is not
//! present in the current fog node at layer 1, but can be accessed from
//! either a node at a higher layer or a neighbor fog node at the same
//! layer 1 … solved using some sort of cost model to estimate the effects
//! of both cases and proceed according to the lowest cost."

use citysim::barcelona::LatencyProfile;
use citysim::time::Duration;

/// Where a missing datum could be fetched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOption {
    /// The requesting fog-1 node itself.
    Local,
    /// The requesting fog-1 node's *sketch ledger*: a merge of
    /// pre-folded bucket partials, no archive scan and no network.
    /// Priced like a local read — the transport is identical; the
    /// savings (no per-record scan) show up in the engine's scan-cost
    /// term instead.
    LocalSketch,
    /// A neighbor fog-1 node `hops` ring-hops away in the same district.
    Neighbor {
        /// Ring distance (≥ 1).
        hops: u32,
    },
    /// The fog-2 parent.
    Parent,
    /// A sibling district's fog-2 node, reached through the requester's
    /// own fog-2 parent and then `hops` metro-ring hops laterally —
    /// never via the cloud.
    SiblingFog2 {
        /// Fog-2 ring distance (≥ 1).
        hops: u32,
    },
    /// The cloud.
    Cloud,
}

/// Transport path of one scatter-gather fan-out leg, priced from the
/// *gather* fog-2 node's perspective (the requester's district fog-2,
/// where the partial results are merged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FanoutPath {
    /// The shard lives at the gather node itself: no transport.
    GatherLocal,
    /// A sibling fog-2 node `hops` metro-ring hops from the gather node.
    SiblingFog2 {
        /// Fog-2 ring distance (≥ 1).
        hops: u32,
    },
    /// A member fog-1 node: its uplink to its own district fog-2, then
    /// `hops` ring hops laterally to the gather node (0 when the member
    /// belongs to the gather district).
    MemberFog1 {
        /// Fog-2 ring distance from the member's district to the gather
        /// district.
        hops: u32,
    },
}

/// Modeled cost of merging one leg's partial result at the gather node
/// (fold of an `AggPartial`, or one heap round of the k-way merge).
pub const MERGE_PER_LEG_US: u64 = 300;

/// Modeled admission overhead per fan-out leg: every leg occupies an
/// in-flight slot at its layer, and the gather node pays dispatch +
/// completion bookkeeping for it. This is what lets a single cloud read
/// win against very wide fan-outs.
pub const LEG_ADMISSION_US: u64 = 500;

/// Cost model: request/response latency plus serialization of the payload
/// on the bottleneck link, per candidate source.
#[derive(Debug, Clone, Copy)]
pub struct AccessCostModel {
    profile: LatencyProfile,
}

impl AccessCostModel {
    /// A model over the topology's link profile.
    pub fn new(profile: LatencyProfile) -> Self {
        Self { profile }
    }

    /// Estimated completion time for fetching `bytes` via `option`.
    pub fn cost(&self, option: AccessOption, bytes: u64) -> Duration {
        let (one_way, bandwidth) = match option {
            AccessOption::Local | AccessOption::LocalSketch => {
                (self.profile.sensor_to_fog1, 1_000_000_000)
            }
            AccessOption::Neighbor { hops } => {
                let (lat, bw) = self.profile.fog1_neighbor;
                (
                    Duration::from_micros(lat.as_micros() * u64::from(hops.max(1))),
                    bw,
                )
            }
            AccessOption::Parent => self.profile.fog1_to_fog2,
            AccessOption::SiblingFog2 { hops } => {
                let (l1, bw1) = self.profile.fog1_to_fog2;
                let (l2, bw2) = self.profile.fog2_sibling;
                (
                    l1 + Duration::from_micros(l2.as_micros() * u64::from(hops.max(1))),
                    bw1.min(bw2),
                )
            }
            AccessOption::Cloud => {
                let (l1, bw1) = self.profile.fog1_to_fog2;
                let (l2, bw2) = self.profile.fog2_to_cloud;
                (l1 + l2, bw1.min(bw2))
            }
        };
        // Request there + response back + payload serialization.
        let rtt = Duration::from_micros(one_way.as_micros() * 2);
        let link = citysim::Link::new(Duration::ZERO, bandwidth.max(1));
        rtt + link.transfer_time(bytes)
    }

    /// The cheapest of the given options for `bytes`.
    ///
    /// Returns `None` when `options` is empty.
    pub fn cheapest(&self, options: &[AccessOption], bytes: u64) -> Option<AccessOption> {
        options
            .iter()
            .copied()
            .min_by_key(|&o| self.cost(o, bytes).as_micros())
    }

    /// Estimated completion time of one fan-out leg shipping `bytes` of
    /// partial result to the gather fog-2 node.
    pub fn leg_cost(&self, path: FanoutPath, bytes: u64) -> Duration {
        let (one_way, bandwidth) = match path {
            FanoutPath::GatherLocal => return Duration::ZERO,
            FanoutPath::SiblingFog2 { hops } => {
                let (lat, bw) = self.profile.fog2_sibling;
                (
                    Duration::from_micros(lat.as_micros() * u64::from(hops.max(1))),
                    bw,
                )
            }
            FanoutPath::MemberFog1 { hops } => {
                let (l1, bw1) = self.profile.fog1_to_fog2;
                let (l2, bw2) = self.profile.fog2_sibling;
                (
                    l1 + Duration::from_micros(l2.as_micros() * u64::from(hops)),
                    bw1.min(bw2),
                )
            }
        };
        let rtt = Duration::from_micros(one_way.as_micros() * 2);
        let link = citysim::Link::new(Duration::ZERO, bandwidth.max(1));
        rtt + link.transfer_time(bytes)
    }

    /// Estimated completion time of a scatter-gather plan: the legs run
    /// concurrently (their cost is the *max*, not the sum), the gather
    /// node pays a merge and an admission overhead *per leg*, and the
    /// merged answer still has to travel the last fog-2 → fog-1 hop to
    /// the requester.
    pub fn scatter_cost(
        &self,
        legs: &[FanoutPath],
        shard_bytes: u64,
        response_bytes: u64,
    ) -> Duration {
        let slowest = legs
            .iter()
            .map(|&p| self.leg_cost(p, shard_bytes))
            .max()
            .unwrap_or(Duration::ZERO);
        slowest + self.fanout_overhead(legs.len()) + self.cost(AccessOption::Parent, response_bytes)
    }

    /// The gather node's per-leg merge + admission overhead for a
    /// fan-out of `legs` legs.
    pub fn fanout_overhead(&self, legs: usize) -> Duration {
        Duration::from_micros((MERGE_PER_LEG_US + LEG_ADMISSION_US) * legs as u64)
    }

    /// Crossover analysis: the neighbor hop count above which going to the
    /// parent is cheaper, for a payload of `bytes`.
    pub fn neighbor_parent_crossover(&self, bytes: u64) -> u32 {
        let parent = self.cost(AccessOption::Parent, bytes);
        for hops in 1..=64 {
            if self.cost(AccessOption::Neighbor { hops }, bytes) > parent {
                return hops;
            }
        }
        64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccessCostModel {
        AccessCostModel::new(LatencyProfile::default())
    }

    #[test]
    fn local_beats_everything() {
        let m = model();
        for bytes in [0u64, 1_000, 1_000_000] {
            let local = m.cost(AccessOption::Local, bytes);
            for other in [
                AccessOption::Neighbor { hops: 1 },
                AccessOption::Parent,
                AccessOption::Cloud,
            ] {
                assert!(local < m.cost(other, bytes), "{other:?} at {bytes}B");
            }
        }
    }

    #[test]
    fn cloud_is_the_most_expensive_source() {
        let m = model();
        let cloud = m.cost(AccessOption::Cloud, 10_000);
        assert!(cloud > m.cost(AccessOption::Parent, 10_000));
        assert!(cloud > m.cost(AccessOption::Neighbor { hops: 1 }, 10_000));
    }

    #[test]
    fn near_neighbor_beats_parent_far_neighbor_does_not() {
        // Default profile: neighbor hop 3 ms, parent 5 ms one-way.
        let m = model();
        let near = m.cost(AccessOption::Neighbor { hops: 1 }, 1_000);
        let far = m.cost(AccessOption::Neighbor { hops: 4 }, 1_000);
        let parent = m.cost(AccessOption::Parent, 1_000);
        assert!(near < parent);
        assert!(far > parent);
    }

    #[test]
    fn crossover_is_at_two_hops_by_default() {
        // 1 hop: 3 ms < 5 ms. 2 hops: 6 ms > 5 ms.
        assert_eq!(model().neighbor_parent_crossover(1_000), 2);
    }

    #[test]
    fn cheapest_picks_minimum() {
        let m = model();
        let options = [
            AccessOption::Cloud,
            AccessOption::Neighbor { hops: 2 },
            AccessOption::Parent,
        ];
        assert_eq!(m.cheapest(&options, 1_000), Some(AccessOption::Parent));
        assert_eq!(m.cheapest(&[], 1_000), None);
    }

    #[test]
    fn payload_size_shifts_nothing_on_equal_bandwidth() {
        // All fog links share bandwidth in the default profile, so size
        // penalizes every option equally and ordering is stable.
        let m = model();
        let small = m.cheapest(
            &[AccessOption::Neighbor { hops: 1 }, AccessOption::Parent],
            100,
        );
        let large = m.cheapest(
            &[AccessOption::Neighbor { hops: 1 }, AccessOption::Parent],
            100_000_000,
        );
        assert_eq!(small, large);
    }

    #[test]
    fn sibling_fog2_beats_the_cloud_at_any_ring_distance() {
        // The fog-2 metro ring has 10 nodes, so the worst lateral
        // distance is 5 hops; even that stays under the WAN round trip.
        let m = model();
        let cloud = m.cost(AccessOption::Cloud, 1_000);
        for hops in 1..=5 {
            let sibling = m.cost(AccessOption::SiblingFog2 { hops }, 1_000);
            assert!(sibling < cloud, "{hops} hops: {sibling} vs {cloud}");
            assert!(sibling > m.cost(AccessOption::Parent, 1_000));
        }
    }

    #[test]
    fn fog2_scatter_over_all_districts_beats_one_cloud_read() {
        // 10 fog-2 legs (one GatherLocal, the rest at ring distance
        // 1..=5) plus merge/admission overhead and the final parent
        // delivery still undercut a single cloud read: 40 ms worst leg +
        // 8 ms overhead + 10 ms delivery < 70 ms WAN round trip.
        let m = model();
        let legs: Vec<FanoutPath> = (0..10)
            .map(|d: u32| {
                if d == 0 {
                    FanoutPath::GatherLocal
                } else {
                    FanoutPath::SiblingFog2 {
                        hops: d.min(10 - d),
                    }
                }
            })
            .collect();
        let scatter = m.scatter_cost(&legs, 1_024, 1_024);
        assert!(scatter < m.cost(AccessOption::Cloud, 1_024));
    }

    #[test]
    fn wide_fog1_scatter_loses_to_one_cloud_read() {
        // A 73-leg city-wide fan-out over fog-1 nodes pays per-leg
        // merge + admission; the single cloud read wins that contest.
        let m = model();
        let legs: Vec<FanoutPath> = (0..73)
            .map(|i: u32| FanoutPath::MemberFog1 {
                hops: (i % 10).min(10 - i % 10),
            })
            .collect();
        assert!(m.scatter_cost(&legs, 1_024, 1_024) > m.cost(AccessOption::Cloud, 1_024));
    }

    #[test]
    fn leg_costs_order_by_path_length() {
        let m = model();
        assert_eq!(m.leg_cost(FanoutPath::GatherLocal, 4_096), Duration::ZERO);
        let near = m.leg_cost(FanoutPath::SiblingFog2 { hops: 1 }, 4_096);
        let far = m.leg_cost(FanoutPath::SiblingFog2 { hops: 5 }, 4_096);
        let member = m.leg_cost(FanoutPath::MemberFog1 { hops: 1 }, 4_096);
        assert!(near < far);
        assert!(member > near, "fog-1 legs add the uplink hop");
    }

    #[test]
    fn zero_hop_neighbor_is_clamped_to_one() {
        let m = model();
        assert_eq!(
            m.cost(AccessOption::Neighbor { hops: 0 }, 0),
            m.cost(AccessOption::Neighbor { hops: 1 }, 0)
        );
    }
}
