//! The assembled city: all 73 fog-1 nodes, 10 fog-2 nodes and the cloud,
//! wired to the Barcelona topology, with the §IV.C data-fetch logic — when
//! a fog-1 node lacks a requested dataset, the cost model chooses between
//! a neighbor fog node, the fog-2 parent, and the cloud, and the transfer
//! is metered on the simulated network.

use citysim::barcelona::{BarcelonaTopology, LatencyProfile, DISTRICTS};
use citysim::net::FailurePlan;
use citysim::time::{Duration, SimTime};
use citysim::{NetScratch, Network, NodeId};
use f2c_aggregate::sketch::SketchKey;
use f2c_obs::{
    AlertTransition, BurnRateMonitor, CounterId, ExemplarStore, ExplainStore, Labels,
    MetricsRegistry, Site, SloSpec, Tracer,
};
use scc_dlc::DataRecord;
use scc_sensors::{wire, Catalog, Reading, SensorType};

use crate::cost::{AccessCostModel, AccessOption};
use crate::incident::{ChaosSite, IncidentKind, IncidentTimeline};
use crate::node::{F2cNode, FlushBatch, IngestOutcome};
use crate::policy::{FlushPolicy, RetentionPolicy};
use crate::shard::{run_shards, ObsScratch, Parallelism, ShipmentRecord};
use crate::{Error, Result};

/// Where a fetch was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// The requesting section's own fog-1 node.
    Local,
    /// Another fog-1 node in the same district (section index).
    Neighbor(usize),
    /// The district's fog-2 node.
    Parent,
    /// A sibling district's fog-2 node (district index), reached over the
    /// fog-2 metro ring.
    RemoteFog2(usize),
    /// The cloud archive.
    Cloud,
    /// The *sketch ledger* of a fog-1 node (section index): pre-folded
    /// bucket partials answering an aggregate window whose raw records
    /// the node has already evicted. Proved by the ledger's seal
    /// frontier instead of the raw eviction watermark.
    WarmSketch(usize),
}

/// One node of a scatter-gather fan-out: the member fog nodes that each
/// provably hold one shard of a distributed query's window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FanoutLeg {
    /// A fog-1 node by section index.
    Fog1(usize),
    /// A fog-2 node by district index.
    Fog2(usize),
}

/// Outcome of one anti-entropy round: what happened to every coverage
/// hole the fog-2 and cloud ledgers carried into it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealReport {
    /// Holes closed by a targeted re-shipment of the shipper's
    /// authoritative partial.
    pub healed: u64,
    /// Holes carried to the next round: the healing node or its source
    /// was crashed/unreachable, or the source is itself still holed.
    pub blocked: u64,
    /// Holes with no surviving source copy (the shipper compacted the
    /// bucket away); they retire only with the compaction watermark.
    pub impossible: u64,
}

impl HealReport {
    /// Whether every hole seen this round was healed.
    pub fn clean(&self) -> bool {
        self.blocked == 0 && self.impossible == 0
    }
}

/// Result of a data fetch.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The matching records (clones — data is replicated toward the
    /// consumer, never removed from its tier).
    pub records: Vec<DataRecord>,
    /// Where they came from.
    pub source: DataSource,
    /// Completion-time estimate from the cost model.
    pub est_latency: Duration,
}

/// The city's pre-resolved handles into its metrics registry: hot paths
/// publish through dense ids, never by name.
#[derive(Debug, Clone, Copy)]
struct CityMetricIds {
    /// Table-I accounting bytes flushed upward, per hop (fog-1 → fog-2,
    /// fog-2 → cloud).
    raw_flush_bytes: [CounterId; 2],
    /// Wire bytes of the pre-folded partials shipped per hop alongside
    /// the raw batches (the sketch channel's cost), heals included.
    sketch_flush_bytes: [CounterId; 2],
    /// Bytes actually metered on the uplink per hop — the encoded
    /// `tsenc` payload when the policy compresses, accounting bytes
    /// otherwise. The `flush.bytes_per_record` budget gates on these.
    uplink_flush_bytes: [CounterId; 2],
    /// Flush waves run.
    flush_waves: CounterId,
    /// Anti-entropy outcomes: holes healed / carried / unhealable.
    heal_healed: CounterId,
    heal_blocked: CounterId,
    heal_impossible: CounterId,
}

impl CityMetricIds {
    fn register(metrics: &mut MetricsRegistry) -> Self {
        let flush = Labels::new().service("flush");
        let sketch = Labels::new().service("sketch");
        Self {
            raw_flush_bytes: [
                metrics.counter("flush_raw_bytes", flush.layer("fog1")),
                metrics.counter("flush_raw_bytes", flush.layer("fog2")),
            ],
            sketch_flush_bytes: [
                metrics.counter("flush_sketch_bytes", sketch.layer("fog1")),
                metrics.counter("flush_sketch_bytes", sketch.layer("fog2")),
            ],
            uplink_flush_bytes: [
                metrics.counter("flush_uplink_bytes", flush.layer("fog1")),
                metrics.counter("flush_uplink_bytes", flush.layer("fog2")),
            ],
            flush_waves: metrics.counter("flush_waves", flush),
            heal_healed: metrics.counter("heal_outcomes", sketch.kind("healed")),
            heal_blocked: metrics.counter("heal_outcomes", sketch.kind("blocked")),
            heal_impossible: metrics.counter("heal_outcomes", sketch.kind("impossible")),
        }
    }
}

/// The full F2C deployment over Barcelona.
#[derive(Debug)]
pub struct F2cCity {
    catalog: Catalog,
    city: BarcelonaTopology,
    fog1: Vec<F2cNode>,
    fog2: Vec<F2cNode>,
    cloud: F2cNode,
    cost: AccessCostModel,
    flush_epoch: u64,
    /// The unified observability registry every plane publishes into
    /// (flush accounting, heals, incidents, and — through the engine —
    /// query serving).
    metrics: MetricsRegistry,
    ids: CityMetricIds,
    /// Sim-time span logs, one ring per node.
    tracer: Tracer,
    /// Every injected fault and its downstream effects, per node.
    timeline: IncidentTimeline,
    /// Retained planner EXPLAIN transcripts (min-hash reservoir).
    explains: ExplainStore,
    /// Per-latency-bucket trace exemplars: the slowest query per bucket
    /// keeps its span tree.
    exemplars: ExemplarStore,
    /// The availability SLO's burn-rate monitor, evaluated at every
    /// flush instant on the event clock.
    monitor: BurnRateMonitor,
    /// Worker threads for the sharded phases (flush waves, anti-entropy
    /// phase 1, sharded ingest). Every observable is byte-identical at
    /// any setting; this knob only trades wall-clock.
    parallelism: Parallelism,
    /// Whether flush waves append every encoded shipment to
    /// [`F2cCity::shipment_log`] (off by default — the tap exists for
    /// the codec's differential and invariance tests).
    capture_shipments: bool,
    /// Captured shipments, in canonical district/section order.
    shipment_log: Vec<ShipmentRecord>,
}

impl F2cCity {
    /// Builds the deployment with explicit policies.
    ///
    /// # Errors
    ///
    /// Propagates policy validation errors.
    pub fn new(
        profile: &LatencyProfile,
        fog1_flush: FlushPolicy,
        fog2_flush: FlushPolicy,
        fog1_retention: RetentionPolicy,
    ) -> Result<Self> {
        let city = BarcelonaTopology::build(profile);
        let mut fog1 = Vec::with_capacity(73);
        let mut section = 0u16;
        for (d, (_, sections)) in DISTRICTS.iter().enumerate() {
            for _ in 0..*sections {
                fog1.push(F2cNode::fog1(
                    d as u16,
                    section,
                    fog1_flush,
                    fog1_retention,
                )?);
                section += 1;
            }
        }
        let fog2 = (0..DISTRICTS.len())
            .map(|d| F2cNode::fog2(d as u16, fog2_flush, RetentionPolicy::keep(7 * 86_400)))
            .collect::<Result<_>>()?;
        let mut metrics = MetricsRegistry::new();
        let ids = CityMetricIds::register(&mut metrics);
        Ok(Self {
            catalog: Catalog::barcelona(),
            cost: AccessCostModel::new(*profile),
            city,
            fog1,
            fog2,
            cloud: F2cNode::cloud(),
            flush_epoch: 0,
            metrics,
            ids,
            tracer: Tracer::new(),
            timeline: IncidentTimeline::new(),
            explains: ExplainStore::new(),
            exemplars: ExemplarStore::new(),
            monitor: BurnRateMonitor::new(Self::AVAILABILITY_SLO),
            parallelism: Parallelism::from_env(),
            capture_shipments: false,
            shipment_log: Vec::new(),
        })
    }

    /// The availability SLO the city alerts on: 99.9% of answered-or-shed
    /// query traffic must not be fault-shed, with the SRE two-window
    /// policy (10-minute detection window, 1-hour confirmation window,
    /// fire at 10x budget burn). Fault-free runs can never fire — the bad
    /// series stays at zero.
    pub const AVAILABILITY_SLO: SloSpec = SloSpec {
        name: "availability",
        objective_ppm: 999_000,
        fast_window_s: 600,
        slow_window_s: 3_600,
        fire_burn_milli: 10_000,
    };

    /// Sets the worker-thread count for the sharded phases. Snapshots,
    /// transcripts and traces are byte-identical at any value (the city
    /// is partitioned into fixed district shards and every merge folds
    /// in canonical district order); `1` runs everything inline.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The configured worker-thread count for sharded phases.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The paper's default deployment.
    pub fn barcelona() -> Result<Self> {
        Self::new(
            &LatencyProfile::default(),
            FlushPolicy::paper_fog1(),
            FlushPolicy::paper_fog2(),
            RetentionPolicy::keep(86_400),
        )
    }

    /// Number of fog-1 nodes (73).
    pub fn section_count(&self) -> usize {
        self.fog1.len()
    }

    /// The fog-1 node of a section.
    pub fn fog1(&self, section: usize) -> &F2cNode {
        &self.fog1[section]
    }

    /// The fog-2 node of a district.
    pub fn fog2(&self, district: usize) -> &F2cNode {
        &self.fog2[district]
    }

    /// The cloud node.
    pub fn cloud(&self) -> &F2cNode {
        &self.cloud
    }

    /// The Table-I catalog backing the deployment.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The §IV.C access cost model (shared with the query planner).
    pub fn cost_model(&self) -> &AccessCostModel {
        &self.cost
    }

    /// Installs a chaos-plane failure plan on the simulated network
    /// (node crash windows, link outages, flush-shipment loss and
    /// corruption coins).
    pub fn set_failures(&mut self, plan: FailurePlan) {
        self.city.network_mut().set_failures(plan);
    }

    /// Read access to the installed failure plan.
    pub fn failures(&self) -> &FailurePlan {
        self.city.network().failures()
    }

    /// Adds a crash window for a site's node to the installed failure
    /// plan, without callers having to know simulated-network node ids.
    pub fn inject_node_outage(&mut self, site: ChaosSite, from_s: u64, until_s: u64) {
        let node = self.site_node(site);
        self.city.network_mut().failures_mut().add_node_outage(
            node,
            SimTime::from_secs(from_s),
            SimTime::from_secs(until_s),
        );
    }

    /// The queryable per-node incident timeline: every injected fault
    /// and its downstream effects, in deterministic replay order.
    pub fn timeline(&self) -> &IncidentTimeline {
        &self.timeline
    }

    /// Records an incident. The query engine reports its fault sheds,
    /// shed fan-out legs and reroutes here, so one timeline spans the
    /// flush, sketch *and* query planes. Every incident also lands on the
    /// registry as an `incidents{kind=…}` counter, so the exported
    /// snapshot carries the timeline summary for free.
    pub fn record_incident(&mut self, at_s: u64, site: ChaosSite, kind: IncidentKind) {
        let id = self
            .metrics
            .counter("incidents", Labels::new().kind(kind.label()));
        self.metrics.inc(id);
        self.timeline.record(at_s, site, kind);
    }

    /// The unified metrics registry every plane publishes into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the registry, for co-located publishers (the
    /// query engine registers its own series here).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The sim-time tracer: per-node ring-buffered span logs.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer, for co-located instrumentation.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The retained planner EXPLAIN transcripts.
    pub fn explains(&self) -> &ExplainStore {
        &self.explains
    }

    /// Mutable access to the explain reservoir (the query engine's
    /// sequential path offers records here directly).
    pub fn explains_mut(&mut self) -> &mut ExplainStore {
        &mut self.explains
    }

    /// The per-latency-bucket trace exemplars.
    pub fn exemplars(&self) -> &ExemplarStore {
        &self.exemplars
    }

    /// Mutable access to the exemplar slots.
    pub fn exemplars_mut(&mut self) -> &mut ExemplarStore {
        &mut self.exemplars
    }

    /// The availability SLO's burn-rate monitor.
    pub fn burn_monitor(&self) -> &BurnRateMonitor {
        &self.monitor
    }

    /// Turns the shipment tap on or off. While on, every flush hop that
    /// ships an encoded payload appends a [`ShipmentRecord`] to
    /// [`F2cCity::shipment_log`], in the same canonical district and
    /// section order at every thread count.
    pub fn set_capture_shipments(&mut self, on: bool) {
        self.capture_shipments = on;
    }

    /// The captured flush shipments (empty unless the tap is on).
    pub fn shipment_log(&self) -> &[ShipmentRecord] {
        &self.shipment_log
    }

    /// Drains and returns the captured flush shipments.
    pub fn take_shipment_log(&mut self) -> Vec<ShipmentRecord> {
        std::mem::take(&mut self.shipment_log)
    }

    /// Evaluates the availability burn-rate monitor at event-clock
    /// instant `now_s` against the merged registry's cumulative
    /// query-serving counters. A fire lands an
    /// [`IncidentKind::AlertFired`] on the timeline (with the window
    /// values that justified it) plus a flight-recorder dump of each
    /// site's most recent spans; the matching
    /// [`IncidentKind::AlertResolved`] lands when the fast window
    /// clears. [`F2cCity::flush_all`] calls this after every wave, so
    /// both the sequential and the sharded drivers evaluate on the same
    /// schedule — alerts are byte-identical artifacts at any thread
    /// count.
    pub fn evaluate_alerts(&mut self, now_s: u64) {
        let q = Labels::new().service("query");
        let good = self.metrics.counter_named("query_answered", q).unwrap_or(0);
        let bad = self
            .metrics
            .counter_named("query_fault_shed", q)
            .unwrap_or(0);
        match self.monitor.evaluate(now_s, good, bad) {
            Some(AlertTransition::Fired {
                fast_burn_milli,
                slow_burn_milli,
            }) => {
                self.monitor
                    .attach_flight_record(self.tracer.flight_record(8));
                self.record_incident(
                    now_s,
                    ChaosSite::Cloud,
                    IncidentKind::AlertFired {
                        fast_burn_milli,
                        slow_burn_milli,
                    },
                );
            }
            Some(AlertTransition::Resolved {
                fast_burn_milli,
                slow_burn_milli,
            }) => {
                self.record_incident(
                    now_s,
                    ChaosSite::Cloud,
                    IncidentKind::AlertResolved {
                        fast_burn_milli,
                        slow_burn_milli,
                    },
                );
            }
            None => {}
        }
    }

    /// The simulated network node hosting a site.
    fn site_node(&self, site: ChaosSite) -> NodeId {
        match site {
            ChaosSite::Fog1(s) => self.city.fog1_nodes()[s],
            ChaosSite::Fog2(d) => self.city.fog2_nodes()[d],
            ChaosSite::Cloud => self.city.cloud(),
        }
    }

    /// Whether a site's node sits inside an injected crash window.
    pub fn site_is_down(&self, site: ChaosSite, now_s: u64) -> bool {
        self.city
            .network()
            .failures()
            .node_is_down(self.site_node(site), SimTime::from_secs(now_s))
    }

    /// Whether a planned serve of `source` to a consumer at `section`
    /// can currently run: both endpoints outside crash windows and every
    /// link of the route outside its outage window. A pure reachability
    /// probe — no loss coin is drawn, nothing is metered.
    pub fn source_available(&self, section: usize, source: DataSource, now_s: u64) -> bool {
        let at = SimTime::from_secs(now_s);
        let requester = self.city.fog1_nodes()[section];
        let net = self.city.network();
        let source_node = match source {
            // Local serves (and a warm-sketch merge at the requester's
            // own ledger) only need the requester itself alive.
            DataSource::Local => return !net.failures().node_is_down(requester, at),
            DataSource::WarmSketch(s) if s == section => {
                return !net.failures().node_is_down(requester, at)
            }
            DataSource::Neighbor(n) | DataSource::WarmSketch(n) => self.city.fog1_nodes()[n],
            DataSource::Parent => self.city.fog2_nodes()[self.city.district_of(section)],
            DataSource::RemoteFog2(d) => self.city.fog2_nodes()[d],
            DataSource::Cloud => self.city.cloud(),
        };
        net.path_is_up(requester, source_node, at)
    }

    /// Whether one scatter-gather leg is reachable from the gather node
    /// (the fog-2 of the requester's district) at `now_s`.
    pub fn leg_available(&self, section: usize, leg: FanoutLeg, now_s: u64) -> bool {
        let at = SimTime::from_secs(now_s);
        let gather = self.city.fog2_nodes()[self.city.district_of(section)];
        let node = match leg {
            FanoutLeg::Fog1(s) => self.city.fog1_nodes()[s],
            FanoutLeg::Fog2(d) => self.city.fog2_nodes()[d],
        };
        self.city.network().path_is_up(gather, node, at)
    }

    /// District of a section (0..73 → 0..10).
    pub fn district_of(&self, section: usize) -> usize {
        self.city.district_of(section)
    }

    /// The section indices of a district's fog-1 nodes.
    pub fn sections_in_district(&self, district: usize) -> Vec<usize> {
        self.city.fog1_in_district(district)
    }

    /// Number of districts (fog-2 nodes) in the deployment.
    pub fn district_count(&self) -> usize {
        self.fog2.len()
    }

    /// Metro-ring distance between two districts' fog-2 nodes (0 for the
    /// same district). Scatter-gather planning prices fan-out legs with
    /// it.
    pub fn fog2_ring_hops(&self, a: usize, b: usize) -> u32 {
        let n = self.fog2.len();
        let d = a.abs_diff(b);
        d.min(n - d) as u32
    }

    /// Monotone counter bumped by every [`F2cCity::flush_all`]. Result
    /// caches key their entries on it: archives above fog 1 only change
    /// when a flush ships data upward, so an unchanged epoch certifies
    /// that a cached answer is still current.
    pub fn flush_epoch(&self) -> u64 {
        self.flush_epoch
    }

    /// Cumulative Table-I accounting bytes flushed upward so far, per
    /// hop: `(fog-1 → fog-2, fog-2 → cloud)`. A typed view over the
    /// registry's `flush_raw_bytes{layer=…}` counters.
    pub fn raw_flush_bytes(&self) -> (u64, u64) {
        (
            self.metrics.counter_value(self.ids.raw_flush_bytes[0]),
            self.metrics.counter_value(self.ids.raw_flush_bytes[1]),
        )
    }

    /// Cumulative wire bytes of the pre-folded bucket partials shipped
    /// upward so far, per hop: `(fog-1 → fog-2, fog-2 → cloud)`. The
    /// benches report these next to [`F2cCity::raw_flush_bytes`] — the
    /// sketch channel summarizes the whole raw stream for aggregate
    /// readers at a small fraction of its size.
    pub fn sketch_flush_bytes(&self) -> (u64, u64) {
        (
            self.metrics.counter_value(self.ids.sketch_flush_bytes[0]),
            self.metrics.counter_value(self.ids.sketch_flush_bytes[1]),
        )
    }

    /// Cumulative bytes actually metered on the flush uplinks so far,
    /// per hop: `(fog-1 → fog-2, fog-2 → cloud)`. With a compressing
    /// policy these are the encoded `tsenc` payload sizes — what the
    /// network really carried — and the quantity the
    /// `flush.bytes_per_record` perf budget is computed from.
    pub fn uplink_flush_bytes(&self) -> (u64, u64) {
        (
            self.metrics.counter_value(self.ids.uplink_flush_bytes[0]),
            self.metrics.counter_value(self.ids.uplink_flush_bytes[1]),
        )
    }

    /// Meters one consumer request/response on the simulated network:
    /// `request_bytes` from `section`'s fog-1 node to the `source`, and
    /// `response_bytes` back. Local serves never touch the network.
    ///
    /// # Errors
    ///
    /// Network errors (e.g. injected outages on the chosen path).
    pub fn meter_query(
        &mut self,
        section: usize,
        source: DataSource,
        request_bytes: u64,
        response_bytes: u64,
        now_s: u64,
    ) -> Result<()> {
        let requester = self.city.fog1_nodes()[section];
        let source_node = match source {
            DataSource::Local => return Ok(()),
            // A warm-sketch merge at the requester's own node is free;
            // a neighbor's ledger pays the same ring hop a raw neighbor
            // read would.
            DataSource::WarmSketch(s) if s == section => return Ok(()),
            DataSource::Neighbor(n) | DataSource::WarmSketch(n) => self.city.fog1_nodes()[n],
            DataSource::Parent => self.city.fog2_nodes()[self.city.district_of(section)],
            DataSource::RemoteFog2(d) => self.city.fog2_nodes()[d],
            DataSource::Cloud => self.city.cloud(),
        };
        self.city.network_mut().request_response(
            requester,
            source_node,
            request_bytes,
            response_bytes,
            SimTime::from_secs(now_s),
        )?;
        Ok(())
    }

    /// Meters one scatter-gather execution on the simulated network: a
    /// `request_bytes` fan-out from the gather node (the requester's
    /// fog-2) to every leg with each leg's partial result shipped back,
    /// then the merged `response_bytes` delivered over the last
    /// fog-2 → fog-1 hop. Legs colocated with the gather node are free.
    ///
    /// # Errors
    ///
    /// Network errors (e.g. injected outages on a leg's path).
    pub fn meter_fanout(
        &mut self,
        section: usize,
        legs: &[(FanoutLeg, u64)],
        request_bytes: u64,
        response_bytes: u64,
        now_s: u64,
    ) -> Result<()> {
        let gather_district = self.city.district_of(section);
        let gather = self.city.fog2_nodes()[gather_district];
        let at = SimTime::from_secs(now_s);
        for &(leg, leg_bytes) in legs {
            let node = match leg {
                FanoutLeg::Fog1(s) => self.city.fog1_nodes()[s],
                FanoutLeg::Fog2(d) => self.city.fog2_nodes()[d],
            };
            if node == gather {
                continue;
            }
            self.city
                .network_mut()
                .request_response(gather, node, request_bytes, leg_bytes, at)?;
        }
        let requester = self.city.fog1_nodes()[section];
        self.city.network_mut().request_response(
            requester,
            gather,
            request_bytes,
            response_bytes,
            at,
        )?;
        Ok(())
    }

    /// [`F2cCity::meter_query`] against a shard's [`NetScratch`]: same
    /// routing, metering and loss verdicts, but the traffic and the
    /// loss-coin draws are buffered in the scratch until the coordinator
    /// absorbs it at a barrier. Takes `&self`, so shards can meter
    /// concurrently against the shared network snapshot.
    ///
    /// # Errors
    ///
    /// Network errors (e.g. injected outages on the chosen path).
    pub fn meter_query_scratch(
        &self,
        net: &mut NetScratch,
        section: usize,
        source: DataSource,
        request_bytes: u64,
        response_bytes: u64,
        now_s: u64,
    ) -> Result<()> {
        let requester = self.city.fog1_nodes()[section];
        let source_node = match source {
            DataSource::Local => return Ok(()),
            DataSource::WarmSketch(s) if s == section => return Ok(()),
            DataSource::Neighbor(n) | DataSource::WarmSketch(n) => self.city.fog1_nodes()[n],
            DataSource::Parent => self.city.fog2_nodes()[self.city.district_of(section)],
            DataSource::RemoteFog2(d) => self.city.fog2_nodes()[d],
            DataSource::Cloud => self.city.cloud(),
        };
        self.city.network().request_response_scratch(
            net,
            requester,
            source_node,
            request_bytes,
            response_bytes,
            SimTime::from_secs(now_s),
        )?;
        Ok(())
    }

    /// [`F2cCity::meter_fanout`] against a shard's [`NetScratch`] — see
    /// [`F2cCity::meter_query_scratch`].
    ///
    /// # Errors
    ///
    /// Network errors (e.g. injected outages on a leg's path).
    pub fn meter_fanout_scratch(
        &self,
        net: &mut NetScratch,
        section: usize,
        legs: &[(FanoutLeg, u64)],
        request_bytes: u64,
        response_bytes: u64,
        now_s: u64,
    ) -> Result<()> {
        let gather_district = self.city.district_of(section);
        let gather = self.city.fog2_nodes()[gather_district];
        let at = SimTime::from_secs(now_s);
        for &(leg, leg_bytes) in legs {
            let node = match leg {
                FanoutLeg::Fog1(s) => self.city.fog1_nodes()[s],
                FanoutLeg::Fog2(d) => self.city.fog2_nodes()[d],
            };
            if node == gather {
                continue;
            }
            self.city.network().request_response_scratch(
                net,
                gather,
                node,
                request_bytes,
                leg_bytes,
                at,
            )?;
        }
        let requester = self.city.fog1_nodes()[section];
        self.city.network().request_response_scratch(
            net,
            requester,
            gather,
            request_bytes,
            response_bytes,
            at,
        )?;
        Ok(())
    }

    /// Folds one shard's buffered observability into the city: counter
    /// deltas and histograms merge into the unified registry (by key,
    /// with the scratch's cached id map), completed spans append to the
    /// per-site trace logs, incidents append to the timeline, and the
    /// network scratch replays its metering and commits its loss-coin
    /// draws. Callers absorb shards in canonical district order, which
    /// is what makes every merged artifact thread-count-invariant.
    pub fn absorb_scratch(&mut self, scratch: &mut ObsScratch) {
        self.metrics
            .absorb_counters(&mut scratch.reg, &mut scratch.map);
        self.metrics.absorb_histograms(&mut scratch.reg);
        self.tracer.absorb(&mut scratch.tracer);
        self.timeline.absorb(&mut scratch.timeline);
        self.explains.absorb(&mut scratch.explains);
        self.exemplars.absorb(&mut scratch.exemplars);
        self.city.network_mut().absorb_scratch(&mut scratch.net);
        self.shipment_log.append(&mut scratch.shipments);
    }

    /// Ingests one wave of readings at a section's fog-1 node.
    ///
    /// # Errors
    ///
    /// Propagates node errors.
    pub fn ingest(
        &mut self,
        section: usize,
        readings: Vec<Reading>,
        now_s: u64,
    ) -> Result<IngestOutcome> {
        // A crashed fog-1 node loses the wave at the edge: neither the
        // raw store nor the sketch plane ever sees these readings, so
        // every later answer stays consistent with the surviving stream.
        if self.site_is_down(ChaosSite::Fog1(section), now_s) {
            let offered = readings.len() as u64;
            self.record_incident(
                now_s,
                ChaosSite::Fog1(section),
                IncidentKind::IngestLost { readings: offered },
            );
            return Ok(IngestOutcome {
                offered,
                ..IngestOutcome::default()
            });
        }
        self.fog1[section].ingest_wave(readings, now_s, &self.catalog)
    }

    /// Ingests one wave at *every* section, sharded by district on
    /// [`F2cCity::parallelism`] workers. `make(section, &mut
    /// gens[section])` produces the section's readings (generator state
    /// stays with the caller, one slot per section); a crashed node
    /// loses its wave exactly as [`F2cCity::ingest`] does. Per-shard
    /// scratches absorb in district order and sections are
    /// district-contiguous, so incidents land in section order — the
    /// sequential loop's byte stream at every thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first node error in section order.
    pub fn ingest_all<G, F>(
        &mut self,
        gens: &mut [G],
        make: F,
        now_s: u64,
    ) -> Result<Vec<IngestOutcome>>
    where
        G: Send,
        F: Fn(usize, &mut G) -> Vec<Reading> + Sync,
    {
        assert_eq!(gens.len(), self.fog1.len(), "one generator per section");
        struct IngestShard<'a, G> {
            base: usize,
            fog1: &'a mut [F2cNode],
            gens: &'a mut [G],
            obs: ObsScratch,
            out: Vec<IngestOutcome>,
            err: Option<Error>,
        }
        let threads = self.parallelism;
        let city = &self.city;
        let catalog = &self.catalog;
        let mut fog1_rest: &mut [F2cNode] = &mut self.fog1;
        let mut gens_rest: &mut [G] = gens;
        let mut shards: Vec<IngestShard<'_, G>> = Vec::with_capacity(self.fog2.len());
        let mut base = 0usize;
        for &(_, n) in DISTRICTS.iter().take(self.fog2.len()) {
            let (f_head, f_tail) = fog1_rest.split_at_mut(n);
            fog1_rest = f_tail;
            let (g_head, g_tail) = gens_rest.split_at_mut(n);
            gens_rest = g_tail;
            shards.push(IngestShard {
                base,
                fog1: f_head,
                gens: g_head,
                obs: ObsScratch::new(),
                out: Vec::with_capacity(n),
                err: None,
            });
            base += n;
        }
        run_shards(threads, &mut shards, |_, shard| {
            let at = SimTime::from_secs(now_s);
            for k in 0..shard.fog1.len() {
                let section = shard.base + k;
                let readings = make(section, &mut shard.gens[k]);
                let node = city.fog1_nodes()[section];
                if city.network().failures().node_is_down(node, at) {
                    let offered = readings.len() as u64;
                    shard.obs.record_incident(
                        now_s,
                        ChaosSite::Fog1(section),
                        IncidentKind::IngestLost { readings: offered },
                    );
                    shard.out.push(IngestOutcome {
                        offered,
                        ..IngestOutcome::default()
                    });
                    continue;
                }
                match shard.fog1[k].ingest_wave(readings, now_s, catalog) {
                    Ok(outcome) => shard.out.push(outcome),
                    Err(e) => {
                        shard.err = Some(e);
                        break;
                    }
                }
            }
        });
        let results: Vec<(ObsScratch, Vec<IngestOutcome>, Option<Error>)> =
            shards.into_iter().map(|s| (s.obs, s.out, s.err)).collect();
        let mut outcomes = Vec::with_capacity(self.fog1.len());
        let mut first_err = None;
        for (mut obs, out, err) in results {
            self.absorb_scratch(&mut obs);
            outcomes.extend(out);
            if first_err.is_none() {
                first_err = err;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(outcomes)
    }

    /// Flushes every fog-1 node to its parent and every fog-2 node to the
    /// cloud, shipping over the metered network, then runs one
    /// [`F2cCity::anti_entropy`] round so coverage holes punched by this
    /// wave (or carried from earlier ones) start healing immediately.
    /// Returns the accounting bytes shipped at each tier.
    ///
    /// Every hop first passes the chaos gate: a crashed child skips its
    /// turn, an unreachable parent or a lost shipment defers the whole
    /// wave (the batch is never taken, so nothing is lost — it re-ships
    /// on the next healthy wave), and a corruption coin may damage one
    /// encoded partial in flight, punching a coverage hole at the
    /// receiver. Each gate verdict lands on the incident timeline.
    ///
    /// The wave runs sharded by district on [`F2cCity::parallelism`]
    /// workers: phase A (fog-1 → fog-2) is fully district-local and each
    /// shard buffers its metering, spans and incidents in an
    /// [`ObsScratch`]; phase B gates, flushes and draws the corruption
    /// coin per district in parallel, then folds into the cloud at the
    /// coordinator. Both phases merge in canonical district order, and
    /// sections are district-contiguous, so the byte streams (traces,
    /// incidents, meter, snapshots) are those of the sequential
    /// section-order loop at every thread count.
    ///
    /// # Errors
    ///
    /// Network or compression failures (first in district order).
    pub fn flush_all(&mut self, now_s: u64) -> Result<(u64, u64)> {
        self.flush_epoch += 1;
        self.metrics.inc(self.ids.flush_waves);
        let now_us = now_s * 1_000_000;
        let epoch = self.flush_epoch;
        let threads = self.parallelism;
        // Phase A: one shard per district, owning the district's fog-1
        // slice and its fog-2 node.
        let city = &self.city;
        let catalog = &self.catalog;
        let mut rest: &mut [F2cNode] = &mut self.fog1;
        let mut shards: Vec<FlushShard<'_>> = Vec::with_capacity(self.fog2.len());
        let mut base = 0usize;
        for (d, fog2) in self.fog2.iter_mut().enumerate() {
            let (head, tail) = rest.split_at_mut(DISTRICTS[d].1);
            rest = tail;
            let mut obs = ObsScratch::new();
            let ids = CityMetricIds::register(&mut obs.reg);
            shards.push(FlushShard {
                district: d,
                base,
                fog1: head,
                fog2,
                obs,
                ids,
                bytes: 0,
                capture: self.capture_shipments,
                err: None,
            });
            base += DISTRICTS[d].1;
        }
        run_shards(threads, &mut shards, |_, shard| {
            shard.run(city, catalog, epoch, now_s);
        });
        // Drop the node borrows, then absorb in district order.
        let results: Vec<(ObsScratch, u64, Option<Error>)> = shards
            .into_iter()
            .map(|s| (s.obs, s.bytes, s.err))
            .collect();
        let mut fog1_bytes = 0;
        let mut first_err: Option<Error> = None;
        for (mut obs, bytes, err) in results {
            self.absorb_scratch(&mut obs);
            fog1_bytes += bytes;
            if first_err.is_none() {
                first_err = err;
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Phase B: gate + flush + corruption coin per district in
        // parallel; the cloud-side fold runs at the coordinator, in
        // district order.
        let city = &self.city;
        let catalog = &self.catalog;
        let mut cloud_shards: Vec<CloudShard<'_>> = self
            .fog2
            .iter_mut()
            .enumerate()
            .map(|(d, fog2)| CloudShard {
                district: d,
                fog2,
                prep: None,
            })
            .collect();
        run_shards(threads, &mut cloud_shards, |_, shard| {
            shard.run(city, catalog, epoch, now_s);
        });
        let preps: Vec<CloudPrep> = cloud_shards
            .into_iter()
            .map(|s| s.prep.expect("cloud shard ran"))
            .collect();
        let cloud_site = Site::cloud();
        let cloud_wave = self.tracer.open(cloud_site, "flush-wave", now_us);
        let mut cloud_wave_end_us = now_us;
        let mut cloud_shipped = 0u64;
        let mut fog2_bytes = 0;
        for (d, prep) in preps.into_iter().enumerate() {
            let (batch, corrupted) = match prep {
                CloudPrep::Skip(kind) => {
                    self.record_incident(now_s, ChaosSite::Fog2(d), kind);
                    continue;
                }
                CloudPrep::Failed(e) => return Err(e),
                CloudPrep::Ship { batch, corrupted } => (batch, corrupted),
            };
            if let Some(key) = corrupted {
                self.record_incident(
                    now_s,
                    ChaosSite::Cloud,
                    IncidentKind::SketchCorrupted { key },
                );
                self.record_incident(now_s, ChaosSite::Cloud, IncidentKind::HolePunched { key });
            }
            self.metrics
                .add(self.ids.sketch_flush_bytes[1], batch.sketch_bytes);
            self.metrics
                .add(self.ids.raw_flush_bytes[1], batch.acct_bytes);
            // Holes relayed from below punch again at the cloud.
            for &key in &batch.holes {
                self.record_incident(now_s, ChaosSite::Cloud, IncidentKind::HolePunched { key });
            }
            let fold = self.tracer.open(cloud_site, "sketch-fold", now_us);
            self.cloud
                .receive_sketches(&batch.sketches, &batch.seals, &batch.holes);
            self.tracer
                .close_with(fold, now_us, batch.sketches.len() as u64);
            if batch.records.is_empty() {
                continue;
            }
            fog2_bytes += batch.acct_bytes;
            let from = self.city.fog2_nodes()[d];
            let to = self.city.cloud();
            let hop = self.tracer.open(cloud_site, "flush-hop", now_us);
            let sent = self.city.network_mut().send(
                from,
                to,
                batch.uplink_bytes(),
                SimTime::from_secs(now_s),
            );
            let arrival_us = match &sent {
                Ok(delivery) => delivery.arrival.as_micros(),
                Err(_) => now_us,
            };
            self.tracer.close_with(hop, arrival_us, batch.acct_bytes);
            sent?;
            cloud_wave_end_us = cloud_wave_end_us.max(arrival_us);
            cloud_shipped += 1;
            self.metrics
                .add(self.ids.uplink_flush_bytes[1], batch.uplink_bytes());
            if self.capture_shipments {
                if let Some(payload) = batch.payload.clone() {
                    let readings: Vec<Reading> =
                        batch.records.iter().map(|r| r.reading().clone()).collect();
                    self.shipment_log.push(ShipmentRecord {
                        hop: 2,
                        origin: d as u16,
                        at_s: now_s,
                        payload,
                        wire: wire::encode_batch(&readings),
                    });
                }
            }
            self.cloud
                .receive_flush(d as u16, batch.payload.as_deref(), batch.records, now_s)?;
        }
        self.tracer
            .close_with(cloud_wave, cloud_wave_end_us, cloud_shipped);
        // The cloud never flushes (no parent), so the wave runs its
        // sketch-horizon compaction here — otherwise its ledger and hole
        // set would grow for the lifetime of the deployment.
        let compact = self.tracer.open(cloud_site, "sketch-compact", now_us);
        self.cloud.compact_sketches(now_s);
        self.tracer.close(compact, now_us);
        self.anti_entropy(now_s);
        // Every flush instant is also an alert evaluation instant: both
        // the sequential and the sharded drivers flush on the same event
        // clock, so the burn-rate monitor sees one schedule everywhere.
        self.evaluate_alerts(now_s);
        Ok((fog1_bytes, fog2_bytes))
    }

    /// One anti-entropy round: every coverage hole in the fog-2 and
    /// cloud ledgers — the seal-frontier diff made concrete: buckets the
    /// seal advanced past without a surviving fold — is healed by a
    /// targeted re-shipment of the shipper's authoritative ledger entry.
    ///
    /// Phase 1 heals each fog-2 from the fog-1 shippers below it; phase
    /// 2 heals the cloud from the fog-2 tier, so a district healed in
    /// phase 1 can serve as a source in the same round. A heal
    /// *replaces* the receiver's entry (the shipper's ledger is the full
    /// fold for its section, merging a fragment would double-count) and
    /// drops any relay still queued for the key (the full fold subsumes
    /// it). Holes whose source is crashed, unreachable, or itself still
    /// holed carry to the next round; holes whose source has compacted
    /// the bucket away can only retire with the watermark. Re-shipments
    /// are metered on the network and on the sketch channel.
    ///
    /// [`F2cCity::flush_all`] runs a round after every wave; with no
    /// holes it is a no-op.
    pub fn anti_entropy(&mut self, now_s: u64) -> HealReport {
        let at = SimTime::from_secs(now_s);
        let now_us = now_s * 1_000_000;
        let mut report = HealReport::default();
        // Phase 1, one shard per district: each fog-2 heals from the
        // fog-1 shippers below it. The shard only reads the fog-1 tier
        // (shared snapshot) and mutates its own fog-2 node; relay links
        // are district-local, so the scratch loss-coin draws are exactly
        // the sequential ones.
        let threads = self.parallelism;
        let city = &self.city;
        let fog1: &[F2cNode] = &self.fog1;
        let mut shards: Vec<HealShard<'_>> = self
            .fog2
            .iter_mut()
            .enumerate()
            .map(|(d, fog2)| {
                let mut obs = ObsScratch::new();
                let ids = CityMetricIds::register(&mut obs.reg);
                HealShard {
                    district: d,
                    fog2,
                    obs,
                    ids,
                    report: HealReport::default(),
                }
            })
            .collect();
        run_shards(threads, &mut shards, |_, shard| {
            shard.run(city, fog1, now_s);
        });
        let results: Vec<(ObsScratch, HealReport)> =
            shards.into_iter().map(|s| (s.obs, s.report)).collect();
        for (mut obs, shard_report) in results {
            self.absorb_scratch(&mut obs);
            report.healed += shard_report.healed;
            report.blocked += shard_report.blocked;
            report.impossible += shard_report.impossible;
        }
        let cloud_holes = self.cloud.sketches().holes_sorted();
        if cloud_holes.is_empty() {
            return report;
        }
        let to = self.city.cloud();
        if self.city.network().failures().node_is_down(to, at) {
            report.blocked += cloud_holes.len() as u64;
            self.metrics
                .add(self.ids.heal_blocked, cloud_holes.len() as u64);
            return report;
        }
        let round = self.tracer.open(Site::cloud(), "heal-round", now_us);
        let healed_before = report.healed;
        for key in cloud_holes {
            let d = self.city.district_of(key.section as usize);
            let from = self.city.fog2_nodes()[d];
            let site = ChaosSite::Cloud;
            if self.fog2[d].sketches().is_hole(&key) {
                // Healing from a still-holed source would launder the
                // hole into silently wrong data; wait for phase 1.
                report.blocked += 1;
                self.metrics.inc(self.ids.heal_blocked);
                self.record_incident(now_s, site, IncidentKind::HealBlocked { key });
                continue;
            }
            let Some((partial, _)) = self.fog2[d].sketches().entry(&key) else {
                report.impossible += 1;
                self.metrics.inc(self.ids.heal_impossible);
                self.record_incident(now_s, site, IncidentKind::HealImpossible { key });
                continue;
            };
            let encoded = partial.encode();
            let relay = self.tracer.open(Site::cloud(), "sketch-relay", now_us);
            let shipped = self.city.network().path_is_up(from, to, at)
                && self
                    .city
                    .network_mut()
                    .send(from, to, encoded.len() as u64, at)
                    .is_ok();
            self.tracer.close_with(
                relay,
                now_us,
                if shipped { encoded.len() as u64 } else { 0 },
            );
            if !shipped {
                report.blocked += 1;
                self.metrics.inc(self.ids.heal_blocked);
                self.record_incident(now_s, site, IncidentKind::HealBlocked { key });
                continue;
            }
            self.metrics
                .add(self.ids.sketch_flush_bytes[1], encoded.len() as u64);
            if self.cloud.heal_sketch(key, &encoded) {
                // The heal shipped the district's full current fold, which
                // subsumes any increment still queued for upward relay —
                // relaying it afterwards would double-count.
                self.fog2[d].drop_queued_relay(&key);
                report.healed += 1;
                self.metrics.inc(self.ids.heal_healed);
                self.record_incident(now_s, site, IncidentKind::HoleHealed { key });
            }
        }
        self.tracer
            .close_with(round, now_us, report.healed - healed_before);
        report
    }

    /// Ring distance between two sections of the same district.
    pub fn ring_hops(&self, a: usize, b: usize) -> u32 {
        let district = self.city.district_of(a);
        let members = self.city.fog1_in_district(district);
        let pa = members.iter().position(|&m| m == a).expect("member");
        let pb = members.iter().position(|&m| m == b).expect("member");
        let d = pa.abs_diff(pb);
        d.min(members.len() - d) as u32
    }

    fn matching(
        store: &crate::store::TieredStore,
        ty: SensorType,
        from_s: u64,
        until_s: u64,
    ) -> Vec<DataRecord> {
        store
            .range(from_s, until_s)
            .filter(|r| r.sensor_type() == ty)
            .cloned()
            .collect()
    }

    /// §IV.C data fetch: serves `(ty, [from_s, until_s))` to a consumer at
    /// `section`. Checks the local fog-1 store first; otherwise gathers
    /// the candidate sources that hold the data (same-district neighbors,
    /// the fog-2 parent, the cloud), asks the cost model for the cheapest,
    /// and meters the transfer on the network.
    ///
    /// # Errors
    ///
    /// [`Error::Unplaceable`] when no tier holds the requested data;
    /// network errors if the chosen transfer fails.
    pub fn fetch(
        &mut self,
        section: usize,
        ty: SensorType,
        from_s: u64,
        until_s: u64,
        now_s: u64,
    ) -> Result<FetchOutcome> {
        // 1. Local.
        let local = Self::matching(self.fog1[section].store(), ty, from_s, until_s);
        if !local.is_empty() {
            let bytes: u64 = local.iter().map(DataRecord::wire_len).sum();
            return Ok(FetchOutcome {
                est_latency: self.cost.cost(AccessOption::Local, bytes),
                records: local,
                source: DataSource::Local,
            });
        }
        // 2. Candidates elsewhere.
        let district = self.city.district_of(section);
        let mut candidates: Vec<(AccessOption, DataSource, Vec<DataRecord>)> = Vec::new();
        for neighbor in self.city.fog1_in_district(district) {
            if neighbor == section {
                continue;
            }
            let found = Self::matching(self.fog1[neighbor].store(), ty, from_s, until_s);
            if !found.is_empty() {
                let hops = self.ring_hops(section, neighbor);
                candidates.push((
                    AccessOption::Neighbor { hops },
                    DataSource::Neighbor(neighbor),
                    found,
                ));
            }
        }
        let parent = Self::matching(self.fog2[district].store(), ty, from_s, until_s);
        if !parent.is_empty() {
            candidates.push((AccessOption::Parent, DataSource::Parent, parent));
        }
        let cloud = Self::matching(self.cloud.store(), ty, from_s, until_s);
        if !cloud.is_empty() {
            candidates.push((AccessOption::Cloud, DataSource::Cloud, cloud));
        }
        let (option, source, records) = candidates
            .into_iter()
            .min_by_key(|(opt, _, recs)| {
                let bytes: u64 = recs.iter().map(DataRecord::wire_len).sum();
                self.cost.cost(*opt, bytes).as_micros()
            })
            .ok_or_else(|| Error::Unplaceable {
                reason: format!("no tier holds {ty} data in [{from_s}, {until_s})"),
            })?;
        // 3. Meter the transfer.
        let bytes: u64 = records.iter().map(DataRecord::wire_len).sum();
        let requester = self.city.fog1_nodes()[section];
        let source_node = match source {
            DataSource::Local => unreachable!("local handled above"),
            DataSource::WarmSketch(_) => {
                unreachable!("record fetches never read the sketch plane")
            }
            DataSource::Neighbor(n) => self.city.fog1_nodes()[n],
            DataSource::Parent => self.city.fog2_nodes()[district],
            DataSource::RemoteFog2(d) => self.city.fog2_nodes()[d],
            DataSource::Cloud => self.city.cloud(),
        };
        self.city.network_mut().request_response(
            requester,
            source_node,
            200,
            bytes,
            SimTime::from_secs(now_s),
        )?;
        Ok(FetchOutcome {
            est_latency: self.cost.cost(option, bytes),
            records,
            source,
        })
    }

    /// Total bytes metered on the network so far.
    pub fn network_bytes(&self) -> u64 {
        self.city.network().meter().total_bytes()
    }
}

/// Gate one flush hop through the chaos plane. `Some(kind)` means the
/// wave must not ship this turn: the child's `flush()` is never called,
/// so its records stay *pending* in its store and the completeness
/// frontiers above it honestly lag — deferral degrades availability,
/// never correctness. A free function (not a method) so shards can gate
/// while the city's node vectors are mutably split.
fn flush_gate(
    net: &Network,
    from: NodeId,
    to: NodeId,
    epoch: u64,
    now_s: u64,
) -> Option<IncidentKind> {
    let at = SimTime::from_secs(now_s);
    let failures = net.failures();
    if failures.node_is_down(from, at) {
        return Some(IncidentKind::NodeDown);
    }
    if !net.path_is_up(from, to, at) {
        return Some(IncidentKind::FlushBlocked);
    }
    if failures.shipment_lost(from, epoch) {
        return Some(IncidentKind::ShipmentLost);
    }
    // A payload-corruption verdict also defers: the damage would be
    // link-layer detected, and deferring before `flush()` keeps the
    // flush codec's cross-batch dictionary from advancing past a
    // shipment the receiver never applied.
    if failures.payload_corrupted(from, epoch) {
        return Some(IncidentKind::ShipmentCorrupted);
    }
    None
}

/// Draws the in-flight corruption coin for one shipped batch and, on a
/// hit, flips a byte in one encoded partial and returns its key. The
/// receiver's CRC check will refuse it and punch a coverage hole; the
/// caller records both effects at the *receiving* site.
fn corrupt_in_flight(
    net: &Network,
    batch: &mut FlushBatch,
    sender: NodeId,
    epoch: u64,
) -> Option<SketchKey> {
    let idx = net
        .failures()
        .corrupted_sketch(sender, epoch, batch.sketches.len())?;
    let (key, bytes) = &mut batch.sketches[idx];
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    Some(*key)
}

/// One district's phase-A flush shard: the district's fog-1 slice, its
/// fog-2 node, and the scratch all observability is buffered in.
struct FlushShard<'a> {
    district: usize,
    /// Global section index of `fog1[0]` (sections are
    /// district-contiguous, so shard-local `k` is section `base + k`).
    base: usize,
    fog1: &'a mut [F2cNode],
    fog2: &'a mut F2cNode,
    obs: ObsScratch,
    ids: CityMetricIds,
    bytes: u64,
    /// Whether the city's shipment tap is on.
    capture: bool,
    err: Option<Error>,
}

impl FlushShard<'_> {
    fn run(&mut self, city: &BarcelonaTopology, catalog: &Catalog, epoch: u64, now_s: u64) {
        let now_us = now_s * 1_000_000;
        let net = city.network();
        let site = Site::new("fog2", self.district as u32);
        // One wave span per receiving node; member hops nest under it
        // and the wave closes at its slowest hop's arrival.
        let wave = self.obs.tracer.open(site, "flush-wave", now_us);
        let mut wave_end_us = now_us;
        let mut shipped = 0u64;
        for k in 0..self.fog1.len() {
            let i = self.base + k;
            let from = city.fog1_nodes()[i];
            let to = city.parent_of(i);
            if let Some(kind) = flush_gate(net, from, to, epoch, now_s) {
                self.obs.record_incident(now_s, ChaosSite::Fog1(i), kind);
                continue;
            }
            let mut batch = match self.fog1[k].flush(now_s, catalog) {
                Ok(batch) => batch,
                Err(e) => {
                    self.err = Some(e);
                    break;
                }
            };
            if let Some(key) = corrupt_in_flight(net, &mut batch, from, epoch) {
                let at_site = ChaosSite::Fog2(self.district);
                self.obs
                    .record_incident(now_s, at_site, IncidentKind::SketchCorrupted { key });
                self.obs
                    .record_incident(now_s, at_site, IncidentKind::HolePunched { key });
            }
            // The sketch shipment (pre-folded partials + seal frontiers)
            // always reaches the parent — an idle section still seals.
            // Its bytes ride the flush envelope and are accounted on the
            // sketch channel, not against the Table-I ground truth the
            // traffic cross-validation reproduces.
            self.obs
                .reg
                .add(self.ids.sketch_flush_bytes[0], batch.sketch_bytes);
            self.obs
                .reg
                .add(self.ids.raw_flush_bytes[0], batch.acct_bytes);
            let fold = self.obs.tracer.open(site, "sketch-fold", now_us);
            self.fog2
                .receive_sketches(&batch.sketches, &batch.seals, &batch.holes);
            self.obs
                .tracer
                .close_with(fold, now_us, batch.sketches.len() as u64);
            if batch.records.is_empty() {
                continue;
            }
            self.bytes += batch.acct_bytes;
            let hop = self.obs.tracer.open(site, "flush-hop", now_us);
            let sent = net.send_scratch(
                &mut self.obs.net,
                from,
                to,
                batch.uplink_bytes(),
                SimTime::from_secs(now_s),
            );
            let arrival_us = match &sent {
                Ok(delivery) => delivery.arrival.as_micros(),
                Err(_) => now_us,
            };
            self.obs
                .tracer
                .close_with(hop, arrival_us, batch.acct_bytes);
            if let Err(e) = sent {
                self.err = Some(e.into());
                break;
            }
            wave_end_us = wave_end_us.max(arrival_us);
            shipped += 1;
            self.obs
                .reg
                .add(self.ids.uplink_flush_bytes[0], batch.uplink_bytes());
            if self.capture {
                if let Some(payload) = batch.payload.clone() {
                    let readings: Vec<Reading> =
                        batch.records.iter().map(|r| r.reading().clone()).collect();
                    self.obs.shipments.push(ShipmentRecord {
                        hop: 1,
                        origin: i as u16,
                        at_s: now_s,
                        payload,
                        wire: wire::encode_batch(&readings),
                    });
                }
            }
            // The receiver decodes the payload with its per-child mirror
            // decoder and proves it equals the shipped records — the
            // decode-equality check runs live, on every hop.
            if let Err(e) =
                self.fog2
                    .receive_flush(i as u16, batch.payload.as_deref(), batch.records, now_s)
            {
                self.err = Some(e);
                break;
            }
        }
        self.obs.tracer.close_with(wave, wave_end_us, shipped);
    }
}

/// What one district's phase-B shard prepared for the coordinator.
enum CloudPrep {
    /// The chaos gate deferred the district's wave.
    Skip(IncidentKind),
    /// The batch to fold and ship at the coordinator, plus the key the
    /// in-flight corruption coin damaged, if any.
    Ship {
        batch: FlushBatch,
        corrupted: Option<SketchKey>,
    },
    /// The flush itself failed.
    Failed(Error),
}

/// One district's phase-B shard: gates, flushes and draws the
/// corruption coin in parallel; everything cloud-side happens at the
/// coordinator, in district order.
struct CloudShard<'a> {
    district: usize,
    fog2: &'a mut F2cNode,
    prep: Option<CloudPrep>,
}

impl CloudShard<'_> {
    fn run(&mut self, city: &BarcelonaTopology, catalog: &Catalog, epoch: u64, now_s: u64) {
        let net = city.network();
        let from = city.fog2_nodes()[self.district];
        let to = city.cloud();
        self.prep = Some(
            if let Some(kind) = flush_gate(net, from, to, epoch, now_s) {
                CloudPrep::Skip(kind)
            } else {
                match self.fog2.flush(now_s, catalog) {
                    Ok(mut batch) => {
                        let corrupted = corrupt_in_flight(net, &mut batch, from, epoch);
                        CloudPrep::Ship { batch, corrupted }
                    }
                    Err(e) => CloudPrep::Failed(e),
                }
            },
        );
    }
}

/// One district's anti-entropy phase-1 shard: its fog-2 node heals from
/// the (shared, immutable) fog-1 tier below it.
struct HealShard<'a> {
    district: usize,
    fog2: &'a mut F2cNode,
    obs: ObsScratch,
    ids: CityMetricIds,
    report: HealReport,
}

impl HealShard<'_> {
    fn run(&mut self, city: &BarcelonaTopology, fog1: &[F2cNode], now_s: u64) {
        let at = SimTime::from_secs(now_s);
        let now_us = now_s * 1_000_000;
        let d = self.district;
        let net = city.network();
        let holes = self.fog2.sketches().holes_sorted();
        if holes.is_empty() {
            return;
        }
        let to = city.fog2_nodes()[d];
        if net.failures().node_is_down(to, at) {
            // A crashed node runs no heal round; its holes carry.
            self.report.blocked += holes.len() as u64;
            self.obs.reg.add(self.ids.heal_blocked, holes.len() as u64);
            return;
        }
        let round = self
            .obs
            .tracer
            .open(Site::new("fog2", d as u32), "heal-round", now_us);
        let healed_before = self.report.healed;
        for key in holes {
            let section = key.section as usize;
            let from = city.fog1_nodes()[section];
            let site = ChaosSite::Fog2(d);
            let Some((partial, _)) = fog1[section].sketches().entry(&key) else {
                self.report.impossible += 1;
                self.obs.reg.inc(self.ids.heal_impossible);
                self.obs
                    .record_incident(now_s, site, IncidentKind::HealImpossible { key });
                continue;
            };
            let encoded = partial.encode();
            let relay = self
                .obs
                .tracer
                .open(Site::new("fog2", d as u32), "sketch-relay", now_us);
            let shipped = net.path_is_up(from, to, at)
                && net
                    .send_scratch(&mut self.obs.net, from, to, encoded.len() as u64, at)
                    .is_ok();
            self.obs.tracer.close_with(
                relay,
                now_us,
                if shipped { encoded.len() as u64 } else { 0 },
            );
            if !shipped {
                self.report.blocked += 1;
                self.obs.reg.inc(self.ids.heal_blocked);
                self.obs
                    .record_incident(now_s, site, IncidentKind::HealBlocked { key });
                continue;
            }
            self.obs
                .reg
                .add(self.ids.sketch_flush_bytes[0], encoded.len() as u64);
            if self.fog2.heal_sketch(key, &encoded) {
                self.report.healed += 1;
                self.obs.reg.inc(self.ids.heal_healed);
                self.obs
                    .record_incident(now_s, site, IncidentKind::HoleHealed { key });
            }
        }
        self.obs
            .tracer
            .close_with(round, now_us, self.report.healed - healed_before);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::ReadingGenerator;

    fn waves_into(city: &mut F2cCity, section: usize, ty: SensorType, waves: u64) {
        let mut gen = ReadingGenerator::for_population(ty, 10, section as u64 + 1);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
    }

    #[test]
    fn local_data_is_served_locally() {
        let mut city = F2cCity::barcelona().unwrap();
        waves_into(&mut city, 5, SensorType::Weather, 4);
        let before = city.network_bytes();
        let out = city
            .fetch(5, SensorType::Weather, 0, 10_000, 4_000)
            .unwrap();
        assert_eq!(out.source, DataSource::Local);
        assert!(!out.records.is_empty());
        assert_eq!(
            city.network_bytes(),
            before,
            "local reads never hit the network"
        );
    }

    #[test]
    fn neighbor_beats_parent_when_close() {
        let mut city = F2cCity::barcelona().unwrap();
        // Section 0 and 1 are in Ciutat Vella (district 0), 1 ring hop.
        waves_into(&mut city, 1, SensorType::ParkingSpot, 4);
        let out = city
            .fetch(0, SensorType::ParkingSpot, 0, 10_000, 4_000)
            .unwrap();
        assert_eq!(out.source, DataSource::Neighbor(1));
        assert!(city.network_bytes() > 0, "neighbor fetch is metered");
    }

    #[test]
    fn parent_serves_after_fog1_flush_when_no_neighbor_has_it() {
        let mut city = F2cCity::barcelona().unwrap();
        // Ingest at section 10 (district 2); consumer in district 0.
        waves_into(&mut city, 10, SensorType::Traffic, 4);
        city.flush_all(4_000).unwrap();
        // Data now also at fog2 of district 2 — but the requester is in
        // district 0, whose neighbors/parent have nothing... except the
        // cloud has nothing yet either (fog2 flush shipped it!). After
        // flush_all, the cloud holds it too; district-0 requester gets it
        // from the cloud.
        let out = city
            .fetch(0, SensorType::Traffic, 0, 10_000, 5_000)
            .unwrap();
        assert_eq!(out.source, DataSource::Cloud);

        // A requester in district 2 itself prefers its own fog-2 parent
        // (section 10's local store still holds the data; pick a different
        // section of district 2 whose neighbors include 10).
        let d2 = city.city.fog1_in_district(2);
        let far = *d2.iter().find(|&&s| s != 10).unwrap();
        let out = city
            .fetch(far, SensorType::Traffic, 0, 10_000, 5_000)
            .unwrap();
        // Either the neighbor (section 10) or the parent wins, never the
        // cloud — both are strictly cheaper.
        assert_ne!(out.source, DataSource::Cloud);
    }

    #[test]
    fn aged_data_climbs_the_residency_ladder() {
        let mut city = F2cCity::barcelona().unwrap();
        waves_into(&mut city, 3, SensorType::NoiseAmbient, 2);
        city.flush_all(2_000).unwrap();
        // Two days in: fog-1 retention (1 day) has evicted the section
        // copy, but fog-2 keeps a week — recent data is served by the
        // parent, per §IV.B.
        city.flush_all(2 * 86_400).unwrap();
        let out = city
            .fetch(3, SensorType::NoiseAmbient, 0, 10_000, 2 * 86_400)
            .unwrap();
        assert_eq!(out.source, DataSource::Parent);
        // Ten days in: fog-2 retention (7 days) has expired too — the data
        // is historical and lives only at the cloud.
        city.flush_all(10 * 86_400).unwrap();
        let out = city
            .fetch(3, SensorType::NoiseAmbient, 0, 10_000, 10 * 86_400)
            .unwrap();
        assert_eq!(out.source, DataSource::Cloud);
    }

    #[test]
    fn missing_data_is_an_error() {
        let mut city = F2cCity::barcelona().unwrap();
        let err = city.fetch(0, SensorType::GasMeter, 0, 100, 50).unwrap_err();
        assert!(matches!(err, Error::Unplaceable { .. }));
    }

    #[test]
    fn flush_all_moves_bytes_up_both_tiers() {
        let mut city = F2cCity::barcelona().unwrap();
        waves_into(&mut city, 0, SensorType::Weather, 3);
        waves_into(&mut city, 40, SensorType::Weather, 3);
        let (fog1_bytes, fog2_bytes) = city.flush_all(3_000).unwrap();
        assert!(fog1_bytes > 0);
        assert_eq!(fog1_bytes, fog2_bytes, "fog2 relays what it received");
        assert_eq!(city.cloud().store().len(), {
            city.fog1(0).store().len() + city.fog1(40).store().len()
        });
    }

    #[test]
    fn fetch_latency_ordering_matches_the_cost_model() {
        let mut city = F2cCity::barcelona().unwrap();
        waves_into(&mut city, 7, SensorType::AirQuality, 2);
        let local = city
            .fetch(7, SensorType::AirQuality, 0, 10_000, 2_000)
            .unwrap();
        // Same district, different section: neighbor access.
        let d = city.city.district_of(7);
        let other = *city
            .city
            .fog1_in_district(d)
            .iter()
            .find(|&&s| s != 7)
            .unwrap();
        let neighbor = city
            .fetch(other, SensorType::AirQuality, 0, 10_000, 2_000)
            .unwrap();
        assert!(local.est_latency < neighbor.est_latency);
    }

    #[test]
    fn flush_epoch_counts_flushes_and_metering_skips_local() {
        let mut city = F2cCity::barcelona().unwrap();
        assert_eq!(city.flush_epoch(), 0);
        city.flush_all(900).unwrap();
        city.flush_all(1800).unwrap();
        assert_eq!(city.flush_epoch(), 2);

        let before = city.network_bytes();
        city.meter_query(0, DataSource::Local, 200, 10_000, 2_000)
            .unwrap();
        assert_eq!(city.network_bytes(), before, "local serves are free");
        city.meter_query(0, DataSource::Parent, 200, 10_000, 2_000)
            .unwrap();
        assert!(city.network_bytes() > before, "parent serves are metered");
    }

    #[test]
    fn flush_all_delivers_sketches_and_seals_to_every_tier() {
        let mut city = F2cCity::barcelona().unwrap();
        waves_into(&mut city, 5, SensorType::Weather, 3);
        city.flush_all(2_700).unwrap();
        // Every section sealed at its fog-2 parent (idle ones included).
        for s in 0..city.section_count() {
            let d = city.district_of(s);
            assert_eq!(city.fog2(d).sketches().sealed_through(s as u16), 2_700);
        }
        // The producing section's partials were folded at fog-2.
        let d5 = city.district_of(5);
        assert!(!city.fog2(d5).sketches().is_empty());
        let (raw1, _) = city.raw_flush_bytes();
        let (sk1, sk2) = city.sketch_flush_bytes();
        assert!(sk1 > 0, "fog-1 shipped partials");
        assert!(
            sk2 > 0,
            "fog-2 relays within the same flush wave, like the records"
        );
        assert!(sk1 < raw1, "the sketch channel stays cheaper than raw");
        assert_eq!(city.cloud().sketches().sealed_through(5), 2_700);
        let mut cloud_count = 0;
        for key in city.cloud().sketches().keys() {
            let (p, _) = city.cloud().sketches().entry(key).unwrap();
            cloud_count += p.count();
        }
        assert_eq!(
            cloud_count,
            city.cloud().store().len() as u64,
            "cloud ledger pre-folds exactly what the cloud archived"
        );
    }

    #[test]
    fn fog2_ring_hops_are_symmetric_and_bounded() {
        let city = F2cCity::barcelona().unwrap();
        assert_eq!(city.district_count(), 10);
        for a in 0..10 {
            assert_eq!(city.fog2_ring_hops(a, a), 0);
            for b in 0..10 {
                assert_eq!(city.fog2_ring_hops(a, b), city.fog2_ring_hops(b, a));
                assert!(city.fog2_ring_hops(a, b) <= 5);
            }
        }
    }

    #[test]
    fn fanout_metering_charges_every_remote_leg_plus_delivery() {
        let mut city = F2cCity::barcelona().unwrap();
        let before = city.network_bytes();
        // Gather at section 0's district (0); district-0 leg is free.
        city.meter_fanout(
            0,
            &[
                (FanoutLeg::Fog2(0), 1_000),
                (FanoutLeg::Fog2(5), 1_000),
                (FanoutLeg::Fog1(10), 1_000),
            ],
            200,
            2_000,
            100,
        )
        .unwrap();
        let fanout = city.network_bytes() - before;
        // Two remote legs (request + partial back, multi-hop) plus the
        // final fog-2 -> fog-1 delivery; the colocated leg costs nothing.
        assert!(fanout > 2 * (200 + 1_000) + 200 + 2_000);

        let before = city.network_bytes();
        city.meter_fanout(0, &[(FanoutLeg::Fog2(0), 1_000)], 200, 2_000, 100)
            .unwrap();
        assert_eq!(
            city.network_bytes() - before,
            200 + 2_000,
            "a gather-local leg meters only the last-hop delivery"
        );
    }

    #[test]
    fn remote_fog2_queries_are_metered_over_the_ring() {
        let mut city = F2cCity::barcelona().unwrap();
        let before = city.network_bytes();
        city.meter_query(0, DataSource::RemoteFog2(5), 200, 1_000, 100)
            .unwrap();
        assert!(city.network_bytes() > before);
    }

    #[test]
    fn ring_hops_are_symmetric_and_bounded() {
        let city = F2cCity::barcelona().unwrap();
        let members = city.city.fog1_in_district(7); // Nou Barris, 13 sections
        for &a in &members {
            for &b in &members {
                let h1 = city.ring_hops(a, b);
                let h2 = city.ring_hops(b, a);
                assert_eq!(h1, h2);
                assert!(h1 <= members.len() as u32 / 2 + 1);
            }
        }
    }
}
