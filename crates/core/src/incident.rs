//! The incident timeline: every injected fault and each of its
//! downstream effects, recorded per node as it happens.
//!
//! The chaos plane's observability contract is that degradation is
//! *attributable*: a deferred flush wave, a punched coverage hole, a
//! shed fan-out leg or a fault reroute each lands one [`Incident`] on
//! the city's [`IncidentTimeline`], stamped with the simulated instant
//! and the node it happened at. Tests and the chaos bench query the
//! timeline to prove that every refused or degraded answer traces back
//! to an injected fault — and that every hole punched by a corrupt
//! shipment was eventually healed by anti-entropy.

use std::collections::BTreeMap;
use std::fmt;

use f2c_aggregate::sketch::SketchKey;

/// The node an incident happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChaosSite {
    /// A fog-1 node, by section index.
    Fog1(usize),
    /// A fog-2 node, by district index.
    Fog2(usize),
    /// The cloud.
    Cloud,
}

impl fmt::Display for ChaosSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosSite::Fog1(s) => write!(f, "fog1/s{s}"),
            ChaosSite::Fog2(d) => write!(f, "fog2/d{d}"),
            ChaosSite::Cloud => write!(f, "cloud"),
        }
    }
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// The node sat inside a crash window at flush time: nothing taken,
    /// nothing shipped; its records stay pending and every completeness
    /// frontier above it honestly lags.
    NodeDown,
    /// Sensor readings offered while the node was crashed were lost at
    /// the edge — both the raw and the sketch plane lose them equally,
    /// so answers stay consistent with the surviving stream.
    IngestLost {
        /// Readings discarded.
        readings: u64,
    },
    /// The flush wave could not ship: the parent was down or the uplink
    /// path crossed an outage. The batch stays queued below.
    FlushBlocked,
    /// The flush wave was lost in transit (sender-detected): the batch
    /// stays queued below and re-ships next wave.
    ShipmentLost,
    /// The flush wave's encoded record payload would be corrupted in
    /// transit (link-layer detected): the sender retains the wave, just
    /// as for a loss. Deferral is load-bearing here — the flush codec's
    /// cross-batch dictionary advances only on delivered shipments, so
    /// refusing-and-retrying keeps encoder and decoder in lock-step
    /// where applying a damaged stream would desynchronize them.
    ShipmentCorrupted,
    /// One encoded bucket partial arrived corrupted and was refused by
    /// the receiver's CRC check.
    SketchCorrupted {
        /// The damaged bucket.
        key: SketchKey,
    },
    /// A coverage hole was punched (locally refused or relayed from
    /// below): the bucket cannot be proved complete at this node until
    /// healed.
    HolePunched {
        /// The holed bucket.
        key: SketchKey,
    },
    /// Anti-entropy healed a hole: the shipper's authoritative partial
    /// was re-shipped and installed.
    HoleHealed {
        /// The healed bucket.
        key: SketchKey,
    },
    /// Anti-entropy found the heal source unreachable this round; the
    /// hole is carried to the next round.
    HealBlocked {
        /// The still-holed bucket.
        key: SketchKey,
    },
    /// Anti-entropy found no surviving copy (the shipper compacted the
    /// bucket away): the hole can only retire with the watermark.
    HealImpossible {
        /// The unhealable bucket.
        key: SketchKey,
    },
    /// A scatter-gather leg was shed from a fan-out because its node
    /// was crashed or unreachable; the answer is annotated partial.
    LegShed,
    /// A planned route was unserveable under the fault plan (source
    /// down, path down, or transfer lost).
    RouteFault,
    /// A fault-shed query was rescued onto its fallback route.
    Reroute,
    /// The burn-rate monitor's fast and slow windows both crossed the
    /// alert threshold: an SLO alert started firing.
    AlertFired {
        /// Fast-window burn rate at fire time, parts-per-thousand.
        fast_burn_milli: u64,
        /// Slow-window burn rate at fire time, parts-per-thousand.
        slow_burn_milli: u64,
    },
    /// The fast window dropped back under the threshold: the SLO alert
    /// resolved.
    AlertResolved {
        /// Fast-window burn rate at resolve time, parts-per-thousand.
        fast_burn_milli: u64,
        /// Slow-window burn rate at resolve time, parts-per-thousand.
        slow_burn_milli: u64,
    },
}

impl IncidentKind {
    /// Short label for summaries and transcripts.
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::NodeDown => "node-down",
            IncidentKind::IngestLost { .. } => "ingest-lost",
            IncidentKind::FlushBlocked => "flush-blocked",
            IncidentKind::ShipmentLost => "shipment-lost",
            IncidentKind::ShipmentCorrupted => "shipment-corrupted",
            IncidentKind::SketchCorrupted { .. } => "sketch-corrupted",
            IncidentKind::HolePunched { .. } => "hole-punched",
            IncidentKind::HoleHealed { .. } => "hole-healed",
            IncidentKind::HealBlocked { .. } => "heal-blocked",
            IncidentKind::HealImpossible { .. } => "heal-impossible",
            IncidentKind::LegShed => "leg-shed",
            IncidentKind::RouteFault => "route-fault",
            IncidentKind::Reroute => "reroute",
            IncidentKind::AlertFired { .. } => "alert-fired",
            IncidentKind::AlertResolved { .. } => "alert-resolved",
        }
    }

    /// The sketch bucket the incident concerns, when it concerns one.
    pub fn key(&self) -> Option<SketchKey> {
        match self {
            IncidentKind::SketchCorrupted { key }
            | IncidentKind::HolePunched { key }
            | IncidentKind::HoleHealed { key }
            | IncidentKind::HealBlocked { key }
            | IncidentKind::HealImpossible { key } => Some(*key),
            _ => None,
        }
    }
}

/// One recorded fault or downstream effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incident {
    /// Simulated instant.
    pub at_s: u64,
    /// The node it happened at.
    pub site: ChaosSite,
    /// What happened.
    pub kind: IncidentKind,
}

/// Append-only, queryable record of every incident, in the order the
/// deterministic simulation produced them (replays agree event for
/// event).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncidentTimeline {
    events: Vec<Incident>,
}

impl IncidentTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one incident.
    pub fn record(&mut self, at_s: u64, site: ChaosSite, kind: IncidentKind) {
        self.events.push(Incident { at_s, site, kind });
    }

    /// Appends (and drains) every incident of `other`, preserving its
    /// order. Shard scratches absorb in canonical shard order at
    /// barriers, so the merged timeline is replay-stable at any thread
    /// count.
    pub fn absorb(&mut self, other: &mut IncidentTimeline) {
        self.events.append(&mut other.events);
    }

    /// Number of recorded incidents.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All incidents, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.events.iter()
    }

    /// The incidents recorded at one node, oldest first.
    pub fn at_site(&self, site: ChaosSite) -> impl Iterator<Item = &Incident> {
        self.events.iter().filter(move |i| i.site == site)
    }

    /// The incidents inside `[from_s, until_s)`, oldest first.
    pub fn in_window(&self, from_s: u64, until_s: u64) -> impl Iterator<Item = &Incident> {
        self.events
            .iter()
            .filter(move |i| i.at_s >= from_s && i.at_s < until_s)
    }

    /// Incident counts per kind label, label-ordered.
    pub fn summary(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for i in &self.events {
            *out.entry(i.kind.label()).or_insert(0) += 1;
        }
        out
    }

    /// The holes punched at `site` that were never healed there —
    /// matching punch and heal events by bucket key. The healing
    /// invariant asserts this is empty by end of run.
    pub fn unhealed_holes(&self, site: ChaosSite) -> Vec<SketchKey> {
        let mut open: Vec<SketchKey> = Vec::new();
        for i in self.at_site(site) {
            match i.kind {
                IncidentKind::HolePunched { key } if !open.contains(&key) => open.push(key),
                IncidentKind::HoleHealed { key } => open.retain(|&k| k != key),
                _ => {}
            }
        }
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::SensorType;

    fn key(bucket: u64) -> SketchKey {
        SketchKey {
            section: 1,
            ty: SensorType::Traffic,
            bucket_start_s: bucket,
        }
    }

    #[test]
    fn timeline_is_queryable_by_site_window_and_kind() {
        let mut t = IncidentTimeline::new();
        t.record(100, ChaosSite::Fog1(3), IncidentKind::NodeDown);
        t.record(
            900,
            ChaosSite::Fog2(0),
            IncidentKind::HolePunched { key: key(0) },
        );
        t.record(1_800, ChaosSite::Fog2(0), IncidentKind::NodeDown);
        assert_eq!(t.len(), 3);
        assert_eq!(t.at_site(ChaosSite::Fog2(0)).count(), 2);
        assert_eq!(t.in_window(0, 900).count(), 1);
        assert_eq!(t.summary()["node-down"], 2);
        assert_eq!(t.summary()["hole-punched"], 1);
    }

    #[test]
    fn unhealed_holes_pair_punches_with_heals() {
        let mut t = IncidentTimeline::new();
        let site = ChaosSite::Fog2(4);
        t.record(900, site, IncidentKind::HolePunched { key: key(0) });
        t.record(900, site, IncidentKind::HolePunched { key: key(900) });
        // A duplicate punch of the same bucket stays one open hole.
        t.record(1_800, site, IncidentKind::HolePunched { key: key(0) });
        t.record(2_700, site, IncidentKind::HoleHealed { key: key(0) });
        assert_eq!(t.unhealed_holes(site), vec![key(900)]);
        t.record(3_600, site, IncidentKind::HoleHealed { key: key(900) });
        assert!(t.unhealed_holes(site).is_empty());
        assert!(t.unhealed_holes(ChaosSite::Cloud).is_empty());
    }

    #[test]
    fn labels_and_keys_round_trip() {
        assert_eq!(IncidentKind::NodeDown.label(), "node-down");
        assert_eq!(IncidentKind::NodeDown.key(), None);
        let k = IncidentKind::HoleHealed { key: key(900) };
        assert_eq!(k.label(), "hole-healed");
        assert_eq!(k.key(), Some(key(900)));
        assert_eq!(format!("{}", ChaosSite::Fog1(7)), "fog1/s7");
        assert_eq!(format!("{}", ChaosSite::Fog2(2)), "fog2/d2");
        assert_eq!(format!("{}", ChaosSite::Cloud), "cloud");
    }
}
