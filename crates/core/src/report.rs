//! Plain-text table rendering for the experiment harnesses: the bench
//! binaries print paper-shaped rows through these helpers so every harness
//! formats identically.

use crate::traffic::{Fig7Row, Table1Row, Table1Totals};

/// Formats a byte count with thousands separators (Table I style).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats bytes as decimal gigabytes with 2 decimals (Fig. 7 style).
pub fn gb(bytes: u64) -> String {
    format!("{:.2} GB", bytes as f64 / 1e9)
}

/// Renders Table I rows plus the totals row.
pub fn render_table1(rows: &[Table1Row], totals: &Table1Totals) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>6} {:>14} {:>14} {:>16} {:>16} {:>16}\n",
        "Type",
        "Sensors",
        "B/tx",
        "Wave cloud",
        "Wave fog2",
        "Daily fog1",
        "Daily fog2",
        "Daily cloud F2C"
    ));
    out.push_str(&"-".repeat(126));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:>10} {:>6} {:>14} {:>14} {:>16} {:>16} {:>16}\n",
            r.ty.to_string(),
            thousands(r.sensors),
            r.tx_bytes,
            thousands(r.wave_cloud_model),
            thousands(r.wave_fog2),
            thousands(r.daily_fog1),
            thousands(r.daily_fog2),
            thousands(r.daily_cloud_f2c),
        ));
    }
    out.push_str(&"-".repeat(126));
    out.push('\n');
    out.push_str(&format!(
        "{:<28} {:>10} {:>6} {:>14} {:>14} {:>16} {:>16} {:>16}\n",
        "TOTAL",
        thousands(totals.sensors),
        "",
        thousands(totals.wave_cloud_model),
        thousands(totals.wave_fog2),
        thousands(totals.daily_fog1),
        thousands(totals.daily_fog2),
        thousands(totals.daily_cloud_f2c),
    ));
    out
}

/// Renders the Fig. 7 bar groups.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22} {:>12} {:>14} {:>18} {:>18}\n",
        "Category", "Raw", "After dedup", "Dedup+compress", "Compress(raw)"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>12} {:>14} {:>18} {:>18}\n",
            r.category.to_string(),
            gb(r.raw),
            gb(r.after_dedup),
            gb(r.after_dedup_and_compression),
            gb(r.compressed_raw),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficModel;

    #[test]
    fn thousands_separators() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(8_583_503_168), "8,583,503,168");
    }

    #[test]
    fn gb_formatting() {
        assert_eq!(gb(8_583_503_168), "8.58 GB");
        assert_eq!(gb(0), "0.00 GB");
    }

    #[test]
    fn table1_renders_all_rows_and_the_paper_totals() {
        let m = TrafficModel::paper();
        let text = render_table1(&m.table1_rows(), &m.table1_totals());
        assert_eq!(text.lines().count(), 21 + 4); // header, rule, 21 rows, rule, total
        assert!(text.contains("8,583,503,168"));
        assert!(text.contains("5,036,071,584"));
        assert!(text.contains("Network analyzer"));
    }

    #[test]
    fn fig7_renders_every_category() {
        let m = TrafficModel::paper();
        let text = render_fig7(&m.fig7_rows());
        for name in ["Energy", "Noise", "Garbage", "Parking", "Urban"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(!text.contains("8.58")); // per-category, no total row
    }
}
