//! The analytic traffic model: regenerates **Table I** and **Fig. 7** of
//! the paper from the published catalog parameters.
//!
//! The model computes, per sensor type and per category, the bytes moving
//! through each layer under two architectures:
//!
//! * **Cloud (centralized, Fig. 3)** — every transaction crosses the WAN to
//!   the cloud unreduced;
//! * **F2C (Fig. 5)** — fog layer 1 receives everything, applies
//!   redundant-data elimination (per-category rates from Table I), and
//!   ships the survivors upward; fog 2 and the cloud therefore receive the
//!   reduced volume. Fig. 7 additionally applies compression to the
//!   shipped batches.
//!
//! All Table-I arithmetic is exact integer math; compression enters only in
//! the Fig. 7 rows, as a configurable ratio (the paper's measured Zip ratio
//! by default, the measured `f2c-compress` ratio in the benches).

use scc_sensors::{Catalog, Category, SensorType, TypeSpec};
use serde::Serialize;

/// The paper's measured Zip compression: 1,360,043,206 B → 295,428,463 B.
pub const PAPER_COMPRESSED_BYTES: u64 = 295_428_463;
/// See [`PAPER_COMPRESSED_BYTES`].
pub const PAPER_ORIGINAL_BYTES: u64 = 1_360_043_206;

/// One sensor-type row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Table1Row {
    /// The sensor type.
    pub ty: SensorType,
    /// Deployed sensors.
    pub sensors: u64,
    /// Bytes per transaction per sensor.
    pub tx_bytes: u64,
    /// Bytes per transaction wave arriving at the centralized cloud.
    pub wave_cloud_model: u64,
    /// Bytes per wave arriving at fog layer 1 (F2C) — equals the raw wave.
    pub wave_fog1: u64,
    /// Bytes per wave arriving at fog layer 2 after fog-1 dedup.
    pub wave_fog2: u64,
    /// Bytes per wave arriving at the cloud (F2C) — equals fog 2.
    pub wave_cloud_f2c: u64,
    /// Bytes per day per sensor.
    pub daily_per_sensor: u64,
    /// Bytes per day at fog layer 1 (raw generation).
    pub daily_fog1: u64,
    /// Bytes per day at fog layer 2 (after dedup).
    pub daily_fog2: u64,
    /// Bytes per day at the cloud (F2C).
    pub daily_cloud_f2c: u64,
}

/// Grand totals of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Table1Totals {
    /// Total sensors.
    pub sensors: u64,
    /// Total wave bytes at the centralized cloud.
    pub wave_cloud_model: u64,
    /// Total wave bytes at fog 2 / F2C cloud.
    pub wave_fog2: u64,
    /// Total daily bytes generated (fog-1 ingress; also the centralized
    /// cloud's daily ingress).
    pub daily_fog1: u64,
    /// Total daily bytes at fog 2 after dedup.
    pub daily_fog2: u64,
    /// Total daily bytes at the F2C cloud.
    pub daily_cloud_f2c: u64,
}

/// One category bar group of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig7Row {
    /// The category.
    pub category: Category,
    /// Raw daily bytes (the centralized-cloud volume).
    pub raw: u64,
    /// After redundant-data elimination at fog 1.
    pub after_dedup: u64,
    /// After dedup *and* compression — the pipeline the paper's text
    /// describes (§V.B: compression "after using data aggregation").
    pub after_dedup_and_compression: u64,
    /// Compression applied to the raw volume (no dedup) — the pipeline
    /// Fig. 7 actually plots for garbage/parking/urban; reported for
    /// comparability (see DESIGN.md, "known inconsistencies").
    pub compressed_raw: u64,
}

/// The analytic traffic model.
///
/// # Examples
///
/// ```
/// use f2c_core::traffic::TrafficModel;
/// use scc_sensors::SensorType;
///
/// let model = TrafficModel::paper();
/// let rows = model.table1_rows();
/// let energy = rows.iter().find(|r| r.ty == SensorType::ElectricityMeter).unwrap();
/// assert_eq!(energy.wave_cloud_model, 1_555_774);
/// assert_eq!(energy.wave_fog2, 777_887);
/// assert_eq!(energy.daily_fog1, 149_354_304);
/// assert_eq!(energy.daily_cloud_f2c, 74_677_152);
/// ```
#[derive(Debug, Clone)]
pub struct TrafficModel {
    catalog: Catalog,
    compression_ratio: f64,
}

impl TrafficModel {
    /// The paper's configuration: the Barcelona catalog and the measured
    /// Zip ratio (≈0.2172, i.e. ≈78 % reduction).
    pub fn paper() -> Self {
        Self::new(
            Catalog::barcelona(),
            PAPER_COMPRESSED_BYTES as f64 / PAPER_ORIGINAL_BYTES as f64,
        )
    }

    /// A model over `catalog` with `compression_ratio` (compressed/original).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < compression_ratio <= 1`.
    pub fn new(catalog: Catalog, compression_ratio: f64) -> Self {
        assert!(
            compression_ratio > 0.0 && compression_ratio <= 1.0,
            "compression ratio must be in (0, 1], got {compression_ratio}"
        );
        Self {
            catalog,
            compression_ratio,
        }
    }

    /// Replaces the compression ratio (e.g. with a measured one).
    pub fn with_compression_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        self.compression_ratio = ratio;
        self
    }

    /// The configured compression ratio.
    pub fn compression_ratio(&self) -> f64 {
        self.compression_ratio
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    fn row_for(spec: &TypeSpec) -> Table1Row {
        let cat = spec.category();
        let wave = spec.wave_bytes();
        let daily = spec.daily_bytes();
        Table1Row {
            ty: spec.sensor_type(),
            sensors: spec.sensors(),
            tx_bytes: spec.tx_bytes(),
            wave_cloud_model: wave,
            wave_fog1: wave,
            wave_fog2: cat.reduce_bytes(wave),
            wave_cloud_f2c: cat.reduce_bytes(wave),
            daily_per_sensor: spec.daily_bytes_per_sensor(),
            daily_fog1: daily,
            daily_fog2: cat.reduce_bytes(daily),
            daily_cloud_f2c: cat.reduce_bytes(daily),
        }
    }

    /// All Table I rows, in table order.
    pub fn table1_rows(&self) -> Vec<Table1Row> {
        SensorType::ALL
            .iter()
            .filter_map(|ty| self.catalog.spec(*ty))
            .map(Self::row_for)
            .collect()
    }

    /// Table I rows for one category.
    pub fn table1_rows_in(&self, category: Category) -> Vec<Table1Row> {
        self.table1_rows()
            .into_iter()
            .filter(|r| r.ty.category() == category)
            .collect()
    }

    /// Category subtotal (the "Total number" rows of Table I).
    pub fn table1_category_totals(&self, category: Category) -> Table1Totals {
        Self::sum_rows(&self.table1_rows_in(category))
    }

    /// Grand totals (the last row of Table I).
    pub fn table1_totals(&self) -> Table1Totals {
        Self::sum_rows(&self.table1_rows())
    }

    fn sum_rows(rows: &[Table1Row]) -> Table1Totals {
        Table1Totals {
            sensors: rows.iter().map(|r| r.sensors).sum(),
            wave_cloud_model: rows.iter().map(|r| r.wave_cloud_model).sum(),
            wave_fog2: rows.iter().map(|r| r.wave_fog2).sum(),
            daily_fog1: rows.iter().map(|r| r.daily_fog1).sum(),
            daily_fog2: rows.iter().map(|r| r.daily_fog2).sum(),
            daily_cloud_f2c: rows.iter().map(|r| r.daily_cloud_f2c).sum(),
        }
    }

    /// The five bar groups of Fig. 7.
    pub fn fig7_rows(&self) -> Vec<Fig7Row> {
        Category::ALL
            .iter()
            .map(|&category| {
                let raw = self.catalog.daily_bytes_in(category);
                let after_dedup = category.reduce_bytes(raw);
                Fig7Row {
                    category,
                    raw,
                    after_dedup,
                    after_dedup_and_compression: (after_dedup as f64 * self.compression_ratio)
                        .round() as u64,
                    compressed_raw: (raw as f64 * self.compression_ratio).round() as u64,
                }
            })
            .collect()
    }

    /// Daily bytes saved on the fog2→cloud path by F2C dedup alone.
    pub fn daily_dedup_savings(&self) -> u64 {
        let t = self.table1_totals();
        t.daily_fog1 - t.daily_cloud_f2c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table1_row_matches_the_paper() {
        // Exact expected values transcribed from Table I.
        // (ty, wave_cloud, wave_fog2, daily_per_sensor, daily_fog1, daily_fog2)
        use SensorType::*;
        let expected: [(SensorType, u64, u64, u64, u64, u64); 21] = [
            (
                ElectricityMeter,
                1_555_774,
                777_887,
                2_112,
                149_354_304,
                74_677_152,
            ),
            (
                ExternalAmbientConditions,
                1_555_774,
                777_887,
                2_112,
                149_354_304,
                74_677_152,
            ),
            (GasMeter, 1_555_774, 777_887, 2_112, 149_354_304, 74_677_152),
            (
                InternalAmbientConditions,
                1_555_774,
                777_887,
                2_112,
                149_354_304,
                74_677_152,
            ),
            (
                NetworkAnalyzer,
                17_113_514,
                8_556_757,
                23_232,
                1_642_897_344,
                821_448_672,
            ),
            (
                SolarThermalInstallation,
                1_555_774,
                777_887,
                2_112,
                149_354_304,
                74_677_152,
            ),
            (
                Temperature,
                1_555_774,
                777_887,
                2_112,
                149_354_304,
                74_677_152,
            ),
            (NoiseAmbient, 220_000, 55_000, 768, 7_680_000, 1_920_000),
            (
                NoiseTrafficZone,
                220_000,
                55_000,
                31_680,
                316_800_000,
                79_200_000,
            ),
            (
                NoiseLeisureZone,
                220_000,
                55_000,
                31_680,
                316_800_000,
                79_200_000,
            ),
            (
                ContainerGlass,
                2_000_000,
                600_000,
                1_800,
                72_000_000,
                21_600_000,
            ),
            (
                ContainerOrganic,
                2_000_000,
                600_000,
                1_800,
                72_000_000,
                21_600_000,
            ),
            (
                ContainerPaper,
                2_000_000,
                600_000,
                1_800,
                72_000_000,
                21_600_000,
            ),
            (
                ContainerPlastic,
                2_000_000,
                600_000,
                1_800,
                72_000_000,
                21_600_000,
            ),
            (
                ContainerRefuse,
                2_000_000,
                600_000,
                1_800,
                72_000_000,
                21_600_000,
            ),
            (
                ParkingSpot,
                3_200_000,
                1_920_000,
                4_000,
                320_000_000,
                192_000_000,
            ),
            (
                AirQuality,
                5_760_000,
                4_032_000,
                13_824,
                552_960_000,
                387_072_000,
            ),
            (
                BicycleFlow,
                880_000,
                616_000,
                3_168,
                126_720_000,
                88_704_000,
            ),
            (PeopleFlow, 880_000, 616_000, 3_168, 126_720_000, 88_704_000),
            (
                Traffic,
                1_760_000,
                1_232_000,
                63_360,
                2_534_400_000,
                1_774_080_000,
            ),
            (
                Weather,
                4_800_000,
                3_360_000,
                34_560,
                1_382_400_000,
                967_680_000,
            ),
        ];
        let rows = TrafficModel::paper().table1_rows();
        assert_eq!(rows.len(), 21);
        for (row, (ty, wave_cloud, wave_fog2, dps, daily1, daily2)) in rows.iter().zip(expected) {
            assert_eq!(row.ty, ty);
            assert_eq!(row.wave_cloud_model, wave_cloud, "{ty} wave cloud");
            assert_eq!(row.wave_fog1, wave_cloud, "{ty} wave fog1");
            assert_eq!(row.wave_fog2, wave_fog2, "{ty} wave fog2");
            assert_eq!(row.wave_cloud_f2c, wave_fog2, "{ty} wave f2c cloud");
            assert_eq!(row.daily_per_sensor, dps, "{ty} daily/sensor");
            assert_eq!(row.daily_fog1, daily1, "{ty} daily fog1");
            assert_eq!(row.daily_fog2, daily2, "{ty} daily fog2");
            assert_eq!(row.daily_cloud_f2c, daily2, "{ty} daily f2c cloud");
        }
    }

    #[test]
    fn category_totals_match_the_paper() {
        let m = TrafficModel::paper();
        let energy = m.table1_category_totals(Category::Energy);
        assert_eq!(energy.sensors, 495_019);
        assert_eq!(energy.wave_cloud_model, 26_448_158);
        assert_eq!(energy.wave_fog2, 13_224_079);
        assert_eq!(energy.daily_fog1, 2_539_023_168);
        assert_eq!(energy.daily_fog2, 1_269_511_584);

        let noise = m.table1_category_totals(Category::Noise);
        assert_eq!(noise.wave_cloud_model, 660_000);
        assert_eq!(noise.wave_fog2, 165_000);
        assert_eq!(noise.daily_fog1, 641_280_000);
        assert_eq!(noise.daily_fog2, 160_320_000);

        let garbage = m.table1_category_totals(Category::Garbage);
        assert_eq!(garbage.wave_cloud_model, 10_000_000);
        assert_eq!(garbage.wave_fog2, 3_000_000);
        assert_eq!(garbage.daily_fog1, 360_000_000);
        assert_eq!(garbage.daily_fog2, 108_000_000);

        let parking = m.table1_category_totals(Category::Parking);
        assert_eq!(parking.wave_cloud_model, 3_200_000);
        assert_eq!(parking.wave_fog2, 1_920_000);
        assert_eq!(parking.daily_fog1, 320_000_000);
        assert_eq!(parking.daily_fog2, 192_000_000);

        let urban = m.table1_category_totals(Category::Urban);
        assert_eq!(urban.wave_cloud_model, 14_080_000);
        assert_eq!(urban.wave_fog2, 9_856_000);
        assert_eq!(urban.daily_fog1, 4_723_200_000);
        assert_eq!(urban.daily_fog2, 3_306_240_000);
    }

    #[test]
    fn grand_totals_match_the_paper() {
        let t = TrafficModel::paper().table1_totals();
        assert_eq!(t.sensors, 1_005_019);
        assert_eq!(t.wave_cloud_model, 54_388_158);
        assert_eq!(t.wave_fog2, 28_165_079);
        assert_eq!(t.daily_fog1, 8_583_503_168);
        assert_eq!(t.daily_fog2, 5_036_071_584);
        assert_eq!(t.daily_cloud_f2c, 5_036_071_584);
    }

    #[test]
    fn fig7_matches_the_papers_reported_gigabytes() {
        // Paper (Fig. 7, GB): energy 2.5→1.2→0.27 (dedup+zip),
        // noise 0.64→0.16→0.03, garbage 0.36→0.07 (zip on raw),
        // parking 0.32→0.07 (zip on raw), urban 4.7→1.03 (zip on raw).
        let rows = TrafficModel::paper().fig7_rows();
        let gb = |b: u64| b as f64 / 1e9;

        let energy = &rows[0];
        assert!((gb(energy.raw) - 2.54).abs() < 0.01);
        assert!((gb(energy.after_dedup) - 1.27).abs() < 0.01);
        assert!((gb(energy.after_dedup_and_compression) - 0.276).abs() < 0.01);

        let noise = &rows[1];
        assert!((gb(noise.raw) - 0.641).abs() < 0.001);
        assert!((gb(noise.after_dedup) - 0.160).abs() < 0.001);
        assert!((gb(noise.after_dedup_and_compression) - 0.0348).abs() < 0.001);

        let garbage = &rows[2];
        assert!((gb(garbage.compressed_raw) - 0.0782).abs() < 0.001); // paper's 0.07
        let parking = &rows[3];
        assert!((gb(parking.compressed_raw) - 0.0695).abs() < 0.001); // paper's 0.07
        let urban = &rows[4];
        assert!((gb(urban.compressed_raw) - 1.026).abs() < 0.01); // paper's 1.03
    }

    #[test]
    fn paper_compression_ratio_is_78_percent_reduction() {
        let m = TrafficModel::paper();
        let reduction = (1.0 - m.compression_ratio()) * 100.0;
        assert!((reduction - 78.28).abs() < 0.01);
    }

    #[test]
    fn dedup_savings_are_3_5_gb_per_day() {
        let m = TrafficModel::paper();
        assert_eq!(m.daily_dedup_savings(), 8_583_503_168 - 5_036_071_584);
    }

    #[test]
    fn custom_ratio_scales_fig7() {
        let half = TrafficModel::new(Catalog::barcelona(), 0.5);
        let rows = half.fig7_rows();
        assert_eq!(rows[0].compressed_raw, rows[0].raw / 2);
    }

    #[test]
    #[should_panic(expected = "compression ratio")]
    fn zero_ratio_rejected() {
        TrafficModel::new(Catalog::barcelona(), 0.0);
    }
}
