//! Flush and retention policies (§IV.B): "the smart city business model can
//! decide the amount of temporal data that can be stored at this level, as
//! well as the frequency of updating to upper levels", and §IV.D:
//! "adjusting the frequency of the data transmission in order to use the
//! network in periods when the traffic load is low."

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

const DAY_S: u64 = 86_400;

/// When and how a node ships data to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushPolicy {
    /// Seconds between flushes.
    pub period_s: u64,
    /// Apply redundant-data elimination before shipping (fog 1).
    pub aggregate: bool,
    /// Compress the shipped batch (fog 1, §V.B).
    pub compress: bool,
    /// If set, flushes are deferred into this daily window
    /// `[start_s, end_s)` (seconds since midnight) — the off-peak
    /// scheduling optimization of §IV.D.
    pub off_peak_window: Option<(u64, u64)>,
}

impl FlushPolicy {
    /// The paper's fog-1 policy in the traffic experiment: 15-minute
    /// flushes with aggregation and compression.
    pub fn paper_fog1() -> Self {
        Self {
            period_s: 900,
            aggregate: true,
            compress: true,
            off_peak_window: None,
        }
    }

    /// The fog-2 relay policy of the default deployment: hourly flushes,
    /// no re-aggregation (fog 1 already deduplicated), but the shipment
    /// rides the same time-series codec as the first hop — the
    /// fog-2 → cloud uplink is the widest-fan-in link in the hierarchy,
    /// so encoding it pays at least as much as at fog 1.
    pub fn paper_fog2() -> Self {
        Self {
            period_s: 3600,
            aggregate: false,
            compress: true,
            off_peak_window: None,
        }
    }

    /// A plain periodic policy without optimizations (fog 2 / baseline).
    pub fn plain(period_s: u64) -> Self {
        Self {
            period_s,
            aggregate: false,
            compress: false,
            off_peak_window: None,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// * [`Error::ZeroFlushPeriod`] on a zero period,
    /// * [`Error::BadOffPeakWindow`] if the window is empty or exceeds a day.
    pub fn validated(self) -> Result<Self> {
        if self.period_s == 0 {
            return Err(Error::ZeroFlushPeriod);
        }
        if let Some((start, end)) = self.off_peak_window {
            if start >= end || end > DAY_S {
                return Err(Error::BadOffPeakWindow {
                    start_s: start,
                    end_s: end,
                });
            }
        }
        Ok(self)
    }

    /// The next instant at or after `now_s` when a flush may run: the next
    /// period boundary, deferred into the off-peak window if one is set.
    pub fn next_flush_at(&self, now_s: u64) -> u64 {
        let next_period = now_s + self.period_s - now_s % self.period_s;
        match self.off_peak_window {
            None => next_period,
            Some((start, end)) => {
                let tod = next_period % DAY_S;
                if tod >= start && tod < end {
                    next_period
                } else {
                    // Defer to the next window opening.
                    let day_base = next_period - tod;
                    if tod < start {
                        day_base + start
                    } else {
                        day_base + DAY_S + start
                    }
                }
            }
        }
    }
}

/// How long a layer retains data locally before eviction (§IV.B: temporary
/// at the fog layers, permanent at the cloud).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Seconds of data kept locally; `None` = permanent (cloud).
    pub keep_s: Option<u64>,
}

impl RetentionPolicy {
    /// Keep `keep_s` seconds of history.
    pub fn keep(keep_s: u64) -> Self {
        Self {
            keep_s: Some(keep_s),
        }
    }

    /// Keep everything forever.
    pub fn permanent() -> Self {
        Self { keep_s: None }
    }

    /// The oldest creation time worth keeping at time `now_s`, or `None`
    /// when everything is kept.
    pub fn eviction_deadline(&self, now_s: u64) -> Option<u64> {
        self.keep_s.map(|k| now_s.saturating_sub(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_degenerate_policies() {
        assert!(matches!(
            FlushPolicy::plain(0).validated(),
            Err(Error::ZeroFlushPeriod)
        ));
        let mut p = FlushPolicy::plain(60);
        p.off_peak_window = Some((10, 10));
        assert!(p.validated().is_err());
        p.off_peak_window = Some((100, DAY_S + 1));
        assert!(p.validated().is_err());
        assert!(FlushPolicy::paper_fog1().validated().is_ok());
    }

    #[test]
    fn next_flush_lands_on_period_boundaries() {
        let p = FlushPolicy::plain(900);
        assert_eq!(p.next_flush_at(0), 900);
        assert_eq!(p.next_flush_at(899), 900);
        assert_eq!(p.next_flush_at(900), 1800);
        assert_eq!(p.next_flush_at(901), 1800);
    }

    #[test]
    fn off_peak_defers_into_window() {
        // Window 02:00–05:00.
        let mut p = FlushPolicy::plain(3600);
        p.off_peak_window = Some((7_200, 18_000));
        // A flush due at 01:00 defers to 02:00.
        assert_eq!(p.next_flush_at(0), 7_200);
        // A flush due inside the window runs on schedule.
        assert_eq!(p.next_flush_at(7_200), 10_800);
        // A flush due at 06:00 defers to 02:00 next day.
        assert_eq!(p.next_flush_at(20_000), DAY_S + 7_200);
    }

    #[test]
    fn retention_deadlines() {
        assert_eq!(
            RetentionPolicy::keep(3600).eviction_deadline(10_000),
            Some(6_400)
        );
        assert_eq!(RetentionPolicy::keep(3600).eviction_deadline(100), Some(0));
        assert_eq!(RetentionPolicy::permanent().eviction_deadline(10_000), None);
    }
}
