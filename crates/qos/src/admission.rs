//! The class-aware admission ledger.
//!
//! [`ClassLedger`] replaces a flat per-layer in-flight counter with one
//! counter per `(layer, class)` pair and enforces the quota algebra of
//! [`crate::QosPolicy`]:
//!
//! * **cap** — the sum of all classes' in-flight slots at a layer never
//!   exceeds the layer cap,
//! * **guarantee** — capacity reserved per class; an admission is only
//!   granted if the layer's free slots still cover every *other* class's
//!   unmet guarantee afterwards, so a class operating inside its
//!   guarantee can never be starved by another class's borrowing,
//! * **borrow cap** — slots a class holds beyond its guarantee come out
//!   of the shared headroom, bounded per class; lower-priority classes
//!   get smaller borrow caps, so they run dry (and shed) first.
//!
//! Multi-layer requests (a scatter-gather fan-out holds one slot per leg
//! at each leg's layer) acquire layer by layer; on the first refusal the
//! already-acquired layers are rolled back, so a shed can never leak
//! partially-acquired slots.

use f2c_core::Layer;

use crate::class::{ServiceClass, CLASS_COUNT};
use crate::policy::QosPolicy;

/// Why admission control rejected a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The class's quota at the shed layer was exhausted (guarantee used
    /// up and no borrowable headroom left).
    Capacity,
    /// The cheapest provably-complete route's transport estimate already
    /// exceeds the class's deadline budget; executing it would waste
    /// capacity on an answer that misses its SLO.
    Deadline,
    /// An injected fault made the planned route unserveable: the source
    /// node is inside a crash window, its path crosses a link outage, or
    /// the transfer was lost in transit. Degradation by availability —
    /// the query is rerouted when a fallback fits the deadline budget,
    /// shed otherwise, never answered incompletely without saying so.
    Fault,
}

impl ShedCause {
    /// Short label for transcripts.
    pub fn label(self) -> &'static str {
        match self {
            ShedCause::Capacity => "capacity",
            ShedCause::Deadline => "deadline",
            ShedCause::Fault => "fault",
        }
    }
}

/// Per-`(layer, class)` in-flight accounting with guaranteed shares and
/// bounded borrowing. See the module docs for the invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassLedger {
    caps: [u32; 3],
    guarantee: [[u32; CLASS_COUNT]; 3],
    borrow_cap: [[u32; CLASS_COUNT]; 3],
    in_flight: [[u32; CLASS_COUNT]; 3],
    /// Warm-sketch reads per (layer, class) since the last charged slot;
    /// every `sketch_divisor`-th read pays.
    sketch_credit: [[u32; CLASS_COUNT]; 3],
    sketch_divisor: u32,
}

impl ClassLedger {
    /// A ledger enforcing `policy` under the given per-layer caps.
    ///
    /// Guaranteed shares are `cap × pct / 100` rounded down; if a policy
    /// over-reserves a layer (guarantees summing past its cap) the
    /// shares are trimmed in **ascending priority** order, so the
    /// highest-priority classes keep their full reservation. Borrow caps
    /// are the class's share of the remaining headroom, rounded *up*:
    /// any class with a positive borrow right can use at least one
    /// headroom slot when the layer has headroom at all.
    pub fn new(caps: [u32; 3], policy: &QosPolicy) -> Self {
        let mut guarantee = [[0u32; CLASS_COUNT]; 3];
        let mut borrow_cap = [[0u32; CLASS_COUNT]; 3];
        for layer in Layer::ALL {
            let l = layer.index();
            let cap = caps[l];
            let mut remaining = cap;
            // Highest priority first: trimming (if any) hits the low end.
            for class in ServiceClass::ALL {
                let pct = u32::from(policy.class(class).guarantee_pct[l]);
                let share = (u64::from(cap) * u64::from(pct) / 100) as u32;
                let granted = share.min(remaining);
                guarantee[l][class.index()] = granted;
                remaining -= granted;
            }
            let headroom = remaining;
            for class in ServiceClass::ALL {
                let pct = u64::from(policy.class(class).borrow_pct);
                borrow_cap[l][class.index()] = ((u64::from(headroom) * pct).div_ceil(100)) as u32;
            }
        }
        Self {
            caps,
            guarantee,
            borrow_cap,
            in_flight: [[0; CLASS_COUNT]; 3],
            sketch_credit: [[0; CLASS_COUNT]; 3],
            sketch_divisor: policy.sketch_divisor(),
        }
    }

    /// The layer caps the ledger was built with.
    pub fn caps(&self) -> [u32; 3] {
        self.caps
    }

    /// The guaranteed share of `class` at `layer`.
    pub fn guarantee(&self, layer: Layer, class: ServiceClass) -> u32 {
        self.guarantee[layer.index()][class.index()]
    }

    /// The borrow cap of `class` at `layer` (slots beyond the guarantee).
    pub fn borrow_cap(&self, layer: Layer, class: ServiceClass) -> u32 {
        self.borrow_cap[layer.index()][class.index()]
    }

    /// In-flight slots `class` holds at `layer`.
    pub fn class_in_flight(&self, layer: Layer, class: ServiceClass) -> u32 {
        self.in_flight[layer.index()][class.index()]
    }

    /// Total in-flight slots at `layer`, all classes.
    pub fn layer_total(&self, layer: Layer) -> u32 {
        self.in_flight[layer.index()].iter().sum()
    }

    /// Slots `class` currently holds beyond its guarantee at `layer`.
    pub fn borrowed(&self, layer: Layer, class: ServiceClass) -> u32 {
        let l = layer.index();
        self.in_flight[l][class.index()].saturating_sub(self.guarantee[l][class.index()])
    }

    /// Whether `want` slots for `class` would be admitted at `layer`
    /// right now (no state change).
    pub fn would_admit(&self, layer: Layer, class: ServiceClass, want: u32) -> bool {
        if want == 0 {
            return true;
        }
        let l = layer.index();
        let c = class.index();
        let total: u32 = self.in_flight[l].iter().sum();
        let free = self.caps[l].saturating_sub(total);
        // Every *other* class's unmet guarantee stays reserved.
        let reserved_for_others: u32 = (0..CLASS_COUNT)
            .filter(|&o| o != c)
            .map(|o| self.guarantee[l][o].saturating_sub(self.in_flight[l][o]))
            .sum();
        if want > free.saturating_sub(reserved_for_others) {
            return false;
        }
        // Slots beyond the guarantee come out of the bounded borrow
        // budget.
        let borrowed_after = (self.in_flight[l][c] + want).saturating_sub(self.guarantee[l][c]);
        borrowed_after <= self.borrow_cap[l][c]
    }

    /// Atomically acquires `want[layer]` slots for `class` at every
    /// layer, or acquires nothing.
    ///
    /// # Errors
    ///
    /// The first layer (edge upward) whose quota refuses the request;
    /// slots acquired at earlier layers are rolled back before
    /// returning, so a refusal never leaks in-flight accounting.
    pub fn try_acquire(&mut self, class: ServiceClass, want: [u32; 3]) -> Result<(), Layer> {
        for (i, layer) in Layer::ALL.into_iter().enumerate() {
            if self.would_admit(layer, class, want[i]) {
                self.in_flight[i][class.index()] += want[i];
            } else {
                // Roll back the layers below the refusal.
                for (j, &granted) in want.iter().enumerate().take(i) {
                    self.in_flight[j][class.index()] -= granted;
                }
                return Err(layer);
            }
        }
        Ok(())
    }

    /// Admits one **warm-sketch** read of `class` at `layer` at the
    /// policy's reduced cost: a sketch answer merges a handful of
    /// constant-size pre-folded partials instead of scanning an archive,
    /// so only every `sketch_divisor`-th read charges a real slot (a
    /// divisor of 0 makes them admission-exempt, like cache hits).
    /// Returns the slots actually charged — pass them to
    /// [`ClassLedger::release`] when the response completes.
    ///
    /// # Errors
    ///
    /// The refusing layer, when the read falls on a paying turn and the
    /// class's quota is exhausted. The paying turn is *retained*: the
    /// next sketch read of the class must pay before any more ride free,
    /// so sustained sketch load can never exceed `1/divisor` of the
    /// slots an equal raw load would hold.
    pub fn try_acquire_sketch(
        &mut self,
        class: ServiceClass,
        layer: Layer,
    ) -> Result<[u32; 3], Layer> {
        if self.sketch_divisor == 0 {
            return Ok([0; 3]);
        }
        let credit = &mut self.sketch_credit[layer.index()][class.index()];
        *credit += 1;
        if *credit < self.sketch_divisor {
            return Ok([0; 3]);
        }
        let mut want = [0; 3];
        want[layer.index()] = 1;
        match self.try_acquire(class, want) {
            Ok(()) => {
                self.sketch_credit[layer.index()][class.index()] = 0;
                Ok(want)
            }
            Err(refused) => {
                // Keep the turn due: the class pays on its next attempt.
                self.sketch_credit[layer.index()][class.index()] = self.sketch_divisor;
                Err(refused)
            }
        }
    }

    /// Releases previously acquired slots. Saturating: releasing more
    /// than is in flight clamps at zero rather than wrapping capacity
    /// open — and debug builds assert, so a double-release surfaces in
    /// tests instead of silently corrupting the accounting.
    pub fn release(&mut self, class: ServiceClass, held: [u32; 3]) {
        for (i, &count) in held.iter().enumerate() {
            let c = &mut self.in_flight[i][class.index()];
            debug_assert!(
                *c >= count,
                "double release: {count} {class} slots given back at layer {i} \
                 with only {c} in flight"
            );
            *c = c.saturating_sub(count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ClassPolicy;
    use citysim::time::Duration;

    /// 10-slot layers: RT guarantees 4, Dashboard 2, Analytics 1;
    /// headroom 3. Analytics may borrow at most 1 headroom slot,
    /// Dashboard 2, RealTime all 3.
    fn small_policy() -> QosPolicy {
        let mut per_class = [ClassPolicy {
            guarantee_pct: [0; 3],
            borrow_pct: 0,
            deadline: Duration::from_secs(1),
        }; CLASS_COUNT];
        per_class[ServiceClass::RealTime.index()].guarantee_pct = [40; 3];
        per_class[ServiceClass::RealTime.index()].borrow_pct = 100;
        per_class[ServiceClass::Dashboard.index()].guarantee_pct = [20; 3];
        per_class[ServiceClass::Dashboard.index()].borrow_pct = 50;
        per_class[ServiceClass::Analytics.index()].guarantee_pct = [10; 3];
        per_class[ServiceClass::Analytics.index()].borrow_pct = 10;
        QosPolicy::new(per_class)
    }

    fn ledger() -> ClassLedger {
        ClassLedger::new([10, 10, 10], &small_policy())
    }

    fn fog1(n: u32) -> [u32; 3] {
        [n, 0, 0]
    }

    #[test]
    fn shares_and_borrow_caps_derive_from_the_policy() {
        let l = ledger();
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::RealTime), 4);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::Dashboard), 2);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::Analytics), 1);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::CityWide), 0);
        // Headroom 3: RT borrows all of it, Dashboard half (2), and
        // Analytics' 10% rounds *up* to one usable slot.
        assert_eq!(l.borrow_cap(Layer::Fog1, ServiceClass::RealTime), 3);
        assert_eq!(l.borrow_cap(Layer::Fog1, ServiceClass::Dashboard), 2);
        assert_eq!(l.borrow_cap(Layer::Fog1, ServiceClass::Analytics), 1);
    }

    #[test]
    fn analytics_borrowing_cannot_starve_a_realtime_guarantee() {
        let mut l = ledger();
        // Analytics takes its guarantee plus its whole borrow budget.
        assert!(l.try_acquire(ServiceClass::Analytics, fog1(2)).is_ok());
        assert_eq!(l.borrowed(Layer::Fog1, ServiceClass::Analytics), 1);
        assert!(
            l.try_acquire(ServiceClass::Analytics, fog1(1)).is_err(),
            "borrow cap reached: analytics sheds next"
        );
        // Real-time still gets every one of its guaranteed slots.
        for _ in 0..4 {
            assert!(l.try_acquire(ServiceClass::RealTime, fog1(1)).is_ok());
        }
        assert_eq!(l.class_in_flight(Layer::Fog1, ServiceClass::RealTime), 4);
    }

    #[test]
    fn borrowing_stops_where_unmet_guarantees_begin() {
        let mut l = ledger();
        // RealTime may use its guarantee (4) plus all headroom (3), but
        // never the 3 slots backing the other classes' guarantees.
        assert!(l.try_acquire(ServiceClass::RealTime, fog1(7)).is_ok());
        assert!(l.try_acquire(ServiceClass::RealTime, fog1(1)).is_err());
        // Those reserved slots are still there for their owners.
        assert!(l.try_acquire(ServiceClass::Dashboard, fog1(2)).is_ok());
        assert!(l.try_acquire(ServiceClass::Analytics, fog1(1)).is_ok());
        assert_eq!(l.layer_total(Layer::Fog1), 10);
    }

    #[test]
    fn refused_multi_layer_acquisition_rolls_back_earlier_layers() {
        let mut l = ledger();
        // Saturate fog 2 for analytics (guarantee 1 + borrow 1).
        assert!(l.try_acquire(ServiceClass::Analytics, [0, 2, 0]).is_ok());
        // A fan-out wanting fog-1 *and* fog-2 slots: fog 1 admits, fog 2
        // refuses — the fog-1 slot must not leak.
        assert_eq!(
            l.try_acquire(ServiceClass::Analytics, [2, 1, 0]),
            Err(Layer::Fog2)
        );
        assert_eq!(l.class_in_flight(Layer::Fog1, ServiceClass::Analytics), 0);
        assert_eq!(l.class_in_flight(Layer::Fog2, ServiceClass::Analytics), 2);
        assert_eq!(l.layer_total(Layer::Fog1), 0);
    }

    #[test]
    fn release_restores_capacity() {
        let mut l = ledger();
        assert!(l.try_acquire(ServiceClass::Dashboard, [4, 1, 0]).is_ok());
        l.release(ServiceClass::Dashboard, [4, 1, 0]);
        assert_eq!(l.layer_total(Layer::Fog1), 0);
        assert_eq!(l.layer_total(Layer::Fog2), 0);
        assert!(l.try_acquire(ServiceClass::Dashboard, [4, 1, 0]).is_ok());
    }

    #[test]
    fn over_reserved_policies_trim_low_priority_guarantees() {
        let mut per_class = [ClassPolicy {
            guarantee_pct: [60; 3],
            borrow_pct: 0,
            deadline: Duration::from_secs(1),
        }; CLASS_COUNT];
        // 4 × 60% = 240% reserved: only the two highest-priority classes
        // fit their full share in a 10-slot layer.
        per_class[ServiceClass::Analytics.index()].guarantee_pct = [60; 3];
        let l = ClassLedger::new([10, 10, 10], &QosPolicy::new(per_class));
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::RealTime), 6);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::Dashboard), 4);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::CityWide), 0);
        assert_eq!(l.guarantee(Layer::Fog1, ServiceClass::Analytics), 0);
    }

    #[test]
    fn sketch_reads_charge_one_slot_per_divisor() {
        // Default divisor 4: three reads ride free, the fourth pays.
        let mut l = ClassLedger::new([10, 10, 10], &QosPolicy::default());
        for _ in 0..3 {
            assert_eq!(
                l.try_acquire_sketch(ServiceClass::RealTime, Layer::Fog1),
                Ok([0; 3])
            );
        }
        assert_eq!(
            l.try_acquire_sketch(ServiceClass::RealTime, Layer::Fog1),
            Ok([1, 0, 0])
        );
        assert_eq!(l.class_in_flight(Layer::Fog1, ServiceClass::RealTime), 1);
        // Sustained sketch load holds 1/divisor of the equivalent raw
        // load's slots.
        for _ in 0..16 {
            if let Ok(held) = l.try_acquire_sketch(ServiceClass::RealTime, Layer::Fog1) {
                l.release(ServiceClass::RealTime, held);
            }
        }
        l.release(ServiceClass::RealTime, [1, 0, 0]);
        assert_eq!(l.layer_total(Layer::Fog1), 0);
    }

    #[test]
    fn refused_sketch_charge_stays_due() {
        // Divisor 1: every sketch read pays. Saturate analytics' quota;
        // the refused paying turn must not convert into a free ride.
        let policy = small_policy().with_sketch_divisor(1);
        let mut l = ClassLedger::new([10, 10, 10], &policy);
        assert!(l.try_acquire(ServiceClass::Analytics, fog1(2)).is_ok());
        assert_eq!(
            l.try_acquire_sketch(ServiceClass::Analytics, Layer::Fog1),
            Err(Layer::Fog1)
        );
        assert_eq!(
            l.try_acquire_sketch(ServiceClass::Analytics, Layer::Fog1),
            Err(Layer::Fog1),
            "the due charge persists across refusals"
        );
        l.release(ServiceClass::Analytics, fog1(1));
        assert_eq!(
            l.try_acquire_sketch(ServiceClass::Analytics, Layer::Fog1),
            Ok([1, 0, 0])
        );
    }

    #[test]
    fn exempt_sketch_policy_never_charges() {
        let policy = small_policy().with_sketch_divisor(0);
        let mut l = ClassLedger::new([1, 1, 1], &policy);
        for _ in 0..50 {
            assert_eq!(
                l.try_acquire_sketch(ServiceClass::Analytics, Layer::Cloud),
                Ok([0; 3])
            );
        }
        assert_eq!(l.layer_total(Layer::Cloud), 0);
    }

    #[test]
    fn zero_want_layers_are_ignored() {
        let mut l = ledger();
        assert!(l.try_acquire(ServiceClass::CityWide, [0, 0, 0]).is_ok());
        assert_eq!(l.layer_total(Layer::Fog1), 0);
    }
}
