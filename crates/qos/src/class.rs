//! The service classes of the paper's consumer taxonomy (§IV.D), with
//! the fixed priority order admission control enforces under pressure.

use std::fmt;

/// A consumer service class: live per-section reads, refreshing district
/// dashboards, long-window analytics, and city-wide situation panels.
///
/// Classes carry a fixed **priority** (see [`ServiceClass::priority`] —
/// deliberately not `Ord`, so rankings are always explicit): under
/// admission pressure the engine sheds the lowest-priority classes
/// first, and a class's *guaranteed* quota can never be consumed by
/// another class's borrowed slots — a cloud-bound analytics burst
/// cannot shed a real-time read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// District dashboards: aggregate panels over recent settled windows,
    /// plus an occasional raw feed of the user's own section.
    Dashboard,
    /// Long-window district aggregates (history since the epoch start).
    Analytics,
    /// Latest-value point reads at the user's own section.
    RealTime,
    /// City-wide aggregates (and an occasional city-wide latest-value
    /// probe) over recent settled windows — the scatter-gather workload.
    CityWide,
}

/// Number of service classes (the size of every per-class table).
pub const CLASS_COUNT: usize = 4;

impl ServiceClass {
    /// All classes, highest priority first.
    pub const ALL: [ServiceClass; CLASS_COUNT] = [
        ServiceClass::RealTime,
        ServiceClass::Dashboard,
        ServiceClass::CityWide,
        ServiceClass::Analytics,
    ];

    /// Dense index (0..[`CLASS_COUNT`]) for per-class tables (quotas,
    /// in-flight ledgers, shed counters, latency histograms).
    pub fn index(self) -> usize {
        match self {
            ServiceClass::RealTime => 0,
            ServiceClass::Dashboard => 1,
            ServiceClass::CityWide => 2,
            ServiceClass::Analytics => 3,
        }
    }

    /// Admission priority — higher sheds later. Real-time control reads
    /// outrank dashboards, which outrank city-wide panels, which outrank
    /// bulk analytics.
    pub fn priority(self) -> u8 {
        match self {
            ServiceClass::RealTime => 3,
            ServiceClass::Dashboard => 2,
            ServiceClass::CityWide => 1,
            ServiceClass::Analytics => 0,
        }
    }

    /// Short label for tables and transcripts.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::RealTime => "realtime",
            ServiceClass::Dashboard => "dashboard",
            ServiceClass::CityWide => "citywide",
            ServiceClass::Analytics => "analytics",
        }
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; CLASS_COUNT];
        for class in ServiceClass::ALL {
            assert!(!seen[class.index()], "duplicate index for {class}");
            seen[class.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn all_is_ordered_by_descending_priority() {
        for pair in ServiceClass::ALL.windows(2) {
            assert!(pair[0].priority() > pair[1].priority());
        }
        assert_eq!(ServiceClass::ALL[0], ServiceClass::RealTime);
        assert_eq!(
            ServiceClass::ALL[CLASS_COUNT - 1],
            ServiceClass::Analytics,
            "bulk analytics sheds first"
        );
    }
}
