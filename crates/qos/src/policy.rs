//! Per-class admission policy: weighted layer quotas and deadline
//! budgets.
//!
//! Each class is assigned, **per layer**, a *guaranteed* share of the
//! layer's in-flight cap (expressed in percent so one policy scales with
//! any cap) plus the right to *borrow* from the layer's unreserved
//! headroom. Guarantees reserve capacity — no other class's borrowing
//! can consume them — while borrow limits shrink with priority, so under
//! pressure the lowest-priority class runs out of borrowable slots (and
//! sheds) first.
//!
//! The deadline budget is the class's end-to-end latency SLO. The query
//! engine compares it against the planned route's transport estimate
//! *before* occupying any slot: a query that cannot meet its budget even
//! at the cheapest provably-complete source is shed at plan time instead
//! of wasting capacity, and a query whose cheapest route is saturated may
//! be rerouted to a pricier fallback only while that fallback still fits
//! the budget.

use citysim::time::Duration;
use f2c_core::Layer;

use crate::class::{ServiceClass, CLASS_COUNT};

/// Admission and latency policy for one service class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassPolicy {
    /// Guaranteed share of each layer's cap, in percent (fog 1, fog 2,
    /// cloud). Reserved: other classes can never borrow into it.
    pub guarantee_pct: [u8; 3],
    /// Share of the layer's *headroom* (cap minus all guarantees) this
    /// class may additionally hold, in percent. Rounded up, so any
    /// class with a positive share can borrow at least one slot when
    /// headroom exists at all.
    pub borrow_pct: u8,
    /// End-to-end latency budget (the class SLO). Routes whose transport
    /// estimate exceeds it are shed at plan time; answered queries are
    /// scored against it for SLO attainment.
    pub deadline: Duration,
}

/// How many warm-sketch reads charge one archive-scan slot.
///
/// A warm-sketch answer merges a handful of constant-size pre-folded
/// partials — roughly a quarter of the work of the archive scan a raw
/// slot models — so by default four sketch reads cost one slot.
pub const DEFAULT_SKETCH_DIVISOR: u32 = 4;

/// The full per-class policy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPolicy {
    per_class: [ClassPolicy; CLASS_COUNT],
    sketch_divisor: u32,
}

impl QosPolicy {
    /// A policy from one entry per class, indexed by
    /// [`ServiceClass::index`], admitting warm-sketch reads at the
    /// default reduced cost ([`DEFAULT_SKETCH_DIVISOR`]).
    pub fn new(per_class: [ClassPolicy; CLASS_COUNT]) -> Self {
        Self {
            per_class,
            sketch_divisor: DEFAULT_SKETCH_DIVISOR,
        }
    }

    /// Sets the warm-sketch admission divisor: every `divisor`-th
    /// sketch read of a class charges one slot at the serving layer
    /// (`1` = sketch reads cost as much as raw scans, `0` = sketch
    /// reads are admission-exempt like cache hits).
    pub fn with_sketch_divisor(mut self, divisor: u32) -> Self {
        self.sketch_divisor = divisor;
        self
    }

    /// The warm-sketch admission divisor (see
    /// [`QosPolicy::with_sketch_divisor`]).
    pub fn sketch_divisor(&self) -> u32 {
        self.sketch_divisor
    }

    /// The policy of one class.
    pub fn class(&self, class: ServiceClass) -> &ClassPolicy {
        &self.per_class[class.index()]
    }

    /// The deadline budget of one class.
    pub fn deadline(&self, class: ServiceClass) -> Duration {
        self.per_class[class.index()].deadline
    }

    /// Sum of guaranteed shares at `layer`, in percent. Policies whose
    /// guarantees sum past 100% are trimmed in priority order when a
    /// ledger is built (see [`crate::ClassLedger::new`]).
    pub fn guarantee_total_pct(&self, layer: Layer) -> u32 {
        self.per_class
            .iter()
            .map(|p| u32::from(p.guarantee_pct[layer.index()]))
            .sum()
    }
}

impl Default for QosPolicy {
    /// The default smart-city policy.
    ///
    /// Guarantees concentrate each class where its traffic lives —
    /// real-time reads at fog 1, dashboards and city-wide fan-outs at
    /// fog 2, analytics at the cloud — and leave 25–45% of every layer
    /// as borrowable headroom. Borrow rights shrink with priority so
    /// analytics saturates (and sheds) first. Deadlines follow the
    /// default latency profile: a real-time read must stay under the
    /// metro-area round trips (the ~70 ms WAN trip busts it), dashboards
    /// and city-wide panels tolerate fan-out latency, analytics is
    /// budgeted for cloud scans.
    fn default() -> Self {
        let mut per_class = [ClassPolicy {
            guarantee_pct: [0; 3],
            borrow_pct: 0,
            deadline: Duration::from_secs(60),
        }; CLASS_COUNT];
        per_class[ServiceClass::RealTime.index()] = ClassPolicy {
            guarantee_pct: [40, 10, 5],
            borrow_pct: 100,
            deadline: Duration::from_millis(25),
        };
        per_class[ServiceClass::Dashboard.index()] = ClassPolicy {
            guarantee_pct: [20, 30, 10],
            borrow_pct: 75,
            deadline: Duration::from_millis(150),
        };
        per_class[ServiceClass::CityWide.index()] = ClassPolicy {
            guarantee_pct: [10, 20, 10],
            borrow_pct: 60,
            deadline: Duration::from_millis(250),
        };
        per_class[ServiceClass::Analytics.index()] = ClassPolicy {
            guarantee_pct: [5, 10, 30],
            borrow_pct: 40,
            deadline: Duration::from_secs(30),
        };
        Self {
            per_class,
            sketch_divisor: DEFAULT_SKETCH_DIVISOR,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_guarantees_leave_headroom_at_every_layer() {
        let policy = QosPolicy::default();
        for layer in Layer::ALL {
            let total = policy.guarantee_total_pct(layer);
            assert!(total <= 100, "{layer}: {total}% reserved");
            assert!(total >= 55, "{layer}: guarantees should be substantial");
        }
    }

    #[test]
    fn borrow_rights_shrink_with_priority() {
        let policy = QosPolicy::default();
        for pair in ServiceClass::ALL.windows(2) {
            assert!(
                policy.class(pair[0]).borrow_pct >= policy.class(pair[1]).borrow_pct,
                "{} must borrow at least as much headroom as {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn realtime_deadline_excludes_the_wan_trip() {
        let policy = QosPolicy::default();
        assert!(policy.deadline(ServiceClass::RealTime) < Duration::from_millis(70));
        assert!(policy.deadline(ServiceClass::Analytics) > Duration::from_secs(1));
    }
}
