//! # f2c-qos — per-service QoS classes for the F2C hierarchy
//!
//! The paper's consumers are heterogeneous (§IV.D): real-time control
//! reads, refreshing dashboards, bulk analytics and city-wide situation
//! panels all arrive at the same fog hierarchy, but they tolerate very
//! different latencies and deserve very different treatment under
//! pressure. This crate is the policy layer that encodes that:
//!
//! * [`ServiceClass`] — the four consumer classes, with a fixed
//!   priority order (real-time ≻ dashboard ≻ city-wide ≻ analytics),
//! * [`QosPolicy`] / [`ClassPolicy`] — per-class, per-layer weighted
//!   quotas (a *guaranteed* share of each layer's in-flight cap plus a
//!   bounded right to borrow from the unreserved headroom) and a
//!   per-class *deadline budget* (the latency SLO),
//! * [`ClassLedger`] — the admission ledger enforcing the quota algebra:
//!   layer totals never exceed the cap, a class inside its guarantee is
//!   never starved by another class's borrowing, and borrow caps shrink
//!   with priority so the lowest-priority class sheds first;
//!   single-source warm-sketch reads (merges of pre-folded partials, no
//!   archive scan) admit at a policy-reduced cost — one charged slot
//!   per [`QosPolicy::sketch_divisor`] reads
//!   ([`ClassLedger::try_acquire_sketch`]; fan-out legs always hold one
//!   slot each so multi-slot acquisitions stay atomic),
//! * [`ShedCause`] — why a rejected query was rejected: quota pressure
//!   ([`ShedCause::Capacity`]) or a route that cannot meet the class
//!   deadline ([`ShedCause::Deadline`]).
//!
//! The query engine (`f2c-query`) threads a [`ServiceClass`] through
//! every query and acquires class-tagged slots per scatter-gather leg;
//! the workload generator stresses the ledger with diurnal load curves
//! and per-class flash crowds.
//!
//! # Example
//!
//! ```
//! use f2c_core::Layer;
//! use f2c_qos::{ClassLedger, QosPolicy, ServiceClass};
//!
//! let mut ledger = ClassLedger::new([100, 40, 10], &QosPolicy::default());
//! // An analytics fan-out takes one fog-2 slot per leg...
//! ledger.try_acquire(ServiceClass::Analytics, [0, 4, 0]).unwrap();
//! // ...but borrowing never touches the real-time guarantee.
//! assert!(ledger.guarantee(Layer::Fog2, ServiceClass::RealTime) > 0);
//! ledger.release(ServiceClass::Analytics, [0, 4, 0]);
//! assert_eq!(ledger.layer_total(Layer::Fog2), 0);
//! ```

mod admission;
mod class;
mod policy;

pub use admission::{ClassLedger, ShedCause};
pub use class::{ServiceClass, CLASS_COUNT};
pub use policy::{ClassPolicy, QosPolicy, DEFAULT_SKETCH_DIVISOR};
