//! Quota-conservation properties of the class-aware admission ledger.
//!
//! Under arbitrary interleavings of single-slot admissions, multi-layer
//! scatter-style acquisitions and releases, the ledger must preserve:
//!
//! * **cap conservation** — the sum of all classes' in-flight slots at a
//!   layer never exceeds the layer cap,
//! * **guarantee liveness** — a class holding fewer slots than its
//!   guaranteed share is never refused one more (no starvation by
//!   borrowers),
//! * **borrow bounds** — no class ever holds more than its guarantee
//!   plus its borrow cap,
//! * **no leakage** — a refused acquisition leaves the ledger exactly as
//!   it was, and releasing everything drains every counter to zero.

use f2c_core::Layer;
use f2c_qos::{ClassLedger, QosPolicy, ServiceClass};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn check_invariants(ledger: &ClassLedger) -> Result<(), TestCaseError> {
    let caps = ledger.caps();
    for layer in Layer::ALL {
        let total = ledger.layer_total(layer);
        prop_assert!(
            total <= caps[layer.index()],
            "{}: {} in flight exceeds cap {}",
            layer,
            total,
            caps[layer.index()]
        );
        for class in ServiceClass::ALL {
            let used = ledger.class_in_flight(layer, class);
            let limit = ledger.guarantee(layer, class) + ledger.borrow_cap(layer, class);
            prop_assert!(
                used <= limit,
                "{}/{}: {} slots exceed guarantee+borrow {}",
                layer,
                class,
                used,
                limit
            );
            if used < ledger.guarantee(layer, class) {
                prop_assert!(
                    ledger.would_admit(layer, class, 1),
                    "{}/{}: refused inside its own guarantee ({} of {})",
                    layer,
                    class,
                    used,
                    ledger.guarantee(layer, class)
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interleaved_admissions_conserve_quotas(
        caps in (1u32..40, 1u32..20, 1u32..8),
        // Ops encoded as plain integers (the vendored proptest shim has
        // no prop_oneof/prop_map): `kind < 3` acquires `(w1, w2, w3)`
        // for `class`, else release the `nth` oldest acquisition.
        ops in proptest::collection::vec(
            (0u8..5, 0usize..4, 0u32..4, 0u32..4, 0u32..3, 0usize..16),
            1..120,
        ),
    ) {
        let caps = [caps.0, caps.1, caps.2];
        let mut ledger = ClassLedger::new(caps, &QosPolicy::default());
        let mut outstanding: Vec<(ServiceClass, [u32; 3])> = Vec::new();
        for (kind, class, w1, w2, w3, nth) in ops {
            if kind < 3 {
                let class = ServiceClass::ALL[class];
                let want = [w1, w2, w3];
                let before = ledger.clone();
                match ledger.try_acquire(class, want) {
                    Ok(()) => outstanding.push((class, want)),
                    Err(layer) => {
                        prop_assert_eq!(
                            &ledger, &before,
                            "refusal at {} must not change the ledger", layer
                        );
                    }
                }
            } else if !outstanding.is_empty() {
                let (class, want) = outstanding.remove(nth % outstanding.len());
                ledger.release(class, want);
            }
            check_invariants(&ledger)?;
        }
        // Draining every outstanding acquisition returns to zero.
        for (class, want) in outstanding.drain(..) {
            ledger.release(class, want);
        }
        for layer in Layer::ALL {
            prop_assert_eq!(ledger.layer_total(layer), 0, "leaked slots at {}", layer);
        }
    }

    #[test]
    fn guarantees_admit_their_full_share_from_idle(
        caps in (4u32..64, 4u32..32, 4u32..16),
    ) {
        // From an idle ledger, every class can take its whole guaranteed
        // share at once, in any (priority) order, at every layer.
        let mut ledger = ClassLedger::new([caps.0, caps.1, caps.2], &QosPolicy::default());
        for class in ServiceClass::ALL {
            let want = [
                ledger.guarantee(Layer::Fog1, class),
                ledger.guarantee(Layer::Fog2, class),
                ledger.guarantee(Layer::Cloud, class),
            ];
            prop_assert!(
                ledger.try_acquire(class, want).is_ok(),
                "{} refused its own guarantee {:?}", class, want
            );
        }
    }
}
