//! Property-based tests on DLC invariants: quality monotonicity, archive
//! query algebra, flow routing totality, removal safety.

use proptest::prelude::*;
use scc_dlc::age::AgePolicy;
use scc_dlc::flow::{DataFlow, FlowConfig};
use scc_dlc::phase::{Phase, PhaseContext};
use scc_dlc::preservation::{purge_expired, ArchiveStore, ClassificationPhase, RemovalPolicy};
use scc_dlc::quality::QualityPolicy;
use scc_dlc::DataRecord;
use scc_sensors::{Reading, SensorId, SensorType, Value};

fn record(idx: u32, t: u64, v: i64) -> DataRecord {
    DataRecord::from_reading(Reading::new(
        SensorId::new(SensorType::Temperature, idx),
        t,
        Value::Scalar(v),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quality_score_decreases_with_violations(
        v in -10_000i64..10_000,
        created in 0u64..100_000,
        collected in 0u64..100_000,
    ) {
        let policy = QualityPolicy::paper_default();
        let report = policy.assess(
            SensorType::Temperature,
            &Value::Scalar(v),
            created,
            collected,
        );
        let expected = 1.0 - 0.34 * report.violations().len() as f64;
        prop_assert!((report.score() - expected.max(0.0)).abs() < 1e-12);
        prop_assert_eq!(report.passed(), report.score() >= 0.5);
    }

    #[test]
    fn archive_range_queries_partition(
        times in proptest::collection::vec(0u64..10_000, 0..200),
        split in 0u64..10_000,
    ) {
        let mut store = ArchiveStore::new();
        for (i, &t) in times.iter().enumerate() {
            store.insert(record(i as u32, t, 0));
        }
        let below = store.query_range(0, split).unwrap().len();
        let above = store.query_range(split, u64::MAX).unwrap().len();
        prop_assert_eq!(below + above, times.len());
    }

    #[test]
    fn eviction_plus_survivors_equals_total(
        times in proptest::collection::vec(0u64..10_000, 0..200),
        deadline in 0u64..12_000,
    ) {
        let mut store = ArchiveStore::new();
        for (i, &t) in times.iter().enumerate() {
            store.insert(record(i as u32, t, 0));
        }
        let total = store.len();
        let evicted = store.evict_older_than(deadline);
        prop_assert_eq!(evicted.len() + store.len(), total);
        for r in evicted {
            prop_assert!(r.descriptor().created_s() < deadline);
        }
        for r in store.iter() {
            prop_assert!(r.descriptor().created_s() >= deadline);
        }
    }

    #[test]
    fn flow_routing_loses_nothing(
        times in proptest::collection::vec(0u64..200_000, 0..100),
        now in 0u64..200_000,
        preserve_rt in any::<bool>(),
    ) {
        let flow = DataFlow::new(FlowConfig {
            preserve_real_time: preserve_rt,
            age_policy: AgePolicy::paper_default(),
        });
        let batch: Vec<DataRecord> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| record(i as u32, t, 0))
            .collect();
        let routed = flow.route(batch.clone(), now);
        // Every record appears on at least one path; none is invented.
        let rt = routed.real_time.len();
        let ar = routed.archivable.len();
        if preserve_rt {
            prop_assert_eq!(ar, batch.len());
            prop_assert_eq!(rt + ar, batch.len() + rt);
        } else {
            prop_assert_eq!(rt + ar, batch.len());
        }
    }

    #[test]
    fn classification_sort_is_stable_under_permutation(
        times in proptest::collection::vec(0u64..1_000, 1..50),
    ) {
        let batch: Vec<DataRecord> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| record(i as u32 % 3, t, i as i64))
            .collect();
        let mut reversed = batch.clone();
        reversed.reverse();
        let mut p1 = ClassificationPhase::new();
        let mut p2 = ClassificationPhase::new();
        let a = p1.run(batch.clone(), &PhaseContext::at(0));
        let b = p2.run(reversed, &PhaseContext::at(0));
        // (1) Classification is a permutation: nothing lost or invented.
        let multiset = |recs: &[DataRecord]| {
            let mut keys: Vec<String> = recs
                .iter()
                .map(|r| scc_sensors::wire::encode(r.reading()))
                .collect();
            keys.sort();
            keys
        };
        prop_assert_eq!(multiset(&a), multiset(&batch));
        prop_assert_eq!(multiset(&a), multiset(&b));
        // (2) Both outputs are sorted by the canonical key (ties may keep
        // arbitrary relative order of identical keys).
        let key = |r: &DataRecord| {
            (
                r.sensor_type().category(),
                r.sensor_type(),
                r.descriptor().created_s(),
                r.reading().sensor(),
            )
        };
        for out in [&a, &b] {
            for w in out.windows(2) {
                prop_assert!(key(&w[0]) <= key(&w[1]));
            }
        }
    }

    #[test]
    fn removal_never_destroys_young_data(
        ages in proptest::collection::vec(0u64..100 * 86_400, 0..100),
        now in 0u64..200 * 86_400,
    ) {
        let mut store = ArchiveStore::new();
        for (i, &a) in ages.iter().enumerate() {
            let created = now.saturating_sub(a);
            let mut rec = record(i as u32, created, 0);
            rec.descriptor_mut().set_privacy(scc_dlc::PrivacyLevel::Private);
            store.insert(rec);
        }
        let policy = RemovalPolicy::paper_default();
        let report = purge_expired(&mut store, &policy, now);
        prop_assert_eq!(report.examined as usize, ages.len());
        // Everything younger than the private bound survives.
        for r in store.iter() {
            prop_assert!(now.saturating_sub(r.descriptor().created_s()) <= 30 * 86_400);
        }
        prop_assert_eq!(report.removed + store.len() as u64, ages.len() as u64);
    }
}
