//! Data quality assessment (§II: "aiming to appraise the quality level of
//! collected data"; §IV.A: "data quality can also be implemented at this
//! fog layer, assessing and guaranteeing higher data quality").
//!
//! Quality is checked once, in the acquisition block — the paper
//! explicitly notes processing and preservation need no quality phase
//! because everything reaching them was already checked.

use scc_sensors::{Category, SensorType, Value};
use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// One detected quality violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Violation {
    /// Magnitude outside the plausible range for the sensor type.
    OutOfRange,
    /// The reading's timestamp is older than the staleness limit.
    Stale,
    /// The reading's timestamp lies in the future of the collection time.
    FutureTimestamp,
    /// A composite value with the wrong number of channels.
    MalformedComposite,
}

/// Result of assessing one reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    score: f64,
    violations: Vec<Violation>,
}

impl QualityReport {
    /// A report with no violations (score 1.0).
    pub fn perfect() -> Self {
        Self {
            score: 1.0,
            violations: Vec::new(),
        }
    }

    /// Quality score in `[0, 1]`; each violation costs 0.34 so two or more
    /// violations always fail the default 0.5 acceptance threshold.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Detected violations.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether the record passed (score ≥ 0.5 by convention).
    pub fn passed(&self) -> bool {
        self.score >= 0.5
    }
}

/// Plausibility bounds and staleness limits per sensor type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityPolicy {
    /// Maximum age (collection time − creation time) before a reading is
    /// considered stale, in seconds.
    pub max_staleness_s: u64,
    /// Per-violation score penalty.
    pub penalty: f64,
}

impl QualityPolicy {
    /// The default policy: 1-hour staleness, 0.34 penalty per violation.
    pub fn paper_default() -> Self {
        Self {
            max_staleness_s: 3600,
            penalty: 0.34,
        }
    }

    /// Plausible magnitude bounds for a sensor type.
    ///
    /// These encode physical sanity (temperatures in °C, noise in dB(A),
    /// levels in %, counters non-negative) rather than Sentilo specifics.
    pub fn bounds_for(ty: SensorType) -> (f64, f64) {
        use SensorType::*;
        match ty {
            Temperature
            | ExternalAmbientConditions
            | InternalAmbientConditions
            | SolarThermalInstallation => (-30.0, 70.0),
            NoiseAmbient | NoiseTrafficZone | NoiseLeisureZone => (0.0, 150.0),
            ElectricityMeter | GasMeter => (0.0, f64::MAX),
            BicycleFlow | PeopleFlow | Traffic => (0.0, f64::MAX),
            ParkingSpot => (0.0, 1.0),
            ContainerGlass | ContainerOrganic | ContainerPaper | ContainerPlastic
            | ContainerRefuse => (0.0, 100.0),
            NetworkAnalyzer => (0.0, 1_000.0),
            AirQuality => (0.0, 1_000.0),
            Weather => (-50.0, 200.0),
        }
    }

    /// Expected composite channel count, if the type is composite.
    pub fn composite_arity(ty: SensorType) -> Option<usize> {
        use SensorType::*;
        match ty {
            NetworkAnalyzer => Some(11),
            AirQuality => Some(6),
            Weather => Some(5),
            _ => None,
        }
    }

    /// Validates policy invariants (builder-style use).
    pub fn validated(self) -> Result<Self> {
        if !(0.0..=1.0).contains(&self.penalty) {
            return Err(Error::InvertedBounds {
                min: 0.0,
                max: self.penalty,
            });
        }
        Ok(self)
    }

    /// Assesses one reading collected at `collected_s`.
    pub fn assess(
        &self,
        ty: SensorType,
        value: &Value,
        created_s: u64,
        collected_s: u64,
    ) -> QualityReport {
        let mut violations = Vec::new();
        let (lo, hi) = Self::bounds_for(ty);
        let mag = value.magnitude();
        if !(lo..=hi).contains(&mag) {
            violations.push(Violation::OutOfRange);
        }
        if let Value::Composite(fields) = value {
            if Self::composite_arity(ty).is_some_and(|n| n != fields.len()) {
                violations.push(Violation::MalformedComposite);
            }
        }
        if created_s > collected_s {
            violations.push(Violation::FutureTimestamp);
        } else if collected_s - created_s > self.max_staleness_s {
            violations.push(Violation::Stale);
        }
        let score = (1.0 - self.penalty * violations.len() as f64).max(0.0);
        QualityReport { score, violations }
    }
}

impl Default for QualityPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Convenience: the category a violation report would block from open-data
/// publication (used by dissemination tests).
pub fn is_publishable(category: Category, report: &QualityReport) -> bool {
    // All Sentilo categories are open data; publication only requires
    // passing quality.
    let _ = category;
    report.passed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_reading_scores_one() {
        let p = QualityPolicy::paper_default();
        let r = p.assess(SensorType::Temperature, &Value::from_f64(21.0), 100, 110);
        assert_eq!(r.score(), 1.0);
        assert!(r.passed());
        assert!(r.violations().is_empty());
    }

    #[test]
    fn out_of_range_detected() {
        let p = QualityPolicy::paper_default();
        let r = p.assess(SensorType::Temperature, &Value::from_f64(400.0), 0, 0);
        assert!(r.violations().contains(&Violation::OutOfRange));
        assert!(r.score() < 1.0);
        assert!(r.passed(), "one violation still passes at 0.66");
    }

    #[test]
    fn stale_and_future_timestamps_detected() {
        let p = QualityPolicy::paper_default();
        let stale = p.assess(SensorType::Weather, &Value::from_f64(10.0), 0, 10_000);
        assert!(stale.violations().contains(&Violation::Stale));
        let future = p.assess(SensorType::Weather, &Value::from_f64(10.0), 500, 100);
        assert!(future.violations().contains(&Violation::FutureTimestamp));
    }

    #[test]
    fn two_violations_fail() {
        let p = QualityPolicy::paper_default();
        let r = p.assess(
            SensorType::NoiseAmbient,
            &Value::from_f64(-10.0), // out of range
            0,
            50_000, // stale
        );
        assert_eq!(r.violations().len(), 2);
        assert!(!r.passed());
    }

    #[test]
    fn composite_arity_checked() {
        let p = QualityPolicy::paper_default();
        let bad = Value::Composite(vec![100, 200]); // weather expects 5
        let r = p.assess(SensorType::Weather, &bad, 0, 0);
        assert!(r.violations().contains(&Violation::MalformedComposite));
        let good = Value::Composite(vec![100, 200, 300, 400, 500]);
        let r = p.assess(SensorType::Weather, &good, 0, 0);
        assert!(!r.violations().contains(&Violation::MalformedComposite));
    }

    #[test]
    fn parking_flags_are_in_range() {
        let p = QualityPolicy::paper_default();
        for v in [Value::Flag(false), Value::Flag(true)] {
            assert!(p.assess(SensorType::ParkingSpot, &v, 0, 0).passed());
        }
    }

    #[test]
    fn validated_rejects_silly_penalty() {
        let p = QualityPolicy {
            max_staleness_s: 10,
            penalty: 3.0,
        };
        assert!(p.validated().is_err());
        assert!(QualityPolicy::paper_default().validated().is_ok());
    }

    #[test]
    fn score_floors_at_zero() {
        let p = QualityPolicy {
            max_staleness_s: 0,
            penalty: 0.9,
        };
        let r = p.assess(SensorType::Temperature, &Value::from_f64(999.0), 0, 100);
        assert_eq!(r.score(), 0.0);
    }
}
