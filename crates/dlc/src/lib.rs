//! The SCC-DLC model: Smart City Comprehensive Data Life-Cycle (§II,
//! Figs. 1–2 of the paper).
//!
//! The model organizes data management into three blocks of phases:
//!
//! * **Data acquisition** — [`acquisition`]: collection, filtering
//!   (aggregation), quality, description;
//! * **Data processing** — [`processing`]: process (transformation) and
//!   analysis;
//! * **Data preservation** — [`preservation`]: classification, archive,
//!   dissemination.
//!
//! Data flows (Fig. 1): acquired data is *real-time* when consumed
//! immediately, *archivable* when routed to preservation, *historical* when
//! read back from the archive for processing, and *higher-value* when
//! processing results are preserved again. [`flow::DataFlow`] implements
//! this routing; [`age::AgeClass`] implements the age characterization of
//! §II ("we characterize data according to its age").
//!
//! Phases are [`phase::Phase`] objects composed into [`pipeline::Pipeline`]s;
//! the `f2c-core` crate maps pipelines onto fog/cloud nodes per Fig. 5.
//!
//! # Quickstart
//!
//! ```
//! use scc_dlc::acquisition::AcquisitionBlock;
//! use scc_dlc::phase::PhaseContext;
//! use scc_sensors::{ReadingGenerator, SensorType};
//!
//! let mut block = AcquisitionBlock::paper_default(7 /* section id */);
//! let mut gen = ReadingGenerator::for_population(SensorType::Temperature, 20, 42);
//! let out = block.ingest(gen.wave(0), &PhaseContext::at(0));
//! assert!(!out.is_empty());
//! assert!(out.iter().all(|r| r.descriptor().section() == Some(7)));
//! ```

pub mod acquisition;
pub mod age;
pub mod cosa;
pub mod descriptor;
mod error;
pub mod flow;
pub mod phase;
pub mod pipeline;
pub mod preservation;
pub mod processing;
pub mod quality;
pub mod record;

pub use age::AgeClass;
pub use descriptor::{Descriptor, PrivacyLevel};
pub use error::{Error, Result};
pub use phase::{Block, Phase, PhaseContext, PhaseStats};
pub use pipeline::Pipeline;
pub use quality::{QualityPolicy, QualityReport};
pub use record::DataRecord;
