//! The phase abstraction: every SCC-DLC phase consumes a batch of records
//! and produces a (possibly smaller, possibly annotated) batch.

use std::fmt;

use crate::record::DataRecord;

/// The three blocks of the SCC-DLC model (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Block {
    /// Data acquisition: collection, filtering, quality, description.
    Acquisition,
    /// Data processing: process, analysis.
    Processing,
    /// Data preservation: classification, archive, dissemination.
    Preservation,
}

impl Block {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Block::Acquisition => "acquisition",
            Block::Processing => "processing",
            Block::Preservation => "preservation",
        }
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ambient information a phase may need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseContext {
    /// Current time, seconds (collection/flush time at the hosting node).
    pub now_s: u64,
}

impl PhaseContext {
    /// A context at time `now_s`.
    pub fn at(now_s: u64) -> Self {
        Self { now_s }
    }
}

/// Per-phase throughput counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Records offered to the phase.
    pub records_in: u64,
    /// Records emitted by the phase.
    pub records_out: u64,
    /// Invocations.
    pub runs: u64,
}

impl PhaseStats {
    /// Records the outcome of one run.
    pub fn record_run(&mut self, records_in: usize, records_out: usize) {
        self.records_in += records_in as u64;
        self.records_out += records_out as u64;
        self.runs += 1;
    }

    /// Fraction of records dropped across all runs.
    pub fn drop_rate(&self) -> f64 {
        if self.records_in == 0 {
            0.0
        } else {
            1.0 - self.records_out as f64 / self.records_in as f64
        }
    }
}

/// One life-cycle phase.
///
/// Implementations live in [`crate::acquisition`], [`crate::processing`]
/// and [`crate::preservation`]; [`crate::pipeline::Pipeline`] composes them
/// and enforces that a pipeline never mixes blocks.
///
/// `Send + Sync` so nodes embedding pipelines can be owned by district
/// shards on worker threads (phases hold plain configuration and
/// counters, never shared handles).
pub trait Phase: Send + Sync {
    /// Stable phase name (e.g. `"data-filtering"`).
    fn name(&self) -> &'static str;

    /// Which block the phase belongs to.
    fn block(&self) -> Block;

    /// Processes one batch.
    fn run(&mut self, batch: Vec<DataRecord>, ctx: &PhaseContext) -> Vec<DataRecord>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_names_are_stable() {
        assert_eq!(Block::Acquisition.name(), "acquisition");
        assert_eq!(Block::Processing.to_string(), "processing");
        assert_eq!(Block::Preservation.name(), "preservation");
    }

    #[test]
    fn stats_accumulate() {
        let mut s = PhaseStats::default();
        s.record_run(10, 6);
        s.record_run(10, 8);
        assert_eq!(s.records_in, 20);
        assert_eq!(s.records_out, 14);
        assert_eq!(s.runs, 2);
        assert!((s.drop_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_drop_nothing() {
        assert_eq!(PhaseStats::default().drop_rate(), 0.0);
    }
}
