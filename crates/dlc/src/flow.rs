//! The Fig. 1 data flow: acquisition output splits into *real-time* data
//! (consumed immediately by processing) and *archivable* data (routed to
//! preservation); archived data read back for processing is *historical*;
//! processing results stored again are *higher-value* data. The two
//! forward flows "are not exclusive" — a record may take both.

use crate::age::{AgeClass, AgePolicy};
use crate::record::DataRecord;

/// Routing decision for one acquisition batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutedBatch {
    /// Records offered to processing right away (real-time path).
    pub real_time: Vec<DataRecord>,
    /// Records routed to preservation (archivable path).
    pub archivable: Vec<DataRecord>,
}

/// Configuration of the forward split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowConfig {
    /// Preserve real-time records too (the non-exclusive flows of Fig. 1).
    pub preserve_real_time: bool,
    /// Age policy used to decide what still counts as real-time.
    pub age_policy: AgePolicy,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            preserve_real_time: true,
            age_policy: AgePolicy::paper_default(),
        }
    }
}

/// Routes batches along the Fig. 1 flows.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataFlow {
    config: FlowConfig,
}

impl DataFlow {
    /// A router with `config`.
    pub fn new(config: FlowConfig) -> Self {
        Self { config }
    }

    /// Splits an acquisition batch at time `now_s`.
    ///
    /// Real-time-aged records go to the real-time path (and, if configured,
    /// also to preservation); everything older goes to preservation only.
    pub fn route(&self, batch: Vec<DataRecord>, now_s: u64) -> RoutedBatch {
        let mut out = RoutedBatch::default();
        for rec in batch {
            let class = rec.age_class(now_s, &self.config.age_policy);
            if class == AgeClass::RealTime {
                if self.config.preserve_real_time {
                    out.archivable.push(rec.clone());
                }
                out.real_time.push(rec);
            } else {
                out.archivable.push(rec);
            }
        }
        out
    }

    /// Tags a processing result as higher-value data ready for
    /// preservation: stamps the modification time so provenance shows it
    /// was derived, not sensed.
    pub fn to_higher_value(&self, mut record: DataRecord, now_s: u64) -> DataRecord {
        record.descriptor_mut().stamp_modified(now_s);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(t: u64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Traffic, 0),
            t,
            Value::Counter(1),
        ))
    }

    #[test]
    fn fresh_records_take_both_paths_by_default() {
        let flow = DataFlow::default();
        let routed = flow.route(vec![rec(1000)], 1010);
        assert_eq!(routed.real_time.len(), 1);
        assert_eq!(routed.archivable.len(), 1);
    }

    #[test]
    fn old_records_are_archivable_only() {
        let flow = DataFlow::default();
        let routed = flow.route(vec![rec(0)], 100_000);
        assert!(routed.real_time.is_empty());
        assert_eq!(routed.archivable.len(), 1);
    }

    #[test]
    fn exclusive_mode_keeps_paths_disjoint() {
        let flow = DataFlow::new(FlowConfig {
            preserve_real_time: false,
            age_policy: AgePolicy::paper_default(),
        });
        let routed = flow.route(vec![rec(1000), rec(0)], 1010);
        assert_eq!(routed.real_time.len(), 1);
        assert_eq!(routed.archivable.len(), 1);
    }

    #[test]
    fn higher_value_records_carry_modification_stamp() {
        let flow = DataFlow::default();
        let hv = flow.to_higher_value(rec(50), 777);
        assert_eq!(hv.descriptor().modified_s(), Some(777));
    }

    #[test]
    fn mixed_batch_splits_correctly() {
        let flow = DataFlow::default();
        let batch: Vec<DataRecord> = (0..10).map(|i| rec(i * 200)).collect();
        let routed = flow.route(batch, 1800);
        // Real-time band is < 900s old: records with t in (900, 1800].
        assert_eq!(routed.real_time.len(), 5); // t=1000,1200,1400,1600,1800
        assert_eq!(routed.archivable.len(), 10);
    }
}
