//! Data age characterization (§II): "we characterize data according to its
//! age, ranging from real-time to historical data".

use serde::{Deserialize, Serialize};

/// Age class of a piece of data at some observation instant.
///
/// The thresholds are a deployment policy ([`AgePolicy`]); the paper fixes
/// only the ordering: real-time data is just-generated and consumed near
/// its fog-1 node, historical data has accumulated in storage (presumably
/// at higher layers), with a recent band in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AgeClass {
    /// Just generated; candidates for critical low-latency consumption.
    RealTime,
    /// No longer real-time but typically still at a fog layer.
    Recent,
    /// Accumulated/archived data, typically at the cloud.
    Historical,
}

/// Thresholds that map an age in seconds to an [`AgeClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgePolicy {
    /// Ages strictly below this are [`AgeClass::RealTime`].
    pub realtime_below_s: u64,
    /// Ages strictly below this (and not real-time) are [`AgeClass::Recent`].
    pub recent_below_s: u64,
}

impl AgePolicy {
    /// A policy matching the flush cadences used in the experiments:
    /// real-time < 15 min (one fog-1 collection period), recent < 24 h
    /// (fog-2 residency), historical beyond.
    pub fn paper_default() -> Self {
        Self {
            realtime_below_s: 900,
            recent_below_s: 86_400,
        }
    }

    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `realtime_below_s > recent_below_s`.
    pub fn new(realtime_below_s: u64, recent_below_s: u64) -> Self {
        assert!(
            realtime_below_s <= recent_below_s,
            "real-time band must not exceed recent band"
        );
        Self {
            realtime_below_s,
            recent_below_s,
        }
    }

    /// Classifies an age in seconds.
    pub fn classify(&self, age_s: u64) -> AgeClass {
        if age_s < self.realtime_below_s {
            AgeClass::RealTime
        } else if age_s < self.recent_below_s {
            AgeClass::Recent
        } else {
            AgeClass::Historical
        }
    }
}

impl Default for AgePolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_bands() {
        let p = AgePolicy::paper_default();
        assert_eq!(p.classify(0), AgeClass::RealTime);
        assert_eq!(p.classify(899), AgeClass::RealTime);
        assert_eq!(p.classify(900), AgeClass::Recent);
        assert_eq!(p.classify(86_399), AgeClass::Recent);
        assert_eq!(p.classify(86_400), AgeClass::Historical);
        assert_eq!(p.classify(u64::MAX), AgeClass::Historical);
    }

    #[test]
    fn age_classes_are_ordered() {
        assert!(AgeClass::RealTime < AgeClass::Recent);
        assert!(AgeClass::Recent < AgeClass::Historical);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_policy_panics() {
        AgePolicy::new(100, 10);
    }

    #[test]
    fn degenerate_bands_allowed() {
        // A policy with no recent band: everything non-realtime is historical.
        let p = AgePolicy::new(60, 60);
        assert_eq!(p.classify(59), AgeClass::RealTime);
        assert_eq!(p.classify(60), AgeClass::Historical);
    }
}
