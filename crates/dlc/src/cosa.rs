//! The COSA-DLC model (§II): the *Comprehensive Scenario-Agnostic* data
//! life-cycle the authors proposed in \[9\], from which the SCC-DLC used in
//! this paper was instantiated. COSA's claim is twofold: **comprehensive**
//! — the model addresses all "6 Vs" of big-data management — and
//! **scenario-agnostic** — any scenario instantiates the same three
//! blocks with its own phases.
//!
//! This module encodes that claim checkably: an instantiation declares
//! which Vs each of its phases addresses, and [`Instantiation::verify`]
//! confirms the 6V coverage and block structure. [`scc_instantiation`] is
//! the smart-city instantiation of Fig. 2, and its comprehensiveness is a
//! unit-tested fact rather than prose.

use std::collections::BTreeSet;

use crate::phase::Block;

/// The six challenges ("6 Vs") of big-data management the COSA-DLC model
/// is designed around (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SixV {
    /// Extracting value from data (analysis, dissemination).
    Value,
    /// Handling data volume (aggregation, compression, tiering).
    Volume,
    /// Handling data variety (classification, description).
    Variety,
    /// Handling data velocity (real-time collection and consumption).
    Velocity,
    /// Handling variability over time (windows, retention, removal).
    Variability,
    /// Ensuring veracity (quality assessment, lineage).
    Veracity,
}

impl SixV {
    /// All six challenges.
    pub const ALL: [SixV; 6] = [
        SixV::Value,
        SixV::Volume,
        SixV::Variety,
        SixV::Velocity,
        SixV::Variability,
        SixV::Veracity,
    ];
}

/// One phase of an instantiation: its name, block, and the Vs it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseDecl {
    /// Phase name (matches the `Phase::name` of the implementation).
    pub name: &'static str,
    /// Which block it belongs to.
    pub block: Block,
    /// The challenges this phase addresses.
    pub addresses: &'static [SixV],
}

/// A scenario instantiation of the COSA-DLC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instantiation {
    /// Scenario name (e.g. "smart city").
    pub scenario: &'static str,
    /// Declared phases.
    pub phases: Vec<PhaseDecl>,
}

/// Why an instantiation is not a valid COSA-DLC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CosaViolation {
    /// One of the 6 Vs is addressed by no phase.
    UncoveredV(SixV),
    /// A block has no phases at all.
    EmptyBlock(Block),
    /// Two phases share a name.
    DuplicatePhase(&'static str),
}

impl Instantiation {
    /// Checks comprehensiveness (all 6 Vs covered), structural completeness
    /// (all three blocks populated), and naming sanity. Returns all
    /// violations, empty when valid.
    pub fn verify(&self) -> Vec<CosaViolation> {
        let mut violations = Vec::new();
        let covered: BTreeSet<SixV> = self
            .phases
            .iter()
            .flat_map(|p| p.addresses.iter().copied())
            .collect();
        for v in SixV::ALL {
            if !covered.contains(&v) {
                violations.push(CosaViolation::UncoveredV(v));
            }
        }
        for block in [Block::Acquisition, Block::Processing, Block::Preservation] {
            if !self.phases.iter().any(|p| p.block == block) {
                violations.push(CosaViolation::EmptyBlock(block));
            }
        }
        let mut seen = BTreeSet::new();
        for p in &self.phases {
            if !seen.insert(p.name) {
                violations.push(CosaViolation::DuplicatePhase(p.name));
            }
        }
        violations
    }

    /// Whether the instantiation is a comprehensive COSA-DLC model.
    pub fn is_comprehensive(&self) -> bool {
        self.verify().is_empty()
    }

    /// Phases of one block, in declaration order.
    pub fn phases_in(&self, block: Block) -> Vec<&PhaseDecl> {
        self.phases.iter().filter(|p| p.block == block).collect()
    }
}

/// The SCC-DLC: the smart-city instantiation of Fig. 2, with the 6V
/// coverage each phase provides. The phase names match the implementations
/// in [`crate::acquisition`], [`crate::processing`] and
/// [`crate::preservation`].
pub fn scc_instantiation() -> Instantiation {
    use Block::*;
    use SixV::*;
    Instantiation {
        scenario: "smart city",
        phases: vec![
            PhaseDecl {
                name: "data-collection",
                block: Acquisition,
                addresses: &[Velocity, Volume],
            },
            PhaseDecl {
                name: "data-filtering",
                block: Acquisition,
                addresses: &[Volume, Variability],
            },
            PhaseDecl {
                name: "data-quality",
                block: Acquisition,
                addresses: &[Veracity],
            },
            PhaseDecl {
                name: "data-description",
                block: Acquisition,
                addresses: &[Variety],
            },
            PhaseDecl {
                name: "data-process",
                block: Processing,
                addresses: &[Value, Variety],
            },
            PhaseDecl {
                name: "data-analysis",
                block: Processing,
                addresses: &[Value],
            },
            PhaseDecl {
                name: "data-classification",
                block: Preservation,
                addresses: &[Variety, Veracity],
            },
            PhaseDecl {
                name: "data-archive",
                block: Preservation,
                addresses: &[Volume, Variability],
            },
            PhaseDecl {
                name: "data-dissemination",
                block: Preservation,
                addresses: &[Value],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scc_instantiation_is_comprehensive() {
        let scc = scc_instantiation();
        assert!(scc.is_comprehensive(), "violations: {:?}", scc.verify());
        assert_eq!(scc.phases.len(), 9, "Fig. 2 has nine phases");
        assert_eq!(scc.phases_in(Block::Acquisition).len(), 4);
        assert_eq!(scc.phases_in(Block::Processing).len(), 2);
        assert_eq!(scc.phases_in(Block::Preservation).len(), 3);
    }

    #[test]
    fn phase_names_match_the_implementations() {
        use crate::acquisition::*;
        use crate::phase::Phase;
        use crate::preservation::*;
        use crate::processing::*;
        let impls: Vec<&'static str> = vec![
            CollectionPhase::new().name(),
            FilteringPhase::paper_default().name(),
            QualityPhase::dropping_failures().name(),
            DescriptionPhase::new("x", 0, 0).name(),
            ProcessPhase::new(vec![]).name(),
            AnalysisPhase::new(3.0).name(),
            ClassificationPhase::new().name(),
            ArchivePhase::new().name(),
            // dissemination is a portal, not a Phase; declared by name.
            "data-dissemination",
        ];
        let declared: Vec<&'static str> =
            scc_instantiation().phases.iter().map(|p| p.name).collect();
        assert_eq!(impls, declared);
    }

    #[test]
    fn missing_v_is_detected() {
        let mut scc = scc_instantiation();
        // Drop the only Veracity providers.
        scc.phases
            .retain(|p| !p.addresses.contains(&SixV::Veracity));
        let violations = scc.verify();
        assert!(violations.contains(&CosaViolation::UncoveredV(SixV::Veracity)));
    }

    #[test]
    fn empty_block_is_detected() {
        let mut scc = scc_instantiation();
        scc.phases.retain(|p| p.block != Block::Processing);
        let violations = scc.verify();
        assert!(violations.contains(&CosaViolation::EmptyBlock(Block::Processing)));
        // Value was only provided by processing+dissemination; dissemination
        // remains, so Value is still covered.
        assert!(!violations.contains(&CosaViolation::UncoveredV(SixV::Value)));
    }

    #[test]
    fn duplicate_phase_names_are_detected() {
        let mut scc = scc_instantiation();
        let dup = scc.phases[0].clone();
        scc.phases.push(dup);
        assert!(scc
            .verify()
            .contains(&CosaViolation::DuplicatePhase("data-collection")));
    }

    #[test]
    fn scenario_agnosticism_another_instantiation_verifies() {
        // A minimal eScience instantiation with different phases: the model
        // is agnostic as long as the 6 Vs and 3 blocks are covered.
        use Block::*;
        use SixV::*;
        let escience = Instantiation {
            scenario: "eScience",
            phases: vec![
                PhaseDecl {
                    name: "ingest",
                    block: Acquisition,
                    addresses: &[Velocity, Veracity],
                },
                PhaseDecl {
                    name: "curate",
                    block: Acquisition,
                    addresses: &[Variety],
                },
                PhaseDecl {
                    name: "simulate",
                    block: Processing,
                    addresses: &[Value],
                },
                PhaseDecl {
                    name: "archive",
                    block: Preservation,
                    addresses: &[Volume, Variability],
                },
            ],
        };
        assert!(escience.is_comprehensive());
    }
}
