//! The data acquisition block (Fig. 2): collection → filtering → quality →
//! description. Runs at fog layer 1 in the F2C mapping (Fig. 5, §IV.A).

mod collection;
mod description;
mod filtering;
mod quality_phase;

pub use collection::CollectionPhase;
pub use description::DescriptionPhase;
pub use filtering::FilteringPhase;
pub use quality_phase::QualityPhase;

use crate::phase::{Block, PhaseContext};
use crate::pipeline::Pipeline;
use crate::record::DataRecord;
use scc_sensors::Reading;

/// The full acquisition block as one convenient unit: wraps raw readings
/// into records and runs them through the four acquisition phases.
///
/// # Examples
///
/// ```
/// use scc_dlc::acquisition::AcquisitionBlock;
/// use scc_dlc::phase::PhaseContext;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let mut block = AcquisitionBlock::new("Barcelona", 3, 21);
/// let r = Reading::new(SensorId::new(SensorType::Weather, 0), 10, Value::from_f64(19.0));
/// let out = block.ingest(vec![r], &PhaseContext::at(12));
/// assert_eq!(out.len(), 1);
/// assert!(out[0].descriptor().is_fully_described());
/// assert!(out[0].quality().unwrap().passed());
/// ```
#[derive(Debug)]
pub struct AcquisitionBlock {
    pipeline: Pipeline,
}

impl AcquisitionBlock {
    /// The paper's fog-1 configuration for a node covering `section` of
    /// `district` in `city`: collection, redundant-data elimination,
    /// quality (dropping failures), description.
    pub fn new(city: &str, district: u16, section: u16) -> Self {
        let mut pipeline = Pipeline::new(Block::Acquisition);
        pipeline
            .push(Box::new(CollectionPhase::new()))
            .expect("collection is an acquisition phase");
        pipeline
            .push(Box::new(FilteringPhase::paper_default()))
            .expect("filtering is an acquisition phase");
        pipeline
            .push(Box::new(QualityPhase::dropping_failures()))
            .expect("quality is an acquisition phase");
        pipeline
            .push(Box::new(DescriptionPhase::new(city, district, section)))
            .expect("description is an acquisition phase");
        Self { pipeline }
    }

    /// Shorthand used in examples: Barcelona, district derived elsewhere.
    pub fn paper_default(section: u16) -> Self {
        Self::new("Barcelona", section / 8, section)
    }

    /// A variant *without* the filtering phase — the centralized-baseline
    /// configuration, where no aggregation happens before the cloud.
    pub fn without_filtering(city: &str, district: u16, section: u16) -> Self {
        let mut pipeline = Pipeline::new(Block::Acquisition);
        pipeline
            .push(Box::new(CollectionPhase::new()))
            .expect("collection is an acquisition phase");
        pipeline
            .push(Box::new(QualityPhase::dropping_failures()))
            .expect("quality is an acquisition phase");
        pipeline
            .push(Box::new(DescriptionPhase::new(city, district, section)))
            .expect("description is an acquisition phase");
        Self { pipeline }
    }

    /// Ingests raw readings: wrap → collect → filter → quality → describe.
    pub fn ingest(&mut self, readings: Vec<Reading>, ctx: &PhaseContext) -> Vec<DataRecord> {
        let records = readings.into_iter().map(DataRecord::from_reading).collect();
        self.pipeline.run(records, ctx)
    }

    /// Per-phase throughput statistics.
    pub fn stats(&self) -> Vec<(&'static str, crate::phase::PhaseStats)> {
        self.pipeline.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{ReadingGenerator, SensorType};

    #[test]
    fn block_reduces_redundant_traffic_and_tags_everything() {
        let mut block = AcquisitionBlock::new("Barcelona", 2, 17);
        let mut gen = ReadingGenerator::for_population(SensorType::NoiseTrafficZone, 50, 4);
        let mut seen = 0u64;
        let mut kept = 0u64;
        for w in 0..60u64 {
            let wave = gen.wave(w * 60);
            seen += wave.len() as u64;
            let out = block.ingest(wave, &PhaseContext::at(w * 60 + 1));
            kept += out.len() as u64;
            for rec in &out {
                assert!(rec.descriptor().is_fully_described());
                assert_eq!(rec.descriptor().district(), Some(2));
                assert_eq!(rec.descriptor().section(), Some(17));
                assert!(rec.quality().is_some());
            }
        }
        // Noise redundancy is 75% (Table I).
        let rate = 1.0 - kept as f64 / seen as f64;
        assert!((rate - 0.75).abs() < 0.05, "reduction {rate:.3}");
    }

    #[test]
    fn stats_cover_all_four_phases() {
        let mut block = AcquisitionBlock::new("Barcelona", 0, 0);
        let mut gen = ReadingGenerator::for_population(SensorType::ParkingSpot, 5, 1);
        block.ingest(gen.wave(0), &PhaseContext::at(0));
        let names: Vec<&str> = block.stats().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "data-collection",
                "data-filtering",
                "data-quality",
                "data-description"
            ]
        );
    }
}
