//! Data quality: assesses every record against the [`QualityPolicy`] and
//! (optionally) drops failures, "assessing and guaranteeing higher data
//! quality" at fog layer 1 (§IV.A).

use crate::phase::{Block, Phase, PhaseContext};
use crate::quality::QualityPolicy;
use crate::record::DataRecord;

/// Quality assessment phase.
#[derive(Debug, Clone, Default)]
pub struct QualityPhase {
    policy: QualityPolicy,
    drop_failures: bool,
    dropped: u64,
}

impl QualityPhase {
    /// Assess and *drop* records that fail (the paper's design: downstream
    /// blocks receive only quality-checked data).
    pub fn dropping_failures() -> Self {
        Self {
            policy: QualityPolicy::paper_default(),
            drop_failures: true,
            dropped: 0,
        }
    }

    /// Assess but keep failures (tagged with their reports) — useful for
    /// audit pipelines.
    pub fn tagging_only() -> Self {
        Self {
            policy: QualityPolicy::paper_default(),
            drop_failures: false,
            dropped: 0,
        }
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: QualityPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Records dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Phase for QualityPhase {
    fn name(&self) -> &'static str {
        "data-quality"
    }

    fn block(&self) -> Block {
        Block::Acquisition
    }

    fn run(&mut self, batch: Vec<DataRecord>, ctx: &PhaseContext) -> Vec<DataRecord> {
        let mut out = Vec::with_capacity(batch.len());
        for mut rec in batch {
            let collected = rec.descriptor().collected_s().unwrap_or(ctx.now_s);
            let report = self.policy.assess(
                rec.sensor_type(),
                rec.reading().value(),
                rec.descriptor().created_s(),
                collected,
            );
            let passed = report.passed();
            rec.set_quality(report);
            if passed || !self.drop_failures {
                out.push(rec);
            } else {
                self.dropped += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(created: u64, v: f64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Temperature, 0),
            created,
            Value::from_f64(v),
        ))
    }

    #[test]
    fn passing_records_are_tagged_and_kept() {
        let mut phase = QualityPhase::dropping_failures();
        let out = phase.run(vec![rec(100, 21.0)], &PhaseContext::at(110));
        assert_eq!(out.len(), 1);
        assert!(out[0].quality().unwrap().passed());
        assert_eq!(phase.dropped(), 0);
    }

    #[test]
    fn double_violation_is_dropped() {
        let mut phase = QualityPhase::dropping_failures();
        // Out of range AND stale (created 0, assessed at 10000).
        let out = phase.run(vec![rec(0, 500.0)], &PhaseContext::at(10_000));
        assert!(out.is_empty());
        assert_eq!(phase.dropped(), 1);
    }

    #[test]
    fn tagging_only_keeps_failures() {
        let mut phase = QualityPhase::tagging_only();
        let out = phase.run(vec![rec(0, 500.0)], &PhaseContext::at(10_000));
        assert_eq!(out.len(), 1);
        assert!(!out[0].quality().unwrap().passed());
    }

    #[test]
    fn uses_collection_stamp_when_present() {
        let mut r = rec(100, 21.0);
        r.descriptor_mut().stamp_collected(150);
        let mut phase = QualityPhase::dropping_failures();
        // Phase context is far in the future, but staleness is measured
        // against the *collection* stamp (50 s), so the record passes.
        let out = phase.run(vec![r], &PhaseContext::at(1_000_000));
        assert_eq!(out.len(), 1);
        assert!(out[0].quality().unwrap().passed());
    }
}
