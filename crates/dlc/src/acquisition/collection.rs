//! Data collection: the entry phase. Stamps every record with its
//! collection time (the fog node's clock), making staleness measurable by
//! the quality phase downstream.

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// Stamps collection time on incoming records.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollectionPhase;

impl CollectionPhase {
    /// Creates the phase.
    pub fn new() -> Self {
        Self
    }
}

impl Phase for CollectionPhase {
    fn name(&self) -> &'static str {
        "data-collection"
    }

    fn block(&self) -> Block {
        Block::Acquisition
    }

    fn run(&mut self, mut batch: Vec<DataRecord>, ctx: &PhaseContext) -> Vec<DataRecord> {
        for rec in &mut batch {
            rec.descriptor_mut().stamp_collected(ctx.now_s);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    #[test]
    fn stamps_collection_time() {
        let rec = DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Temperature, 0),
            100,
            Value::from_f64(20.0),
        ));
        let mut phase = CollectionPhase::new();
        let out = phase.run(vec![rec], &PhaseContext::at(105));
        assert_eq!(out[0].descriptor().collected_s(), Some(105));
        assert_eq!(out[0].descriptor().created_s(), 100);
    }

    #[test]
    fn never_drops_records() {
        let recs: Vec<DataRecord> = (0..10)
            .map(|i| {
                DataRecord::from_reading(Reading::new(
                    SensorId::new(SensorType::Traffic, i),
                    0,
                    Value::Counter(0),
                ))
            })
            .collect();
        let mut phase = CollectionPhase::new();
        assert_eq!(phase.run(recs, &PhaseContext::at(0)).len(), 10);
    }
}
