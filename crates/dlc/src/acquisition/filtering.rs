//! Data filtering: "performs some optimizations, such as data aggregation"
//! (§II). The paper's evaluated optimization is redundant-data
//! elimination, wrapped here as a phase over records.

use f2c_aggregate::RedundancyFilter;

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// Drops records whose reading repeats the sensor's previous value.
#[derive(Debug, Default)]
pub struct FilteringPhase {
    filter: RedundancyFilter,
}

impl FilteringPhase {
    /// The paper's configuration: pure redundant-data elimination.
    pub fn paper_default() -> Self {
        Self {
            filter: RedundancyFilter::new(),
        }
    }

    /// A variant that re-admits unchanged values every `heartbeat_s`
    /// seconds so silence stays distinguishable from constancy.
    pub fn with_heartbeat(heartbeat_s: u64) -> Self {
        Self {
            filter: RedundancyFilter::with_heartbeat(heartbeat_s),
        }
    }

    /// Accumulated dedup statistics.
    pub fn stats(&self) -> f2c_aggregate::DedupStats {
        self.filter.stats()
    }
}

impl Phase for FilteringPhase {
    fn name(&self) -> &'static str {
        "data-filtering"
    }

    fn block(&self) -> Block {
        Block::Acquisition
    }

    fn run(&mut self, batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
        batch
            .into_iter()
            .filter(|rec| self.filter.admit(rec.reading()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(t: u64, v: f64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Temperature, 0),
            t,
            Value::from_f64(v),
        ))
    }

    #[test]
    fn repeats_are_filtered() {
        let mut phase = FilteringPhase::paper_default();
        let out = phase.run(
            vec![rec(0, 1.0), rec(60, 1.0), rec(120, 2.0), rec(180, 2.0)],
            &PhaseContext::at(200),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(phase.stats().suppressed, 2);
    }

    #[test]
    fn state_persists_across_batches() {
        let mut phase = FilteringPhase::paper_default();
        phase.run(vec![rec(0, 5.0)], &PhaseContext::at(0));
        let out = phase.run(vec![rec(60, 5.0)], &PhaseContext::at(60));
        assert!(out.is_empty(), "repeat in a later batch must be caught");
    }

    #[test]
    fn heartbeat_variant_readmits() {
        let mut phase = FilteringPhase::with_heartbeat(100);
        phase.run(vec![rec(0, 5.0)], &PhaseContext::at(0));
        let out = phase.run(vec![rec(150, 5.0)], &PhaseContext::at(150));
        assert_eq!(out.len(), 1);
    }
}
