//! Data description: tags records with location, authoring and privacy
//! according to the city business model (§IV.A).

use scc_sensors::Category;

use crate::descriptor::PrivacyLevel;
use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// Fills location/authoring/privacy tags for every record.
#[derive(Debug, Clone)]
pub struct DescriptionPhase {
    city: String,
    district: u16,
    section: u16,
}

impl DescriptionPhase {
    /// Tags for a fog node covering `section` of `district` in `city`.
    pub fn new(city: &str, district: u16, section: u16) -> Self {
        Self {
            city: city.to_owned(),
            district,
            section,
        }
    }

    /// Default privacy classification per category: meter data can reveal
    /// household occupancy, so energy is restricted; the other Sentilo
    /// categories are municipal open data.
    pub fn privacy_for(category: Category) -> PrivacyLevel {
        match category {
            Category::Energy => PrivacyLevel::Restricted,
            _ => PrivacyLevel::Public,
        }
    }
}

impl Phase for DescriptionPhase {
    fn name(&self) -> &'static str {
        "data-description"
    }

    fn block(&self) -> Block {
        Block::Acquisition
    }

    fn run(&mut self, mut batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
        for rec in &mut batch {
            let category = rec.sensor_type().category();
            let d = rec.descriptor_mut();
            d.set_location(&self.city, self.district, self.section);
            d.set_authoring(category.provider());
            d.set_privacy(Self::privacy_for(category));
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    #[test]
    fn tags_location_authoring_privacy() {
        let rec = DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::ElectricityMeter, 9),
            0,
            Value::Counter(100),
        ));
        let mut phase = DescriptionPhase::new("Barcelona", 4, 33);
        let out = phase.run(vec![rec], &PhaseContext::at(0));
        let d = out[0].descriptor();
        assert_eq!(d.city(), Some("Barcelona"));
        assert_eq!(d.district(), Some(4));
        assert_eq!(d.section(), Some(33));
        assert_eq!(d.authoring(), Some("ENERGY"));
        assert_eq!(d.privacy(), Some(PrivacyLevel::Restricted));
    }

    #[test]
    fn non_energy_categories_are_public() {
        for (ty, expected) in [
            (SensorType::ParkingSpot, PrivacyLevel::Public),
            (SensorType::Weather, PrivacyLevel::Public),
            (SensorType::NoiseAmbient, PrivacyLevel::Public),
            (SensorType::ContainerGlass, PrivacyLevel::Public),
            (SensorType::GasMeter, PrivacyLevel::Restricted),
        ] {
            assert_eq!(DescriptionPhase::privacy_for(ty.category()), expected);
        }
    }
}
