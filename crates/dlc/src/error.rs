use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from DLC configuration and archive access.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A pipeline was built with phases from mismatched blocks.
    MixedBlocks {
        /// The pipeline's declared block.
        expected: &'static str,
        /// The offending phase's block.
        found: &'static str,
        /// The offending phase's name.
        phase: &'static str,
    },
    /// A query's time range is inverted.
    InvertedRange {
        /// Range start (seconds).
        from_s: u64,
        /// Range end (seconds).
        until_s: u64,
    },
    /// Access denied by a dissemination policy.
    AccessDenied {
        /// The requested category provider name.
        provider: String,
        /// The policy that refused.
        policy: &'static str,
    },
    /// A quality policy was configured with an inverted bound.
    InvertedBounds {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::MixedBlocks {
                expected,
                found,
                phase,
            } => write!(
                f,
                "phase {phase} belongs to block {found}, pipeline expects {expected}"
            ),
            Error::InvertedRange { from_s, until_s } => {
                write!(f, "inverted time range [{from_s}, {until_s})")
            }
            Error::AccessDenied { provider, policy } => {
                write!(f, "access to {provider} denied by {policy} policy")
            }
            Error::InvertedBounds { min, max } => {
                write!(f, "inverted quality bounds [{min}, {max}]")
            }
        }
    }
}

impl std::error::Error for Error {}
