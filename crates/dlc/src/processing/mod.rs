//! The data processing block (Fig. 2): data process (transformation) and
//! data analysis (knowledge extraction). Runs at whichever F2C layer the
//! service placement picks (§IV.C).

mod analysis;
mod process;

pub use analysis::{linear_trend, zscore_anomalies, AnalysisPhase, AnalysisSummary, Anomaly};
pub use process::{ProcessPhase, Transform};
