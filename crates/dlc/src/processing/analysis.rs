//! Data analysis: "implementing some analysis or analytic approaches for
//! extracting knowledge" (§II). Provides per-type summary statistics,
//! z-score anomaly detection, and linear trend estimation.

use std::collections::BTreeMap;

use f2c_aggregate::functions::{Decomposable, Moments};
use scc_sensors::{SensorId, SensorType};

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// A reading flagged as anomalous.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The reporting sensor.
    pub sensor: SensorId,
    /// Observation time.
    pub timestamp_s: u64,
    /// Observed magnitude.
    pub value: f64,
    /// Z-score against the type's running distribution.
    pub z: f64,
}

/// Knowledge extracted by an [`AnalysisPhase`] so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisSummary {
    /// Running moments per sensor type.
    pub per_type: BTreeMap<SensorType, Moments>,
    /// Anomalies detected, in detection order.
    pub anomalies: Vec<Anomaly>,
}

/// Streaming analysis phase: accumulates per-type moments and flags
/// readings whose |z-score| exceeds the threshold.
///
/// Records pass through unchanged — analysis extracts knowledge, it does
/// not mutate the data (higher-value results are read via
/// [`AnalysisPhase::summary`] and may be preserved as new records by the
/// flow layer).
#[derive(Debug, Clone)]
pub struct AnalysisPhase {
    threshold_z: f64,
    /// Minimum samples per type before anomaly detection engages.
    warmup: u64,
    summary: AnalysisSummary,
}

impl AnalysisPhase {
    /// A phase flagging |z| > `threshold_z` after a 30-sample warmup.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_z` is not positive.
    pub fn new(threshold_z: f64) -> Self {
        assert!(threshold_z > 0.0, "z threshold must be positive");
        Self {
            threshold_z,
            warmup: 30,
            summary: AnalysisSummary::default(),
        }
    }

    /// The knowledge accumulated so far.
    pub fn summary(&self) -> &AnalysisSummary {
        &self.summary
    }
}

impl Phase for AnalysisPhase {
    fn name(&self) -> &'static str {
        "data-analysis"
    }

    fn block(&self) -> Block {
        Block::Processing
    }

    fn run(&mut self, batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
        for rec in &batch {
            let ty = rec.sensor_type();
            let v = rec.reading().value().magnitude();
            let m = self
                .summary
                .per_type
                .entry(ty)
                .or_insert_with(Moments::empty);
            if m.count >= self.warmup {
                if let (Some(mean), Some(sd)) = (m.mean(), m.std_dev()) {
                    if sd > 1e-9 {
                        let z = (v - mean) / sd;
                        if z.abs() > self.threshold_z {
                            self.summary.anomalies.push(Anomaly {
                                sensor: rec.reading().sensor(),
                                timestamp_s: rec.reading().timestamp_s(),
                                value: v,
                                z,
                            });
                        }
                    }
                }
            }
            m.absorb(v);
        }
        batch
    }
}

/// Least-squares linear trend over `(t, v)` samples: returns
/// `(slope_per_second, intercept)`, or `None` with fewer than 2 distinct
/// timestamps.
pub fn linear_trend(samples: &[(u64, f64)]) -> Option<(f64, f64)> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|(t, _)| *t as f64).sum();
    let sy: f64 = samples.iter().map(|(_, v)| *v).sum();
    let sxx: f64 = samples.iter().map(|(t, _)| (*t as f64) * (*t as f64)).sum();
    let sxy: f64 = samples.iter().map(|(t, v)| (*t as f64) * v).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// One-shot z-score anomaly scan over magnitudes; returns indices of
/// samples with |z| > `threshold`.
pub fn zscore_anomalies(values: &[f64], threshold: f64) -> Vec<usize> {
    let m: Moments = f2c_aggregate::functions::fold(values.iter().copied());
    match (m.mean(), m.std_dev()) {
        (Some(mean), Some(sd)) if sd > 1e-12 => values
            .iter()
            .enumerate()
            .filter(|(_, &v)| ((v - mean) / sd).abs() > threshold)
            .map(|(i, _)| i)
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, Value};

    fn rec(idx: u32, t: u64, v: f64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::NoiseTrafficZone, idx),
            t,
            Value::from_f64(v),
        ))
    }

    #[test]
    fn records_pass_through_unchanged() {
        let mut phase = AnalysisPhase::new(3.0);
        let batch = vec![rec(0, 0, 60.0), rec(1, 0, 62.0)];
        let out = phase.run(batch.clone(), &PhaseContext::at(0));
        assert_eq!(out, batch);
    }

    #[test]
    fn obvious_outlier_is_flagged_after_warmup() {
        let mut phase = AnalysisPhase::new(3.0);
        // 100 normal readings around 60 dB with real variance.
        let normals: Vec<DataRecord> = (0..100)
            .map(|i| rec(i, u64::from(i) * 60, 60.0 + (i % 7) as f64 - 3.0))
            .collect();
        phase.run(normals, &PhaseContext::at(0));
        assert!(phase.summary().anomalies.is_empty());
        // A 130 dB reading is far outside the running distribution.
        phase.run(vec![rec(5, 7000, 130.0)], &PhaseContext::at(7000));
        let anomalies = &phase.summary().anomalies;
        assert_eq!(anomalies.len(), 1);
        assert!(anomalies[0].z > 3.0);
        assert_eq!(anomalies[0].value, 130.0);
    }

    #[test]
    fn warmup_suppresses_early_false_positives() {
        let mut phase = AnalysisPhase::new(1.0);
        phase.run(vec![rec(0, 0, 1.0), rec(1, 1, 100.0)], &PhaseContext::at(1));
        assert!(phase.summary().anomalies.is_empty());
    }

    #[test]
    fn per_type_moments_accumulate() {
        let mut phase = AnalysisPhase::new(3.0);
        phase.run(vec![rec(0, 0, 10.0), rec(1, 0, 20.0)], &PhaseContext::at(0));
        let m = phase.summary().per_type[&SensorType::NoiseTrafficZone];
        assert_eq!(m.count, 2);
        assert_eq!(m.mean(), Some(15.0));
    }

    #[test]
    fn linear_trend_recovers_known_slope() {
        let samples: Vec<(u64, f64)> = (0..50).map(|t| (t, 3.0 + 0.5 * t as f64)).collect();
        let (slope, intercept) = linear_trend(&samples).unwrap();
        assert!((slope - 0.5).abs() < 1e-9);
        assert!((intercept - 3.0).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_degenerate_cases() {
        assert_eq!(linear_trend(&[]), None);
        assert_eq!(linear_trend(&[(0, 1.0)]), None);
        assert_eq!(linear_trend(&[(5, 1.0), (5, 2.0)]), None); // same timestamp
    }

    #[test]
    fn zscore_scan_finds_the_spike() {
        let mut values = vec![10.0; 50];
        values[17] = 1000.0;
        // Some jitter so sd > 0 even without the spike.
        values[3] = 10.5;
        values[9] = 9.5;
        let hits = zscore_anomalies(&values, 3.0);
        assert_eq!(hits, vec![17]);
    }

    #[test]
    fn zscore_scan_on_constant_data_is_empty() {
        assert!(zscore_anomalies(&[5.0; 20], 2.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_threshold_panics() {
        AnalysisPhase::new(0.0);
    }
}
