//! Data process: "a set of processes to transform raw data into more
//! sophisticated data/information" (§II).

use scc_sensors::{Reading, Value};

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// One value transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Transform {
    /// Affine rescale: `v * factor + offset` (unit conversion).
    Scale {
        /// Multiplicative factor.
        factor: f64,
        /// Additive offset.
        offset: f64,
    },
    /// Clamp into `[min, max]`.
    Clamp {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// Round to `decimals` decimal places.
    Round {
        /// Number of decimal places to keep.
        decimals: u32,
    },
}

impl Transform {
    fn apply(self, v: f64) -> f64 {
        match self {
            Transform::Scale { factor, offset } => v * factor + offset,
            Transform::Clamp { min, max } => v.clamp(min, max),
            Transform::Round { decimals } => {
                let k = 10f64.powi(decimals as i32);
                (v * k).round() / k
            }
        }
    }
}

/// Applies an ordered list of transforms to every record's magnitude,
/// replacing the value with the transformed scalar and stamping the
/// modification time.
#[derive(Debug, Clone, Default)]
pub struct ProcessPhase {
    transforms: Vec<Transform>,
}

impl ProcessPhase {
    /// A phase applying `transforms` in order.
    pub fn new(transforms: Vec<Transform>) -> Self {
        Self { transforms }
    }

    /// Celsius → Fahrenheit, a concrete unit-conversion example.
    pub fn celsius_to_fahrenheit() -> Self {
        Self::new(vec![Transform::Scale {
            factor: 9.0 / 5.0,
            offset: 32.0,
        }])
    }
}

impl Phase for ProcessPhase {
    fn name(&self) -> &'static str {
        "data-process"
    }

    fn block(&self) -> Block {
        Block::Processing
    }

    fn run(&mut self, batch: Vec<DataRecord>, ctx: &PhaseContext) -> Vec<DataRecord> {
        batch
            .into_iter()
            .map(|rec| {
                let mut v = rec.reading().value().magnitude();
                for t in &self.transforms {
                    v = t.apply(v);
                }
                let reading = Reading::new(
                    rec.reading().sensor(),
                    rec.reading().timestamp_s(),
                    Value::from_f64(v),
                );
                let mut out = DataRecord::from_reading(reading);
                *out.descriptor_mut() = rec.descriptor().clone();
                out.descriptor_mut().stamp_modified(ctx.now_s);
                if let Some(q) = rec.quality() {
                    out.set_quality(q.clone());
                }
                out
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{SensorId, SensorType};

    fn rec(v: f64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Temperature, 0),
            100,
            Value::from_f64(v),
        ))
    }

    #[test]
    fn unit_conversion_works() {
        let mut phase = ProcessPhase::celsius_to_fahrenheit();
        let out = phase.run(vec![rec(100.0)], &PhaseContext::at(200));
        assert_eq!(out[0].reading().value().as_f64(), Some(212.0));
        assert_eq!(out[0].descriptor().modified_s(), Some(200));
    }

    #[test]
    fn transforms_compose_in_order() {
        let mut phase = ProcessPhase::new(vec![
            Transform::Scale {
                factor: 2.0,
                offset: 0.0,
            },
            Transform::Clamp {
                min: 0.0,
                max: 10.0,
            },
        ]);
        let out = phase.run(vec![rec(50.0)], &PhaseContext::at(0));
        assert_eq!(out[0].reading().value().as_f64(), Some(10.0));
    }

    #[test]
    fn rounding_quantizes() {
        let mut phase = ProcessPhase::new(vec![Transform::Round { decimals: 1 }]);
        let out = phase.run(vec![rec(3.26)], &PhaseContext::at(0));
        assert_eq!(out[0].reading().value().as_f64(), Some(3.3));
    }

    #[test]
    fn descriptor_and_quality_are_preserved() {
        let mut r = rec(1.0);
        r.descriptor_mut().set_location("Barcelona", 1, 2);
        r.set_quality(crate::quality::QualityReport::perfect());
        let mut phase = ProcessPhase::new(vec![]);
        let out = phase.run(vec![r], &PhaseContext::at(5));
        assert_eq!(out[0].descriptor().city(), Some("Barcelona"));
        assert!(out[0].quality().unwrap().passed());
    }
}
