//! Data description tags (§IV.A): "data description can be performed in
//! order to tag data according to the city business model considered, for
//! instance, timing information (creation, collection, modification, etc.),
//! location positioning (city, country, GPS coordinates), authoring,
//! privacy, and so on."

use serde::{Deserialize, Serialize};

/// Privacy classification attached by the description phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrivacyLevel {
    /// Publishable through open-data interfaces.
    Public,
    /// Restricted to city services.
    Restricted,
    /// Contains personal or sensitive information.
    Private,
}

/// Tags describing one data record.
///
/// Built incrementally: collection stamps timing, description fills
/// location/authoring/privacy. Missing tags are `None` — a record that
/// skipped the description phase is visibly untagged rather than silently
/// defaulted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Descriptor {
    created_s: u64,
    collected_s: Option<u64>,
    modified_s: Option<u64>,
    city: Option<String>,
    district: Option<u16>,
    section: Option<u16>,
    authoring: Option<String>,
    privacy: Option<PrivacyLevel>,
}

impl Descriptor {
    /// A descriptor knowing only the creation time (sensor timestamp).
    pub fn created_at(created_s: u64) -> Self {
        Self {
            created_s,
            collected_s: None,
            modified_s: None,
            city: None,
            district: None,
            section: None,
            authoring: None,
            privacy: None,
        }
    }

    /// Creation (measurement) time, seconds.
    pub fn created_s(&self) -> u64 {
        self.created_s
    }

    /// Collection time (when a fog node ingested the record).
    pub fn collected_s(&self) -> Option<u64> {
        self.collected_s
    }

    /// Last modification time (set by processing phases).
    pub fn modified_s(&self) -> Option<u64> {
        self.modified_s
    }

    /// City name.
    pub fn city(&self) -> Option<&str> {
        self.city.as_deref()
    }

    /// District index.
    pub fn district(&self) -> Option<u16> {
        self.district
    }

    /// Section (fog-1 area) index.
    pub fn section(&self) -> Option<u16> {
        self.section
    }

    /// Authoring entity (provider).
    pub fn authoring(&self) -> Option<&str> {
        self.authoring.as_deref()
    }

    /// Privacy classification.
    pub fn privacy(&self) -> Option<PrivacyLevel> {
        self.privacy
    }

    /// Stamps the collection time.
    pub fn stamp_collected(&mut self, at_s: u64) {
        self.collected_s = Some(at_s);
    }

    /// Stamps a modification time.
    pub fn stamp_modified(&mut self, at_s: u64) {
        self.modified_s = Some(at_s);
    }

    /// Sets the location tags.
    pub fn set_location(&mut self, city: &str, district: u16, section: u16) {
        self.city = Some(city.to_owned());
        self.district = Some(district);
        self.section = Some(section);
    }

    /// Sets the authoring tag.
    pub fn set_authoring(&mut self, who: &str) {
        self.authoring = Some(who.to_owned());
    }

    /// Sets the privacy tag.
    pub fn set_privacy(&mut self, level: PrivacyLevel) {
        self.privacy = Some(level);
    }

    /// Whether the descriptor carries the full tag set the description
    /// phase is responsible for.
    pub fn is_fully_described(&self) -> bool {
        self.collected_s.is_some()
            && self.city.is_some()
            && self.district.is_some()
            && self.section.is_some()
            && self.authoring.is_some()
            && self.privacy.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_descriptor_is_untagged() {
        let d = Descriptor::created_at(100);
        assert_eq!(d.created_s(), 100);
        assert!(!d.is_fully_described());
        assert_eq!(d.privacy(), None);
    }

    #[test]
    fn full_tagging_roundtrip() {
        let mut d = Descriptor::created_at(100);
        d.stamp_collected(105);
        d.set_location("Barcelona", 3, 21);
        d.set_authoring("ENERGY");
        d.set_privacy(PrivacyLevel::Public);
        assert!(d.is_fully_described());
        assert_eq!(d.collected_s(), Some(105));
        assert_eq!(d.city(), Some("Barcelona"));
        assert_eq!(d.district(), Some(3));
        assert_eq!(d.section(), Some(21));
        assert_eq!(d.authoring(), Some("ENERGY"));
        assert_eq!(d.privacy(), Some(PrivacyLevel::Public));
    }

    #[test]
    fn privacy_levels_order_by_sensitivity() {
        assert!(PrivacyLevel::Public < PrivacyLevel::Restricted);
        assert!(PrivacyLevel::Restricted < PrivacyLevel::Private);
    }

    #[test]
    fn modification_stamp_is_independent() {
        let mut d = Descriptor::created_at(0);
        d.stamp_modified(50);
        assert_eq!(d.modified_s(), Some(50));
        assert_eq!(d.collected_s(), None);
    }
}
