//! The unit of data flowing through the life cycle.

use scc_sensors::{Reading, SensorType};
use serde::{Deserialize, Serialize};

use crate::age::{AgeClass, AgePolicy};
use crate::descriptor::Descriptor;
use crate::quality::QualityReport;

/// One observation plus everything the life cycle has learned about it.
///
/// # Examples
///
/// ```
/// use scc_dlc::DataRecord;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let r = Reading::new(SensorId::new(SensorType::Weather, 1), 60, Value::from_f64(18.0));
/// let rec = DataRecord::from_reading(r);
/// assert_eq!(rec.descriptor().created_s(), 60);
/// assert!(rec.quality().is_none()); // not yet assessed
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataRecord {
    reading: Reading,
    descriptor: Descriptor,
    quality: Option<QualityReport>,
}

impl DataRecord {
    /// Wraps a raw reading; the descriptor starts with only the creation
    /// time (the reading's timestamp).
    pub fn from_reading(reading: Reading) -> Self {
        let descriptor = Descriptor::created_at(reading.timestamp_s());
        Self {
            reading,
            descriptor,
            quality: None,
        }
    }

    /// The wrapped observation.
    pub fn reading(&self) -> &Reading {
        &self.reading
    }

    /// The sensor type (convenience).
    pub fn sensor_type(&self) -> SensorType {
        self.reading.sensor_type()
    }

    /// The descriptor tags.
    pub fn descriptor(&self) -> &Descriptor {
        &self.descriptor
    }

    /// Mutable descriptor access (used by phases).
    pub fn descriptor_mut(&mut self) -> &mut Descriptor {
        &mut self.descriptor
    }

    /// The quality assessment, if the quality phase ran.
    pub fn quality(&self) -> Option<&QualityReport> {
        self.quality.as_ref()
    }

    /// Records a quality assessment.
    pub fn set_quality(&mut self, report: QualityReport) {
        self.quality = Some(report);
    }

    /// Age class at `now_s` under `policy`, based on creation time.
    pub fn age_class(&self, now_s: u64, policy: &AgePolicy) -> AgeClass {
        policy.classify(now_s.saturating_sub(self.descriptor.created_s()))
    }

    /// Approximate wire size of this record in bytes (its Sentilo text
    /// encoding) — used for traffic accounting of record batches.
    pub fn wire_len(&self) -> u64 {
        scc_sensors::wire::encode(&self.reading).len() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityReport;
    use scc_sensors::{SensorId, Value};

    fn record(t: u64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Temperature, 0),
            t,
            Value::from_f64(20.0),
        ))
    }

    #[test]
    fn creation_time_comes_from_reading() {
        let rec = record(1234);
        assert_eq!(rec.descriptor().created_s(), 1234);
        assert_eq!(rec.reading().timestamp_s(), 1234);
    }

    #[test]
    fn age_class_uses_policy() {
        let rec = record(0);
        let p = AgePolicy::paper_default();
        assert_eq!(rec.age_class(10, &p), AgeClass::RealTime);
        assert_eq!(rec.age_class(10_000, &p), AgeClass::Recent);
        assert_eq!(rec.age_class(100_000, &p), AgeClass::Historical);
    }

    #[test]
    fn quality_is_settable_once_assessed() {
        let mut rec = record(0);
        rec.set_quality(QualityReport::perfect());
        assert!(rec.quality().unwrap().passed());
    }

    #[test]
    fn wire_len_matches_encoding() {
        let rec = record(99);
        let line = scc_sensors::wire::encode(rec.reading());
        assert_eq!(rec.wire_len(), line.len() as u64 + 1);
    }
}
