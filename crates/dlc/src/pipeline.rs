//! Ordered composition of phases within one block.

use crate::phase::{Block, Phase, PhaseContext, PhaseStats};
use crate::record::DataRecord;
use crate::{Error, Result};

/// An ordered list of phases, all from the same [`Block`].
///
/// # Examples
///
/// ```
/// use scc_dlc::{Block, Pipeline, PhaseContext};
/// use scc_dlc::acquisition::{CollectionPhase, FilteringPhase};
///
/// let mut p = Pipeline::new(Block::Acquisition);
/// p.push(Box::new(CollectionPhase::new()))?;
/// p.push(Box::new(FilteringPhase::paper_default()))?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), scc_dlc::Error>(())
/// ```
pub struct Pipeline {
    block: Block,
    phases: Vec<Box<dyn Phase>>,
    stats: Vec<PhaseStats>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("block", &self.block)
            .field(
                "phases",
                &self.phases.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Pipeline {
    /// An empty pipeline for `block`.
    pub fn new(block: Block) -> Self {
        Self {
            block,
            phases: Vec::new(),
            stats: Vec::new(),
        }
    }

    /// The pipeline's block.
    pub fn block(&self) -> Block {
        self.block
    }

    /// Appends a phase.
    ///
    /// # Errors
    ///
    /// [`Error::MixedBlocks`] if the phase belongs to a different block —
    /// the SCC-DLC model keeps blocks separate (Fig. 2).
    pub fn push(&mut self, phase: Box<dyn Phase>) -> Result<()> {
        if phase.block() != self.block {
            return Err(Error::MixedBlocks {
                expected: self.block.name(),
                found: phase.block().name(),
                phase: phase.name(),
            });
        }
        self.phases.push(phase);
        self.stats.push(PhaseStats::default());
        Ok(())
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the pipeline has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Runs the batch through every phase in order.
    pub fn run(&mut self, batch: Vec<DataRecord>, ctx: &PhaseContext) -> Vec<DataRecord> {
        let mut current = batch;
        for (phase, stats) in self.phases.iter_mut().zip(&mut self.stats) {
            let before = current.len();
            current = phase.run(current, ctx);
            stats.record_run(before, current.len());
        }
        current
    }

    /// `(name, stats)` for every phase, in order.
    pub fn stats(&self) -> Vec<(&'static str, PhaseStats)> {
        self.phases
            .iter()
            .zip(&self.stats)
            .map(|(p, s)| (p.name(), *s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Halver;
    impl Phase for Halver {
        fn name(&self) -> &'static str {
            "halver"
        }
        fn block(&self) -> Block {
            Block::Processing
        }
        fn run(&mut self, batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
            let keep = batch.len() / 2;
            batch.into_iter().take(keep).collect()
        }
    }

    struct WrongBlock;
    impl Phase for WrongBlock {
        fn name(&self) -> &'static str {
            "wrong"
        }
        fn block(&self) -> Block {
            Block::Preservation
        }
        fn run(&mut self, batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
            batch
        }
    }

    fn records(n: usize) -> Vec<DataRecord> {
        use scc_sensors::{Reading, SensorId, SensorType, Value};
        (0..n)
            .map(|i| {
                DataRecord::from_reading(Reading::new(
                    SensorId::new(SensorType::Traffic, i as u32),
                    0,
                    Value::Counter(i as u64),
                ))
            })
            .collect()
    }

    #[test]
    fn phases_run_in_order_with_stats() {
        let mut p = Pipeline::new(Block::Processing);
        p.push(Box::new(Halver)).unwrap();
        p.push(Box::new(Halver)).unwrap();
        let out = p.run(records(16), &PhaseContext::at(0));
        assert_eq!(out.len(), 4);
        let stats = p.stats();
        assert_eq!(stats[0].1.records_in, 16);
        assert_eq!(stats[0].1.records_out, 8);
        assert_eq!(stats[1].1.records_in, 8);
        assert_eq!(stats[1].1.records_out, 4);
    }

    #[test]
    fn mixed_blocks_rejected() {
        let mut p = Pipeline::new(Block::Processing);
        let err = p.push(Box::new(WrongBlock)).unwrap_err();
        assert!(matches!(err, Error::MixedBlocks { .. }));
        assert!(p.is_empty());
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let mut p = Pipeline::new(Block::Acquisition);
        let input = records(3);
        let out = p.run(input.clone(), &PhaseContext::at(0));
        assert_eq!(out, input);
    }

    #[test]
    fn debug_lists_phase_names() {
        let mut p = Pipeline::new(Block::Processing);
        p.push(Box::new(Halver)).unwrap();
        let dbg = format!("{p:?}");
        assert!(dbg.contains("halver"));
    }
}
