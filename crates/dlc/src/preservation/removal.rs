//! Data removal — the end of the life cycle. The paper considers data
//! "during their whole life cycle, from data acquisition … up to the data
//! destruction" (§I) and lists "an eventual data elimination" among the
//! model's properties (§VII). Removal is policy-driven: records expire by
//! age, with privacy-sensitive categories allowed a *shorter* maximum
//! retention than open data.

use scc_sensors::Category;

use crate::descriptor::PrivacyLevel;
use crate::preservation::ArchiveStore;

/// When records of a given class must be destroyed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemovalPolicy {
    /// Maximum age (seconds since creation) for public data; `None` keeps
    /// it forever.
    pub public_max_age_s: Option<u64>,
    /// Maximum age for restricted data.
    pub restricted_max_age_s: Option<u64>,
    /// Maximum age for private (or untagged — fail closed) data.
    pub private_max_age_s: Option<u64>,
}

impl RemovalPolicy {
    /// Open data forever, restricted 2 years, private 30 days — a typical
    /// municipal policy shape.
    pub fn paper_default() -> Self {
        Self {
            public_max_age_s: None,
            restricted_max_age_s: Some(2 * 365 * 86_400),
            private_max_age_s: Some(30 * 86_400),
        }
    }

    /// Maximum age for a privacy level (untagged = private, fail closed).
    pub fn max_age_for(&self, level: Option<PrivacyLevel>) -> Option<u64> {
        match level {
            Some(PrivacyLevel::Public) => self.public_max_age_s,
            Some(PrivacyLevel::Restricted) => self.restricted_max_age_s,
            Some(PrivacyLevel::Private) | None => self.private_max_age_s,
        }
    }
}

/// Outcome of one purge pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RemovalReport {
    /// Records examined.
    pub examined: u64,
    /// Records destroyed.
    pub removed: u64,
    /// Destroyed records per category (only non-zero entries).
    pub per_category: Vec<(Category, u64)>,
}

/// Destroys every record in `store` whose age at `now_s` exceeds its
/// privacy class's maximum under `policy`. Returns what was removed.
///
/// Unlike retention-driven *eviction* (which migrates data upward), removal
/// is terminal: destroyed records exist nowhere afterwards.
pub fn purge_expired(
    store: &mut ArchiveStore,
    policy: &RemovalPolicy,
    now_s: u64,
) -> RemovalReport {
    let mut report = RemovalReport::default();
    let mut survivors = Vec::new();
    let mut per_cat = std::collections::BTreeMap::new();
    for record in store.drain() {
        report.examined += 1;
        let age = now_s.saturating_sub(record.descriptor().created_s());
        let expired = policy
            .max_age_for(record.descriptor().privacy())
            .is_some_and(|max| age > max);
        if expired {
            report.removed += 1;
            *per_cat
                .entry(record.sensor_type().category())
                .or_insert(0u64) += 1;
        } else {
            survivors.push(record);
        }
    }
    for r in survivors {
        store.insert(r);
    }
    report.per_category = per_cat.into_iter().collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DataRecord;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn stored(ty: SensorType, created: u64, privacy: Option<PrivacyLevel>) -> DataRecord {
        let mut rec = DataRecord::from_reading(Reading::new(
            SensorId::new(ty, 0),
            created,
            Value::Counter(1),
        ));
        if let Some(p) = privacy {
            rec.descriptor_mut().set_privacy(p);
        }
        rec
    }

    #[test]
    fn public_data_is_kept_forever_by_default() {
        let mut store = ArchiveStore::new();
        store.insert(stored(SensorType::Weather, 0, Some(PrivacyLevel::Public)));
        let report = purge_expired(&mut store, &RemovalPolicy::paper_default(), u64::MAX);
        assert_eq!(report.removed, 0);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn private_data_expires_first() {
        let mut store = ArchiveStore::new();
        store.insert(stored(
            SensorType::ParkingSpot,
            0,
            Some(PrivacyLevel::Private),
        ));
        store.insert(stored(
            SensorType::ElectricityMeter,
            0,
            Some(PrivacyLevel::Restricted),
        ));
        store.insert(stored(SensorType::Weather, 0, Some(PrivacyLevel::Public)));
        // 31 days in: only private data is destroyed.
        let report = purge_expired(&mut store, &RemovalPolicy::paper_default(), 31 * 86_400);
        assert_eq!(report.removed, 1);
        assert_eq!(report.per_category, vec![(Category::Parking, 1)]);
        assert_eq!(store.len(), 2);
        // 3 years in: restricted goes too.
        let report = purge_expired(
            &mut store,
            &RemovalPolicy::paper_default(),
            3 * 365 * 86_400,
        );
        assert_eq!(report.removed, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn untagged_records_fail_closed_to_private_expiry() {
        let mut store = ArchiveStore::new();
        store.insert(stored(SensorType::Traffic, 0, None));
        let report = purge_expired(&mut store, &RemovalPolicy::paper_default(), 31 * 86_400);
        assert_eq!(report.removed, 1);
        assert!(store.is_empty());
    }

    #[test]
    fn survivors_keep_their_data_and_byte_accounting() {
        let mut store = ArchiveStore::new();
        for t in 0..10u64 {
            store.insert(stored(SensorType::Weather, t, Some(PrivacyLevel::Public)));
        }
        let bytes_before = store.wire_bytes();
        let report = purge_expired(&mut store, &RemovalPolicy::paper_default(), 100);
        assert_eq!(report.examined, 10);
        assert_eq!(report.removed, 0);
        assert_eq!(store.wire_bytes(), bytes_before);
        assert_eq!(store.len(), 10);
    }

    #[test]
    fn boundary_age_is_inclusive_keep() {
        // age == max is kept; age > max is destroyed.
        let policy = RemovalPolicy {
            public_max_age_s: Some(100),
            restricted_max_age_s: Some(100),
            private_max_age_s: Some(100),
        };
        let mut store = ArchiveStore::new();
        store.insert(stored(SensorType::Weather, 0, Some(PrivacyLevel::Public)));
        assert_eq!(purge_expired(&mut store, &policy, 100).removed, 0);
        assert_eq!(purge_expired(&mut store, &policy, 101).removed, 1);
    }
}
