//! The data preservation block (Fig. 2): classification, archive,
//! dissemination. In the F2C mapping these run mainly at the cloud
//! (permanent storage), with fog layers holding temporary tiers (§IV.B).

mod archive;
mod classification;
mod dissemination;
mod removal;

pub use archive::{ArchivePhase, ArchiveStore};
pub use classification::{ClassificationPhase, Lineage};
pub use dissemination::{AccessRole, OpenDataPortal, QueryFilter};
pub use removal::{purge_expired, RemovalPolicy, RemovalReport};
