//! Data classification: "classifying and ordering data before storing, and
//! eventually implementing the appropriate techniques for data versioning,
//! data lineage or data provenance" (§IV.B).

use std::collections::HashMap;

use scc_sensors::SensorId;

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;

/// Version and provenance chain for one sensor's record stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lineage {
    /// Number of records classified for this sensor so far.
    pub version: u64,
    /// Hash chained over every classified record (provenance digest).
    pub digest: u64,
}

/// Orders batches canonically (category, type, creation time, sensor) and
/// maintains a per-sensor version counter and provenance hash chain.
#[derive(Debug, Clone, Default)]
pub struct ClassificationPhase {
    lineage: HashMap<SensorId, Lineage>,
}

impl ClassificationPhase {
    /// Creates the phase.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current lineage for a sensor, if any record was classified.
    pub fn lineage_of(&self, sensor: SensorId) -> Option<Lineage> {
        self.lineage.get(&sensor).copied()
    }

    fn chain(digest: u64, rec: &DataRecord) -> u64 {
        // FNV-1a over the record's wire form, seeded with the prior digest.
        let mut h = digest ^ 0xcbf2_9ce4_8422_2325;
        for b in scc_sensors::wire::encode(rec.reading()).bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

impl Phase for ClassificationPhase {
    fn name(&self) -> &'static str {
        "data-classification"
    }

    fn block(&self) -> Block {
        Block::Preservation
    }

    fn run(&mut self, mut batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
        batch.sort_by_key(|r| {
            (
                r.sensor_type().category(),
                r.sensor_type(),
                r.descriptor().created_s(),
                r.reading().sensor(),
            )
        });
        for rec in &batch {
            let entry = self
                .lineage
                .entry(rec.reading().sensor())
                .or_insert(Lineage {
                    version: 0,
                    digest: 0,
                });
            entry.version += 1;
            entry.digest = Self::chain(entry.digest, rec);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorType, Value};

    fn rec(ty: SensorType, idx: u32, t: u64, v: u64) -> DataRecord {
        DataRecord::from_reading(Reading::new(SensorId::new(ty, idx), t, Value::Counter(v)))
    }

    #[test]
    fn batches_are_canonically_ordered() {
        let mut phase = ClassificationPhase::new();
        let batch = vec![
            rec(SensorType::Weather, 0, 50, 1),
            rec(SensorType::ElectricityMeter, 0, 99, 2),
            rec(SensorType::ElectricityMeter, 0, 10, 3),
            rec(SensorType::ParkingSpot, 0, 1, 4),
        ];
        let out = phase.run(batch, &PhaseContext::at(0));
        let types: Vec<SensorType> = out.iter().map(DataRecord::sensor_type).collect();
        // Energy < Parking < Urban in category order; within energy by time.
        assert_eq!(
            types,
            vec![
                SensorType::ElectricityMeter,
                SensorType::ElectricityMeter,
                SensorType::ParkingSpot,
                SensorType::Weather
            ]
        );
        assert_eq!(out[0].descriptor().created_s(), 10);
        assert_eq!(out[1].descriptor().created_s(), 99);
    }

    #[test]
    fn versions_count_per_sensor() {
        let mut phase = ClassificationPhase::new();
        let id_a = SensorId::new(SensorType::Traffic, 1);
        phase.run(
            vec![
                rec(SensorType::Traffic, 1, 0, 1),
                rec(SensorType::Traffic, 1, 1, 2),
                rec(SensorType::Traffic, 2, 0, 3),
            ],
            &PhaseContext::at(0),
        );
        assert_eq!(phase.lineage_of(id_a).unwrap().version, 2);
        assert_eq!(
            phase
                .lineage_of(SensorId::new(SensorType::Traffic, 2))
                .unwrap()
                .version,
            1
        );
        assert_eq!(
            phase.lineage_of(SensorId::new(SensorType::Traffic, 9)),
            None
        );
    }

    #[test]
    fn digest_depends_on_content_and_order() {
        let mut a = ClassificationPhase::new();
        let mut b = ClassificationPhase::new();
        // Same records, same order (classification sorts them identically).
        a.run(
            vec![
                rec(SensorType::Traffic, 1, 0, 1),
                rec(SensorType::Traffic, 1, 60, 2),
            ],
            &PhaseContext::at(0),
        );
        b.run(
            vec![rec(SensorType::Traffic, 1, 0, 1)],
            &PhaseContext::at(0),
        );
        b.run(
            vec![rec(SensorType::Traffic, 1, 60, 2)],
            &PhaseContext::at(60),
        );
        let id = SensorId::new(SensorType::Traffic, 1);
        // Chaining is incremental: batch split must not change the digest.
        assert_eq!(a.lineage_of(id), b.lineage_of(id));

        // Different content -> different digest.
        let mut c = ClassificationPhase::new();
        c.run(
            vec![
                rec(SensorType::Traffic, 1, 0, 9),
                rec(SensorType::Traffic, 1, 60, 2),
            ],
            &PhaseContext::at(0),
        );
        assert_ne!(
            a.lineage_of(id).unwrap().digest,
            c.lineage_of(id).unwrap().digest
        );
    }
}
