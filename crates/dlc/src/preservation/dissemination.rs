//! Data dissemination: "providing a user interface for public or private
//! access to stored data, and responsible for implementing any protection,
//! privacy or security policies according to the city business
//! requirements" (§IV.B).

use scc_sensors::Category;

use crate::descriptor::PrivacyLevel;
use crate::preservation::ArchiveStore;
use crate::record::DataRecord;
use crate::{Error, Result};

/// Who is asking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessRole {
    /// Anonymous open-data consumer.
    Public,
    /// An authenticated city service.
    CityService,
    /// Platform administration.
    Administrator,
}

impl AccessRole {
    /// Whether this role may read records at `level`.
    pub fn may_read(self, level: PrivacyLevel) -> bool {
        matches!(
            (self, level),
            (_, PrivacyLevel::Public)
                | (
                    AccessRole::CityService | AccessRole::Administrator,
                    PrivacyLevel::Restricted,
                )
                | (AccessRole::Administrator, PrivacyLevel::Private)
        )
    }
}

/// Query constraints for the portal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryFilter {
    /// Restrict to one category.
    pub category: Option<Category>,
    /// Creation-time range `[from_s, until_s)`; `None` means unbounded.
    pub range_s: Option<(u64, u64)>,
}

/// The open-data access interface over an [`ArchiveStore`].
///
/// # Examples
///
/// ```
/// use scc_dlc::preservation::{ArchiveStore, AccessRole, OpenDataPortal, QueryFilter};
/// use scc_dlc::{DataRecord, PrivacyLevel};
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let mut store = ArchiveStore::new();
/// let mut rec = DataRecord::from_reading(Reading::new(
///     SensorId::new(SensorType::Weather, 0), 100, Value::from_f64(20.0)));
/// rec.descriptor_mut().set_privacy(PrivacyLevel::Public);
/// store.insert(rec);
///
/// let portal = OpenDataPortal::new();
/// let hits = portal.query(&store, AccessRole::Public, QueryFilter::default())?;
/// assert_eq!(hits.len(), 1);
/// # Ok::<(), scc_dlc::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenDataPortal;

impl OpenDataPortal {
    /// Creates the portal.
    pub fn new() -> Self {
        Self
    }

    /// Queries `store` as `role`.
    ///
    /// Untagged records (no privacy level) are treated as
    /// [`PrivacyLevel::Private`] — fail closed.
    ///
    /// # Errors
    ///
    /// * [`Error::InvertedRange`] for a bad time range,
    /// * [`Error::AccessDenied`] when an explicit category request yields
    ///   only records the role may not read (the request was comprehensible
    ///   but forbidden, which is worth distinguishing from "no data").
    pub fn query<'a>(
        &self,
        store: &'a ArchiveStore,
        role: AccessRole,
        filter: QueryFilter,
    ) -> Result<Vec<&'a DataRecord>> {
        if let Some((from, until)) = filter.range_s {
            if until < from {
                return Err(Error::InvertedRange {
                    from_s: from,
                    until_s: until,
                });
            }
        }
        let mut denied = 0usize;
        let mut matched = 0usize;
        let mut out = Vec::new();
        for rec in store.iter() {
            if let Some(cat) = filter.category {
                if rec.sensor_type().category() != cat {
                    continue;
                }
            }
            if let Some((from, until)) = filter.range_s {
                let t = rec.descriptor().created_s();
                if t < from || t >= until {
                    continue;
                }
            }
            matched += 1;
            let level = rec.descriptor().privacy().unwrap_or(PrivacyLevel::Private);
            if role.may_read(level) {
                out.push(rec);
            } else {
                denied += 1;
            }
        }
        if matched > 0 && out.is_empty() && denied == matched {
            if let Some(cat) = filter.category {
                return Err(Error::AccessDenied {
                    provider: cat.provider().to_owned(),
                    policy: "privacy",
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn stored(ty: SensorType, t: u64, privacy: Option<PrivacyLevel>) -> DataRecord {
        let mut rec =
            DataRecord::from_reading(Reading::new(SensorId::new(ty, 0), t, Value::Counter(1)));
        if let Some(p) = privacy {
            rec.descriptor_mut().set_privacy(p);
        }
        rec
    }

    fn store() -> ArchiveStore {
        let mut s = ArchiveStore::new();
        s.insert(stored(SensorType::Weather, 10, Some(PrivacyLevel::Public)));
        s.insert(stored(
            SensorType::ElectricityMeter,
            20,
            Some(PrivacyLevel::Restricted),
        ));
        s.insert(stored(SensorType::ParkingSpot, 30, None)); // untagged
        s
    }

    #[test]
    fn public_sees_only_public() {
        let s = store();
        let portal = OpenDataPortal::new();
        let hits = portal
            .query(&s, AccessRole::Public, QueryFilter::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].sensor_type(), SensorType::Weather);
    }

    #[test]
    fn city_service_sees_restricted_too() {
        let s = store();
        let portal = OpenDataPortal::new();
        let hits = portal
            .query(&s, AccessRole::CityService, QueryFilter::default())
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn administrator_sees_untagged_fail_closed_records() {
        let s = store();
        let portal = OpenDataPortal::new();
        let hits = portal
            .query(&s, AccessRole::Administrator, QueryFilter::default())
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn explicit_forbidden_category_is_an_error() {
        let s = store();
        let portal = OpenDataPortal::new();
        let err = portal
            .query(
                &s,
                AccessRole::Public,
                QueryFilter {
                    category: Some(Category::Energy),
                    range_s: None,
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::AccessDenied { .. }));
    }

    #[test]
    fn empty_category_is_not_an_error() {
        let s = store();
        let portal = OpenDataPortal::new();
        let hits = portal
            .query(
                &s,
                AccessRole::Public,
                QueryFilter {
                    category: Some(Category::Noise),
                    range_s: None,
                },
            )
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn time_range_filters() {
        let s = store();
        let portal = OpenDataPortal::new();
        let hits = portal
            .query(
                &s,
                AccessRole::Administrator,
                QueryFilter {
                    category: None,
                    range_s: Some((15, 31)),
                },
            )
            .unwrap();
        assert_eq!(hits.len(), 2);
        let err = portal
            .query(
                &s,
                AccessRole::Administrator,
                QueryFilter {
                    category: None,
                    range_s: Some((31, 15)),
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::InvertedRange { .. }));
    }

    #[test]
    fn role_matrix() {
        assert!(AccessRole::Public.may_read(PrivacyLevel::Public));
        assert!(!AccessRole::Public.may_read(PrivacyLevel::Restricted));
        assert!(!AccessRole::Public.may_read(PrivacyLevel::Private));
        assert!(AccessRole::CityService.may_read(PrivacyLevel::Restricted));
        assert!(!AccessRole::CityService.may_read(PrivacyLevel::Private));
        assert!(AccessRole::Administrator.may_read(PrivacyLevel::Private));
    }
}
