//! Data archive: "storing data for short and long terms consumption"
//! (§II). [`ArchiveStore`] is the storage tier used at every F2C layer —
//! temporary at fog 1 and fog 2, permanent at the cloud — with the
//! time-based eviction that implements the paper's "reversed memory
//! hierarchy" upward migration (§IV.B).

use std::collections::BTreeMap;

use scc_sensors::Category;

use crate::phase::{Block, Phase, PhaseContext};
use crate::record::DataRecord;
use crate::{Error, Result};

/// A time-indexed record store.
///
/// Records are keyed by `(creation time, insertion sequence)`, so range
/// queries by data age are cheap and eviction pops the oldest data first.
///
/// # Examples
///
/// ```
/// use scc_dlc::preservation::ArchiveStore;
/// use scc_dlc::DataRecord;
/// use scc_sensors::{Reading, SensorId, SensorType, Value};
///
/// let mut store = ArchiveStore::new();
/// for t in 0..10u64 {
///     let r = Reading::new(SensorId::new(SensorType::Traffic, 0), t * 100, Value::Counter(t));
///     store.insert(DataRecord::from_reading(r));
/// }
/// assert_eq!(store.len(), 10);
/// assert_eq!(store.query_range(200, 500).unwrap().len(), 3); // t=200,300,400
/// let evicted = store.evict_older_than(500);
/// assert_eq!(evicted.len(), 5);
/// assert_eq!(store.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ArchiveStore {
    records: BTreeMap<(u64, u64), DataRecord>,
    seq: u64,
    wire_bytes: u64,
}

impl ArchiveStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one record.
    pub fn insert(&mut self, record: DataRecord) {
        let key = (record.descriptor().created_s(), self.seq);
        self.seq += 1;
        self.wire_bytes += record.wire_len();
        self.records.insert(key, record);
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total wire-encoded size of the stored records.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Creation time of the oldest stored record.
    pub fn earliest_s(&self) -> Option<u64> {
        self.records.keys().next().map(|(t, _)| *t)
    }

    /// Creation time of the newest stored record.
    pub fn latest_s(&self) -> Option<u64> {
        self.records.keys().next_back().map(|(t, _)| *t)
    }

    /// Records created in `[from_s, until_s)`.
    ///
    /// # Errors
    ///
    /// [`Error::InvertedRange`] if `until_s < from_s`.
    pub fn query_range(&self, from_s: u64, until_s: u64) -> Result<Vec<&DataRecord>> {
        if until_s < from_s {
            return Err(Error::InvertedRange { from_s, until_s });
        }
        Ok(self.range(from_s, until_s).collect())
    }

    /// Iterates records created in `[from_s, until_s)`, oldest first,
    /// without materializing them. An inverted range yields nothing.
    ///
    /// This is the scan primitive for the query layer: consumers filter
    /// and fold in place instead of cloning the archive slice.
    pub fn range(&self, from_s: u64, until_s: u64) -> impl DoubleEndedIterator<Item = &DataRecord> {
        let until_s = until_s.max(from_s);
        self.records
            .range((from_s, 0)..(until_s, 0))
            .map(|(_, r)| r)
    }

    /// All records of one category, oldest first.
    pub fn query_category(&self, category: Category) -> Vec<&DataRecord> {
        self.records
            .values()
            .filter(|r| r.sensor_type().category() == category)
            .collect()
    }

    /// Removes and returns every record created strictly before
    /// `deadline_s`, oldest first — the upward-migration primitive.
    pub fn evict_older_than(&mut self, deadline_s: u64) -> Vec<DataRecord> {
        let keep = self.records.split_off(&(deadline_s, 0));
        let evicted: Vec<DataRecord> = std::mem::replace(&mut self.records, keep)
            .into_values()
            .collect();
        for r in &evicted {
            self.wire_bytes -= r.wire_len();
        }
        evicted
    }

    /// Removes everything, returning it oldest first.
    pub fn drain(&mut self) -> Vec<DataRecord> {
        self.wire_bytes = 0;
        std::mem::take(&mut self.records).into_values().collect()
    }

    /// Iterates stored records oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &DataRecord> {
        self.records.values()
    }
}

/// Pass-through phase that archives every record it sees.
#[derive(Debug, Clone, Default)]
pub struct ArchivePhase {
    store: ArchiveStore,
}

impl ArchivePhase {
    /// Creates the phase with an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying store.
    pub fn store(&self) -> &ArchiveStore {
        &self.store
    }

    /// Mutable store access (eviction, migration).
    pub fn store_mut(&mut self) -> &mut ArchiveStore {
        &mut self.store
    }
}

impl Phase for ArchivePhase {
    fn name(&self) -> &'static str {
        "data-archive"
    }

    fn block(&self) -> Block {
        Block::Preservation
    }

    fn run(&mut self, batch: Vec<DataRecord>, _ctx: &PhaseContext) -> Vec<DataRecord> {
        for rec in &batch {
            self.store.insert(rec.clone());
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(ty: SensorType, idx: u32, t: u64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(ty, idx),
            t,
            Value::Counter(u64::from(idx)),
        ))
    }

    #[test]
    fn range_queries_are_half_open() {
        let mut s = ArchiveStore::new();
        for t in [100u64, 200, 300] {
            s.insert(rec(SensorType::Traffic, 0, t));
        }
        assert_eq!(s.query_range(100, 300).unwrap().len(), 2);
        assert_eq!(s.query_range(100, 301).unwrap().len(), 3);
        assert_eq!(s.query_range(0, 100).unwrap().len(), 0);
    }

    #[test]
    fn range_iterates_without_allocation_and_reverses() {
        let mut s = ArchiveStore::new();
        for t in [100u64, 200, 300] {
            s.insert(rec(SensorType::Traffic, 0, t));
        }
        let fwd: Vec<u64> = s
            .range(100, 301)
            .map(|r| r.descriptor().created_s())
            .collect();
        assert_eq!(fwd, [100, 200, 300]);
        let newest = s.range(0, 1_000).next_back().unwrap();
        assert_eq!(newest.descriptor().created_s(), 300);
        // Inverted ranges are empty rather than panicking.
        assert_eq!(s.range(300, 100).count(), 0);
    }

    #[test]
    fn inverted_range_rejected() {
        let s = ArchiveStore::new();
        assert!(matches!(
            s.query_range(10, 5),
            Err(Error::InvertedRange { .. })
        ));
    }

    #[test]
    fn duplicate_timestamps_are_all_kept() {
        let mut s = ArchiveStore::new();
        for i in 0..5 {
            s.insert(rec(SensorType::Traffic, i, 100));
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.query_range(100, 101).unwrap().len(), 5);
    }

    #[test]
    fn eviction_is_oldest_first_and_updates_bytes() {
        let mut s = ArchiveStore::new();
        for t in [300u64, 100, 200] {
            s.insert(rec(SensorType::ParkingSpot, 0, t));
        }
        let before = s.wire_bytes();
        let evicted = s.evict_older_than(250);
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].descriptor().created_s(), 100);
        assert_eq!(evicted[1].descriptor().created_s(), 200);
        assert_eq!(s.len(), 1);
        assert!(s.wire_bytes() < before);
        assert_eq!(s.earliest_s(), Some(300));
    }

    #[test]
    fn category_query_filters() {
        let mut s = ArchiveStore::new();
        s.insert(rec(SensorType::Traffic, 0, 1));
        s.insert(rec(SensorType::ElectricityMeter, 0, 2));
        s.insert(rec(SensorType::BicycleFlow, 0, 3));
        assert_eq!(s.query_category(Category::Urban).len(), 2);
        assert_eq!(s.query_category(Category::Energy).len(), 1);
        assert_eq!(s.query_category(Category::Noise).len(), 0);
    }

    #[test]
    fn drain_empties_everything() {
        let mut s = ArchiveStore::new();
        s.insert(rec(SensorType::Weather, 0, 5));
        let all = s.drain();
        assert_eq!(all.len(), 1);
        assert!(s.is_empty());
        assert_eq!(s.wire_bytes(), 0);
        assert_eq!(s.earliest_s(), None);
    }

    #[test]
    fn archive_phase_is_pass_through_with_side_effect() {
        let mut phase = ArchivePhase::new();
        let batch = vec![
            rec(SensorType::Weather, 0, 1),
            rec(SensorType::Weather, 1, 2),
        ];
        let out = phase.run(batch.clone(), &PhaseContext::at(10));
        assert_eq!(out, batch);
        assert_eq!(phase.store().len(), 2);
    }
}
