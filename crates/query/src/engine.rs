//! The query engine: tiered caches in front of a planner-routed executor
//! over an [`F2cCity`].
//!
//! Serving order per query:
//!
//! 1. **edge cache** at the requester's fog-1 node (free — no network),
//! 2. plan the cheapest provably-complete route (§IV.C cost model):
//!    one source, or a scatter-gather fan-out merged at the requester's
//!    fog-2,
//! 3. **source cache** at the planned source (or the gather node for a
//!    fan-out — pays the route, skips the scan),
//! 4. **admission control** — class-aware per-layer quotas (the
//!    [`f2c_qos`] ledger): every request charges its service class's
//!    quota at the planned layer(s); a fan-out occupies one class-tagged
//!    slot *per leg* at each leg's layer. A class over its quota is shed
//!    — lowest-priority first, and never out of another class's
//!    guaranteed share — unless a priced fallback route (the losing side
//!    of a fan-out-vs-cloud contest) still fits the class's deadline
//!    budget, in which case the query is *rerouted* instead. Routes
//!    whose transport estimate already busts the deadline budget are
//!    shed at plan time, before holding any slot,
//! 5. **execute** against the tiered store(s): point/range scans over
//!    the iterator range-read API, aggregates assembled from mergeable
//!    bucket partials (cached per flush epoch); fan-out legs merge
//!    through [`crate::scatter`].
//!
//! Estimated latency composes the cost model's transfer time with a
//! per-record scan cost, so a warm cache hit is strictly cheaper than the
//! cold path that computed it.

use citysim::time::Duration;
use f2c_core::cost::AccessOption;
use f2c_core::node::IngestOutcome;
use f2c_core::{
    ChaosSite, DataSource, F2cCity, FanoutLeg, IncidentKind, Layer, ObsScratch, TieredStore,
};
use f2c_obs::{CounterId, Labels, MetricsRegistry, Site};
use f2c_qos::{ClassLedger, QosPolicy, ServiceClass, ShedCause, CLASS_COUNT};
use scc_dlc::DataRecord;
use scc_sensors::Reading;

use f2c_aggregate::sketch::SketchLedger;
use scc_sensors::SensorType;

use crate::cache::{CacheKey, NodeKey, PartialCache, PartialKey, ResultCache};
use crate::model::{
    absorb_record, finalize, AggPartial, PointSample, Query, QueryAnswer, QueryKind, Scope,
};
use crate::planner::{self, Choice, QueryPlan, ScatterPlan};
use crate::{Error, Result};

/// Per-layer in-flight request caps (admission control).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCaps {
    /// Concurrent store-executions across all fog-1 nodes.
    pub fog1: u32,
    /// Concurrent store-executions across all fog-2 nodes.
    pub fog2: u32,
    /// Concurrent store-executions at the cloud.
    pub cloud: u32,
}

impl Default for LayerCaps {
    fn default() -> Self {
        Self {
            fog1: 4_096,
            fog2: 256,
            cloud: 64,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Result-cache TTL in simulated seconds.
    pub result_ttl_s: u64,
    /// Capacity of each per-node result cache.
    pub result_capacity: usize,
    /// Capacity of the shared bucket-partial cache.
    pub partial_capacity: usize,
    /// Admission caps.
    pub caps: LayerCaps,
    /// Per-class quotas, priorities and deadline budgets carving up the
    /// layer caps.
    pub qos: QosPolicy,
    /// Modeled cost of visiting one archived record during a scan.
    pub scan_cost_per_record_us: u64,
    /// Request envelope size for network metering.
    pub request_bytes: u64,
    /// Aggregation bucket width (seconds).
    pub bucket_s: u64,
    /// Largest answer payload worth caching: bulky range answers are
    /// cheaper to re-scan than to hold in dozens of per-node caches.
    pub max_cache_entry_bytes: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            result_ttl_s: 120,
            result_capacity: 512,
            partial_capacity: 16_384,
            caps: LayerCaps::default(),
            qos: QosPolicy::default(),
            scan_cost_per_record_us: 2,
            request_bytes: 200,
            bucket_s: 900,
            max_cache_entry_bytes: 64 * 1024,
        }
    }
}

/// How an answered query was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// Result cache at the requester's own fog-1 node.
    EdgeCache,
    /// Result cache at the planned source node.
    SourceCache(DataSource),
    /// Executed against the source's tiered store.
    Store(DataSource),
    /// Scatter-gather: executed against `legs` fog stores and merged at
    /// the requester's fog-2.
    Scatter {
        /// Number of fan-out legs executed.
        legs: u32,
    },
}

/// How much of the planned coverage an answer actually represents.
///
/// The chaos plane's degradation invariant: injected faults remove
/// *sources*, never records from surviving sources — so a degraded
/// scatter-gather returns the exact answer over its surviving legs,
/// annotated `Partial`, instead of erroring or silently passing off a
/// subset as the whole. Partial answers are never cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// Every planned source contributed.
    Complete,
    /// Injected faults removed part of the fan-out; the answer covers
    /// exactly the surviving legs.
    Partial {
        /// Legs shed because their node was crashed or unreachable.
        legs_shed: u32,
        /// Legs the plan wanted.
        legs_total: u32,
    },
}

impl Completeness {
    /// Whether every planned source contributed.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// Per-layer admission slots an in-flight response occupies until
/// [`QueryEngine::release_held`], tagged with the service class whose
/// quota they charge. Single-source store executions hold one slot;
/// scatter-gather holds one per leg at each leg's layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldSlots {
    class: ServiceClass,
    slots: [u32; 3],
}

impl HeldSlots {
    /// No slots held (cache hits).
    pub fn none() -> Self {
        Self {
            class: ServiceClass::RealTime,
            slots: [0; 3],
        }
    }

    /// One `class` slot at `layer` (single-source store executions).
    pub fn single(layer: Layer, class: ServiceClass) -> Self {
        let mut slots = [0; 3];
        slots[layer.index()] = 1;
        Self { class, slots }
    }

    /// Exactly the given per-layer slots for `class` — what a
    /// reduced-cost warm-sketch admission actually charged (often
    /// nothing; see [`f2c_qos::ClassLedger::try_acquire_sketch`]).
    pub fn from_slots(class: ServiceClass, slots: [u32; 3]) -> Self {
        Self { class, slots }
    }

    /// An empty holding for `class` (build fan-outs with
    /// [`HeldSlots::add`]).
    fn empty(class: ServiceClass) -> Self {
        Self {
            class,
            slots: [0; 3],
        }
    }

    /// Slots held at `layer`.
    pub fn at(&self, layer: Layer) -> u32 {
        self.slots[layer.index()]
    }

    /// The class whose quota the slots charge.
    pub fn class(&self) -> ServiceClass {
        self.class
    }

    /// The raw per-layer slot counts (fog 1, fog 2, cloud).
    pub fn slots(&self) -> [u32; 3] {
        self.slots
    }

    /// Whether nothing is held.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&c| c == 0)
    }

    fn add(&mut self, layer: Layer, count: u32) {
        self.slots[layer.index()] += count;
    }
}

impl Default for HeldSlots {
    fn default() -> Self {
        Self::none()
    }
}

/// One answered query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The answer.
    pub answer: QueryAnswer,
    /// How it was served.
    pub via: ServedVia,
    /// The layer that served it (edge hits count as fog 1).
    pub layer: Layer,
    /// Cost-model transfer time plus scan time.
    pub est_latency: Duration,
    /// Response payload size.
    pub response_bytes: u64,
    /// The per-layer slots this request occupies until
    /// [`QueryEngine::release_held`] (store executions only; cache hits
    /// hold nothing).
    pub held: HeldSlots,
    /// Whether every planned source contributed, or faults degraded the
    /// answer to its surviving legs.
    pub completeness: Completeness,
}

/// What happened to one served query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Answered (possibly from cache).
    Answered(QueryResponse),
    /// Rejected: quota pressure at the planned layer, or a route that
    /// cannot meet the class's deadline budget. Carries the requester's
    /// context so retry/abandon logic and per-class accounting never
    /// have to re-derive it from the query.
    Shed {
        /// The layer whose quota refused (or whose route busted the
        /// deadline).
        layer: Layer,
        /// The service class that was refused.
        class: ServiceClass,
        /// Why it was refused.
        cause: ShedCause,
    },
}

/// Per-service-class serving counters, indexed by
/// [`ServiceClass::index`] inside [`EngineStats::per_class`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Queries of this class offered to [`QueryEngine::serve`].
    pub requests: u64,
    /// Queries answered (any path).
    pub answered: u64,
    /// Queries shed by quota pressure ([`ShedCause::Capacity`]).
    pub shed: u64,
    /// Queries shed at plan time because no provably-complete route fit
    /// the class deadline budget ([`ShedCause::Deadline`]).
    pub deadline_shed: u64,
    /// Queries whose planned route was saturated but which were served
    /// by the in-budget fallback route instead of shedding.
    pub rerouted: u64,
    /// Queries shed because an injected fault made every viable route
    /// unserveable ([`ShedCause::Fault`]).
    pub fault_shed: u64,
    /// Answered queries whose estimated latency met the class deadline.
    pub slo_met: u64,
}

impl ClassStats {
    /// Fraction of this class's requests that were shed (either cause).
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.shed + self.deadline_shed) as f64 / self.requests as f64
        }
    }

    /// Fraction of answered queries that met the class deadline.
    pub fn slo_attainment(&self) -> f64 {
        if self.answered == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.answered as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot (how a
    /// workload run scopes lifetime engine counters to itself).
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            requests: self.requests - earlier.requests,
            answered: self.answered - earlier.answered,
            shed: self.shed - earlier.shed,
            deadline_shed: self.deadline_shed - earlier.deadline_shed,
            rerouted: self.rerouted - earlier.rerouted,
            fault_shed: self.fault_shed - earlier.fault_shed,
            slo_met: self.slo_met - earlier.slo_met,
        }
    }
}

/// Serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries offered to [`QueryEngine::serve`].
    pub requests: u64,
    /// Queries answered (any path).
    pub answered: u64,
    /// Edge result-cache hits.
    pub edge_hits: u64,
    /// Source result-cache hits.
    pub source_hits: u64,
    /// Queries executed against a store.
    pub store_served: u64,
    /// Queries no layer could answer completely.
    pub unanswerable: u64,
    /// Capacity sheds per layer (fog 1, fog 2, cloud).
    pub shed: [u64; 3],
    /// Per-service-class counters (requests, sheds, SLO attainment),
    /// indexed by [`ServiceClass::index`].
    pub per_class: [ClassStats; CLASS_COUNT],
    /// Archive records visited by scans.
    pub records_scanned: u64,
    /// Bucket partials served from cache.
    pub partial_hits: u64,
    /// Bucket partials folded and cached.
    pub partial_fills: u64,
    /// Buckets assembled from the node's **sketch ledger** (flush-shipped
    /// pre-folded partials) instead of scanning the archive — the write
    /// path's decomposability payoff showing up at serving time.
    pub prefold_hits: u64,
    /// Queries answered from a fog-1 node's warm sketches after the raw
    /// window was evicted ([`f2c_core::DataSource::WarmSketch`]).
    pub sketch_served: u64,
    /// Ledger partials merged by warm-sketch serving (single-source and
    /// scatter legs).
    pub sketch_hits: u64,
    /// Scatter-gather legs executed from warm sketches instead of raw
    /// shards.
    pub sketch_legs: u64,
    /// Queries served by scatter-gather fan-out.
    pub scatter_served: u64,
    /// Fan-out legs executed across all scatter-gather queries.
    pub scatter_legs: u64,
    /// Contested routes (fan-out and cloud both provably complete) the
    /// fan-out won.
    pub scatter_wins: u64,
    /// Contested routes the single-source cloud read won.
    pub cloud_wins: u64,
    /// Queries shed because an injected fault left no viable route
    /// (origin crashed, every source unreachable, or a transfer lost).
    pub fault_shed: u64,
    /// Scatter-gather legs dropped from fan-outs because their node was
    /// crashed or unreachable.
    pub legs_shed: u64,
    /// Answered queries degraded to [`Completeness::Partial`].
    pub degraded: u64,
}

impl EngineStats {
    /// Total capacity sheds across layers.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// The counters of one service class.
    pub fn class(&self, class: ServiceClass) -> &ClassStats {
        &self.per_class[class.index()]
    }

    /// Total deadline sheds across classes.
    pub fn deadline_shed_total(&self) -> u64 {
        self.per_class.iter().map(|c| c.deadline_shed).sum()
    }

    /// Fraction of answered queries served from a result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            (self.edge_hits + self.source_hits) as f64 / self.answered as f64
        }
    }
}

/// Static layer label for metric label sets (`layer=fog1`, …).
pub(crate) fn layer_label(layer: Layer) -> &'static str {
    match layer {
        Layer::Fog1 => "fog1",
        Layer::Fog2 => "fog2",
        Layer::Cloud => "cloud",
    }
}

/// Pre-resolved ids of one service class's counter series.
#[derive(Debug, Clone, Copy)]
struct ClassIds {
    requests: CounterId,
    answered: CounterId,
    shed: CounterId,
    deadline_shed: CounterId,
    rerouted: CounterId,
    fault_shed: CounterId,
    slo_met: CounterId,
}

/// Pre-resolved ids of every engine series in the city's unified
/// [`MetricsRegistry`]. The engine registers these once at construction
/// and publishes through them on the hot path (an array index, not a
/// map lookup); [`QueryEngine::stats`] reads them back as the typed
/// [`EngineStats`] view.
#[derive(Debug, Clone, Copy)]
struct EngineMetricIds {
    requests: CounterId,
    answered: CounterId,
    edge_hits: CounterId,
    source_hits: CounterId,
    store_served: CounterId,
    unanswerable: CounterId,
    shed: [CounterId; 3],
    records_scanned: CounterId,
    partial_hits: CounterId,
    partial_fills: CounterId,
    prefold_hits: CounterId,
    sketch_served: CounterId,
    sketch_hits: CounterId,
    sketch_legs: CounterId,
    scatter_served: CounterId,
    scatter_legs: CounterId,
    scatter_wins: CounterId,
    cloud_wins: CounterId,
    fault_shed: CounterId,
    legs_shed: CounterId,
    degraded: CounterId,
    per_class: [ClassIds; CLASS_COUNT],
}

impl EngineMetricIds {
    fn register(reg: &mut MetricsRegistry) -> Self {
        let q = Labels::new().service("query");
        let shed = Layer::ALL
            .map(|layer| reg.counter("query_shed", q.layer(layer_label(layer)).kind("capacity")));
        let per_class = ServiceClass::ALL.map(|class| {
            let lc = q.class(class.label());
            ClassIds {
                requests: reg.counter("query_class_requests", lc),
                answered: reg.counter("query_class_answered", lc),
                shed: reg.counter("query_class_shed", lc.kind("capacity")),
                deadline_shed: reg.counter("query_class_shed", lc.kind("deadline")),
                rerouted: reg.counter("query_class_rerouted", lc),
                fault_shed: reg.counter("query_class_shed", lc.kind("fault")),
                slo_met: reg.counter("query_class_slo_met", lc),
            }
        });
        Self {
            requests: reg.counter("query_requests", q),
            answered: reg.counter("query_answered", q),
            edge_hits: reg.counter("query_cache_hits", q.kind("edge")),
            source_hits: reg.counter("query_cache_hits", q.kind("source")),
            store_served: reg.counter("query_store_served", q),
            unanswerable: reg.counter("query_unanswerable", q),
            shed,
            records_scanned: reg.counter("query_records_scanned", q),
            partial_hits: reg.counter("query_partials", q.kind("hit")),
            partial_fills: reg.counter("query_partials", q.kind("fill")),
            prefold_hits: reg.counter("query_partials", q.kind("prefold")),
            sketch_served: reg.counter("query_sketch_served", q),
            sketch_hits: reg.counter("query_sketch_hits", q),
            sketch_legs: reg.counter("query_sketch_legs", q),
            scatter_served: reg.counter("query_scatter_served", q),
            scatter_legs: reg.counter("query_scatter_legs", q),
            scatter_wins: reg.counter("query_contest_wins", q.kind("scatter")),
            cloud_wins: reg.counter("query_contest_wins", q.kind("cloud")),
            fault_shed: reg.counter("query_fault_shed", q),
            legs_shed: reg.counter("query_legs_shed", q),
            degraded: reg.counter("query_degraded", q),
            per_class,
        }
    }
}

/// What one [`fold_aggregate`] call did with its closed buckets. A local
/// tally (instead of a registry borrow) keeps the fold free to borrow
/// the city's stores; the caller publishes it afterwards.
#[derive(Debug, Clone, Copy, Default)]
struct FoldTally {
    partial_hits: u64,
    prefold_hits: u64,
    partial_fills: u64,
}

/// The serving core: everything [`QueryEngine::serve`] mutates *except*
/// the city itself — caches, the admission ledger, the invalidation
/// frontier, and an [`ObsScratch`] of buffered observability.
///
/// Serving only ever *reads* the city (`&F2cCity`): metrics, spans,
/// incidents and network metering land in the scratch, which the owner
/// absorbs into the city at a barrier (the sequential engine drains
/// after every serve, so its observables are indistinguishable from
/// direct publication). That split is what lets district shards serve
/// concurrently against a shared city snapshot and still merge into a
/// byte-identical global view in canonical shard order.
#[derive(Debug)]
pub(crate) struct ServeCore {
    pub(crate) cfg: EngineConfig,
    edge: Vec<ResultCache>,
    src_fog1: Vec<ResultCache>,
    src_fog2: Vec<ResultCache>,
    src_cloud: ResultCache,
    partials: PartialCache,
    pub(crate) ledger: ClassLedger,
    pub(crate) last_flush_s: u64,
    /// Latest instant any query was served at — the frontier behind
    /// which cached results and closed-bucket partials assume no new
    /// records will appear.
    pub(crate) served_frontier_s: u64,
    /// Local invalidations (backdated ingests) added on top of the
    /// hierarchy's flush epoch.
    pub(crate) extra_epochs: u64,
    ids: EngineMetricIds,
    /// Buffered observability, absorbed by the owner at barriers.
    pub(crate) obs: ObsScratch,
}

/// The consumer-facing query engine over an assembled city: a
/// `ServeCore` plus the city it serves, drained after every call so
/// the city's unified registry/tracer/timeline stay the one source of
/// truth for sequential callers.
#[derive(Debug)]
pub struct QueryEngine {
    city: F2cCity,
    core: ServeCore,
    /// The engine's series ids in the *city's* registry (the scratch
    /// deltas absorb into these); [`QueryEngine::stats`] reads them.
    city_ids: EngineMetricIds,
}

impl QueryEngine {
    /// Wraps `city` with caches and admission control per `cfg`. The
    /// engine's serving counters live in the city's unified
    /// [`MetricsRegistry`] (registered here, accumulated from the
    /// serving core's scratch after every serve).
    pub fn new(mut city: F2cCity, cfg: EngineConfig) -> Self {
        let city_ids = EngineMetricIds::register(city.metrics_mut());
        let core = ServeCore::new(cfg, city.section_count());
        Self {
            city,
            core,
            city_ids,
        }
    }

    /// The wrapped city.
    pub fn city(&self) -> &F2cCity {
        &self.city
    }

    /// Mutable access to the wrapped city, for chaos-plane fault
    /// injection between serving phases.
    pub fn city_mut(&mut self) -> &mut F2cCity {
        &mut self.city
    }

    /// The serving core and the city it serves, borrowed apart — how
    /// the parallel workload runtime drives shard-owned cores against
    /// the shared city between barriers.
    pub(crate) fn core_parts(&mut self) -> (&mut ServeCore, &mut F2cCity) {
        (&mut self.core, &mut self.city)
    }

    /// Serving counters so far — the typed view over the engine's series
    /// in the city's unified metrics registry (one source of truth; this
    /// just reads it back in [`EngineStats`] shape).
    pub fn stats(&self) -> EngineStats {
        let m = self.city.metrics();
        let v = |id: CounterId| m.counter_value(id);
        let ids = &self.city_ids;
        let mut per_class = [ClassStats::default(); CLASS_COUNT];
        for (cs, cid) in per_class.iter_mut().zip(ids.per_class.iter()) {
            *cs = ClassStats {
                requests: v(cid.requests),
                answered: v(cid.answered),
                shed: v(cid.shed),
                deadline_shed: v(cid.deadline_shed),
                rerouted: v(cid.rerouted),
                fault_shed: v(cid.fault_shed),
                slo_met: v(cid.slo_met),
            };
        }
        EngineStats {
            requests: v(ids.requests),
            answered: v(ids.answered),
            edge_hits: v(ids.edge_hits),
            source_hits: v(ids.source_hits),
            store_served: v(ids.store_served),
            unanswerable: v(ids.unanswerable),
            shed: ids.shed.map(v),
            per_class,
            records_scanned: v(ids.records_scanned),
            partial_hits: v(ids.partial_hits),
            partial_fills: v(ids.partial_fills),
            prefold_hits: v(ids.prefold_hits),
            sketch_served: v(ids.sketch_served),
            sketch_hits: v(ids.sketch_hits),
            sketch_legs: v(ids.sketch_legs),
            scatter_served: v(ids.scatter_served),
            scatter_legs: v(ids.scatter_legs),
            scatter_wins: v(ids.scatter_wins),
            cloud_wins: v(ids.cloud_wins),
            fault_shed: v(ids.fault_shed),
            legs_shed: v(ids.legs_shed),
            degraded: v(ids.degraded),
        }
    }

    /// Publishes point-in-time gauges (per-layer in-flight admissions
    /// and the cache-invalidation epoch) into the city's registry. Call
    /// before taking a snapshot — gauges describe an instant, so they
    /// sync at export time instead of on every acquire/release.
    pub fn sync_gauges(&mut self) {
        let q = Labels::new().service("query");
        for layer in Layer::ALL {
            let total = i64::from(self.core.ledger.layer_total(layer));
            let m = self.city.metrics_mut();
            let g = m.gauge("qos_in_flight", q.layer(layer_label(layer)));
            m.set(g, total);
        }
        let epoch = (self.city.flush_epoch() + self.core.extra_epochs) as i64;
        let m = self.city.metrics_mut();
        let g = m.gauge("invalidation_epoch", q);
        m.set(g, epoch);
    }

    /// When the hierarchy last flushed through this engine — the settled
    /// frontier workload generators can safely query district windows up
    /// to.
    pub fn last_flush_s(&self) -> u64 {
        self.core.last_flush_s
    }

    /// In-flight store executions at `layer`, all classes.
    pub fn in_flight(&self, layer: Layer) -> u32 {
        self.core.ledger.layer_total(layer)
    }

    /// The class-aware admission ledger (per-class in-flight counts,
    /// guarantees and borrow caps).
    pub fn ledger(&self) -> &ClassLedger {
        &self.core.ledger
    }

    /// Ingests a sensor wave at a section's fog-1 node. The write path
    /// runs through the engine so the cache frontier invariant is
    /// *enforced*, not assumed: a reading backdated behind any already
    /// served instant bumps the engine's epoch, lazily invalidating
    /// every cached result and closed-bucket partial it could falsify.
    ///
    /// # Errors
    ///
    /// Propagates hierarchy errors.
    pub fn ingest(
        &mut self,
        section: usize,
        readings: Vec<Reading>,
        now_s: u64,
    ) -> Result<IngestOutcome> {
        if readings
            .iter()
            .any(|r| r.timestamp_s() < self.core.served_frontier_s)
        {
            self.core.extra_epochs += 1;
        }
        Ok(self.city.ingest(section, readings, now_s)?)
    }

    /// Flushes the whole hierarchy upward; bumps the flush epoch, which
    /// lazily invalidates every cached result and partial.
    ///
    /// # Errors
    ///
    /// Propagates network/compression errors.
    pub fn flush_all(&mut self, now_s: u64) -> Result<(u64, u64)> {
        let shipped = self.city.flush_all(now_s)?;
        self.core.last_flush_s = now_s;
        Ok(shipped)
    }

    /// Releases one `class` slot a single-source store execution held at
    /// `layer`.
    pub fn release(&mut self, layer: Layer, class: ServiceClass) {
        self.release_held(HeldSlots::single(layer, class));
    }

    /// Releases every slot a response held (call when the simulated
    /// response completes; see [`QueryResponse::held`]).
    pub fn release_held(&mut self, held: HeldSlots) {
        self.core.ledger.release(held.class(), held.slots());
    }

    /// Serves one query at `now_s`, then absorbs the core's buffered
    /// observability into the city — so sequential callers observe
    /// exactly what direct publication produced before the core split.
    ///
    /// # Errors
    ///
    /// As `ServeCore::serve`.
    pub fn serve(&mut self, query: &Query, now_s: u64) -> Result<Outcome> {
        let result = self.core.serve(&self.city, query, now_s);
        self.city.absorb_scratch(&mut self.core.obs);
        result
    }

    /// [`QueryEngine::serve`] for synchronous callers: any held slots
    /// are released immediately (no simulated completion event).
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::serve`].
    pub fn serve_sync(&mut self, query: &Query, now_s: u64) -> Result<Outcome> {
        let outcome = self.serve(query, now_s)?;
        if let Outcome::Answered(resp) = &outcome {
            self.release_held(resp.held);
        }
        Ok(outcome)
    }
}

impl ServeCore {
    /// A serving core for a `section_count`-section city, with caches
    /// and admission control per `cfg`. The core's counter ids live in
    /// its own scratch registry; absorption translates them onto the
    /// city's by `(name, labels)` key.
    pub(crate) fn new(cfg: EngineConfig, section_count: usize) -> Self {
        let cache = || ResultCache::new(cfg.result_ttl_s, cfg.result_capacity);
        let mut obs = ObsScratch::new();
        let ids = EngineMetricIds::register(obs.metrics_mut());
        Self {
            edge: (0..section_count).map(|_| cache()).collect(),
            src_fog1: (0..section_count).map(|_| cache()).collect(),
            src_fog2: (0..10).map(|_| cache()).collect(),
            src_cloud: cache(),
            partials: PartialCache::new(cfg.partial_capacity),
            ledger: ClassLedger::new([cfg.caps.fog1, cfg.caps.fog2, cfg.caps.cloud], &cfg.qos),
            last_flush_s: 0,
            served_frontier_s: 0,
            extra_epochs: 0,
            ids,
            obs,
            cfg,
        }
    }

    /// Whether an answer to `query` may enter the result caches: only
    /// **closed** windows (ending at or before the serve instant)
    /// qualify, and only modestly sized payloads. Closed windows are
    /// what makes invalidation airtight: every cached window then lies
    /// entirely behind the served frontier, so an ordinary
    /// frontier-appending ingest can never land inside one, and a
    /// backdated ingest (below the frontier) bumps the epoch.
    fn cacheable(&self, query: &Query, now_s: u64, response_bytes: u64) -> bool {
        query.window.until_s <= now_s && response_bytes <= self.cfg.max_cache_entry_bytes
    }

    /// Serves one query at `now_s` against a shared city snapshot.
    ///
    /// The whole lifecycle is traced as a `"query"` span at the
    /// requester's fog-1 site — children mark the plan, admission,
    /// execute and deliver phases — closed at the estimated completion
    /// instant with the response size as its attribute (sheds close
    /// zero-length).
    ///
    /// # Errors
    ///
    /// [`Error::BadQuery`] / [`Error::Unanswerable`] per the planner;
    /// network errors while metering the transfer.
    pub(crate) fn serve(&mut self, city: &F2cCity, query: &Query, now_s: u64) -> Result<Outcome> {
        query.validated()?;
        let site = Site::new("fog1", query.origin as u32);
        let now_us = now_s.saturating_mul(1_000_000);
        let mark = self.obs.tracer_mut().mark();
        let span = self.obs.tracer_mut().open(site, "query", now_us);
        let result = self.serve_inner(city, query, site, now_us, now_s);
        let (end_us, attr) = match &result {
            Ok(Outcome::Answered(resp)) => {
                (now_us + resp.est_latency.as_micros(), resp.response_bytes)
            }
            _ => (now_us, 0),
        };
        self.obs.tracer_mut().close_with(span, end_us, attr);
        if let Ok(Outcome::Answered(resp)) = &result {
            // Trace exemplar: the span tree of the slowest answered query
            // per latency bucket. Rendering walks the ring log, so it is
            // gated on admission — most serves pay only a bucket compare.
            let latency_us = resp.est_latency.as_micros();
            let rendered = if self.obs.exemplars_mut().would_admit(latency_us) {
                Some(self.obs.tracer_mut().spans_since(&mark))
            } else {
                None
            };
            self.obs
                .exemplars_mut()
                .observe(latency_us, || rendered.unwrap_or_default());
        }
        result
    }

    /// The deterministic identity of one `(query, instant)` planning
    /// decision, for explain-reservoir sampling. Hashing the full query
    /// content plus the serve time means two shards offering the same
    /// decision produce the same key — absorption stays order-free.
    fn explain_hash(query: &Query, now_s: u64) -> u64 {
        let mut h = crate::workload::FNV_OFFSET;
        crate::workload::fnv1a(&mut h, format!("{query:?}@{now_s}").as_bytes());
        h
    }

    fn serve_inner(
        &mut self,
        city: &F2cCity,
        query: &Query,
        site: Site,
        now_us: u64,
        now_s: u64,
    ) -> Result<Outcome> {
        let class = query.class;
        let class_ids = self.ids.per_class[class.index()];
        let m = self.obs.metrics_mut();
        m.inc(self.ids.requests);
        m.inc(class_ids.requests);
        self.served_frontier_s = self.served_frontier_s.max(now_s);

        // 0. Chaos gate at the origin: a crashed fog-1 node serves
        // nothing — not even its edge cache. The query degrades to an
        // attributable fault shed, never to a wrong answer.
        if city.site_is_down(ChaosSite::Fog1(query.origin), now_s) {
            return Ok(self.fault_shed(query, Layer::Fog1, now_s));
        }

        let key = CacheKey::from(query);
        // Flush epoch plus local invalidations: both only grow, so any
        // bump strictly outdates every previously stamped entry.
        let epoch = city.flush_epoch() + self.extra_epochs;

        // 1. Edge cache at the requester's fog-1 node: a free local answer.
        if let Some(answer) = self.edge[query.origin].get(&key, now_s, epoch) {
            self.obs.metrics_mut().inc(self.ids.edge_hits);
            let bytes = answer.response_bytes();
            let est_latency = city.cost_model().cost(AccessOption::Local, bytes);
            self.record_answered(class, est_latency);
            return Ok(Outcome::Answered(QueryResponse {
                est_latency,
                layer: Layer::Fog1,
                via: ServedVia::EdgeCache,
                response_bytes: bytes,
                held: HeldSlots::none(),
                completeness: Completeness::Complete,
                answer,
            }));
        }

        // 2. Route: one complete source, or a fan-out over the member
        // fog nodes — whichever the cost model prices cheaper. Queries
        // whose hash wins a reservoir slot plan through the explaining
        // path and deposit their decision transcript; everything else
        // takes the plain planner (identical decisions, no transcript).
        let qhash = Self::explain_hash(query, now_s);
        let planned = if self.obs.explains_mut().would_admit(qhash) {
            planner::plan_explained(city, query).map(|(route, doc)| (route, Some(doc)))
        } else {
            planner::plan(city, query).map(|route| (route, None))
        };
        let route = match planned {
            Ok((route, doc)) => {
                // `seen` counts every *planned* query in both paths, so
                // the tally is independent of which path the shard-local
                // reservoir state happened to pick. The build closure
                // only runs when the hash is admitted — exactly the
                // queries that planned through the explaining path.
                self.obs.explains_mut().offer(qhash, move || {
                    doc.expect("admitted explains carry their transcript")
                });
                route
            }
            Err(e @ Error::Unanswerable { .. }) => {
                self.obs.metrics_mut().inc(self.ids.unanswerable);
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        // A zero-length child marking the plan phase; the attribute says
        // whether the winning shape is a fan-out.
        let plan_span = self.obs.tracer_mut().open(site, "query-plan", now_us);
        let fanned_out = matches!(route.choice, Choice::Scatter(_));
        self.obs
            .tracer_mut()
            .close_with(plan_span, now_us, u64::from(fanned_out));
        if let Some((scatter_cost, cloud_cost)) = route.contest {
            let id = if scatter_cost <= cloud_cost {
                self.ids.scatter_wins
            } else {
                self.ids.cloud_wins
            };
            self.obs.metrics_mut().inc(id);
        }

        // 3. Deadline gate: when even the cheapest provably-complete
        // route's transport estimate busts the class budget, executing
        // it would burn a slot on an answer that misses its SLO — shed
        // at plan time, before holding anything.
        let budget = self.cfg.qos.deadline(class);
        if route.est_cost() > budget {
            self.obs.metrics_mut().inc(class_ids.deadline_shed);
            return Ok(Outcome::Shed {
                layer: route.choice.charged_layer(),
                class,
                cause: ShedCause::Deadline,
            });
        }

        match self.serve_choice(city, query, &route.choice, key, epoch, now_s)? {
            Outcome::Answered(resp) => Ok(Outcome::Answered(resp)),
            Outcome::Shed {
                layer,
                class,
                cause,
            } => {
                // The planned route's quota is saturated. If the contest
                // had a losing shape that still fits the deadline budget
                // (e.g. the cloud read behind a fan-out), reroute onto
                // it instead of shedding.
                if let Some(fb) = &route.fallback {
                    if fb.est_cost() <= budget {
                        if let Outcome::Answered(resp) =
                            self.serve_choice(city, query, fb, key, epoch, now_s)?
                        {
                            self.obs.metrics_mut().inc(class_ids.rerouted);
                            if cause == ShedCause::Fault {
                                // A fault rescue, not a capacity one:
                                // the timeline attributes the detour.
                                self.obs.record_incident(
                                    now_s,
                                    ChaosSite::Fog1(query.origin),
                                    IncidentKind::Reroute,
                                );
                            }
                            return Ok(Outcome::Answered(resp));
                        }
                    }
                }
                // Terminal shed (the fallback, if any, was over budget
                // or saturated too): account it at the planned layer,
                // under the cause the planned route refused for.
                if cause == ShedCause::Fault {
                    return Ok(self.fault_shed(query, layer, now_s));
                }
                let m = self.obs.metrics_mut();
                m.inc(self.ids.shed[layer.index()]);
                m.inc(class_ids.shed);
                Ok(Outcome::Shed {
                    layer,
                    class,
                    cause,
                })
            }
        }
    }

    /// Accounts a terminal [`ShedCause::Fault`] shed and lands it on the
    /// incident timeline, so every refused query under chaos is
    /// attributable to an injected fault.
    fn fault_shed(&mut self, query: &Query, layer: Layer, now_s: u64) -> Outcome {
        let class_fault = self.ids.per_class[query.class.index()].fault_shed;
        let m = self.obs.metrics_mut();
        m.inc(self.ids.fault_shed);
        m.inc(class_fault);
        self.obs.record_incident(
            now_s,
            ChaosSite::Fog1(query.origin),
            IncidentKind::RouteFault,
        );
        Outcome::Shed {
            layer,
            class: query.class,
            cause: ShedCause::Fault,
        }
    }

    /// Serves one already-planned route shape. Returns capacity sheds
    /// *without* recording them — the caller accounts the terminal
    /// outcome, so a successful reroute is not double-counted.
    fn serve_choice(
        &mut self,
        city: &F2cCity,
        query: &Query,
        choice: &Choice,
        key: CacheKey,
        epoch: u64,
        now_s: u64,
    ) -> Result<Outcome> {
        match choice {
            Choice::Single(plan) => self.serve_single(city, query, plan, key, epoch, now_s),
            Choice::Scatter(plan) => self.serve_scatter(city, query, plan, key, epoch, now_s),
        }
    }

    /// Records an answered query, scoring its latency estimate against
    /// the class's deadline budget for SLO attainment.
    fn record_answered(&mut self, class: ServiceClass, est_latency: Duration) {
        let cid = self.ids.per_class[class.index()];
        let slo_met = est_latency <= self.cfg.qos.deadline(class);
        let m = self.obs.metrics_mut();
        m.inc(self.ids.answered);
        m.inc(cid.answered);
        if slo_met {
            m.inc(cid.slo_met);
        }
    }

    fn serve_single(
        &mut self,
        city: &F2cCity,
        query: &Query,
        plan: &QueryPlan,
        key: CacheKey,
        epoch: u64,
        now_s: u64,
    ) -> Result<Outcome> {
        let class = query.class;
        // Chaos gate: a crashed or unreachable source can serve nothing
        // — not even its result cache. Shed as a fault; the caller may
        // still rescue the query onto the fallback route.
        if !city.source_available(query.origin, plan.source, now_s) {
            return Ok(Outcome::Shed {
                layer: plan.layer,
                class,
                cause: ShedCause::Fault,
            });
        }
        // 3. Source cache at the planned node: pays the route, skips the scan.
        if let Some(answer) = self
            .source_cache(city, plan.source, query.origin)
            .get(&key, now_s, epoch)
        {
            self.obs.metrics_mut().inc(self.ids.source_hits);
            let bytes = answer.response_bytes();
            if city
                .meter_query_scratch(
                    self.obs.net_mut(),
                    query.origin,
                    plan.source,
                    self.cfg.request_bytes,
                    bytes,
                    now_s,
                )
                .is_err()
            {
                // The transfer was lost in flight (loss coin): degrade
                // to a fault shed instead of surfacing an error.
                return Ok(Outcome::Shed {
                    layer: plan.layer,
                    class,
                    cause: ShedCause::Fault,
                });
            }
            if self.cacheable(query, now_s, bytes) {
                self.edge[query.origin].put(key, answer.clone(), now_s, epoch);
            }
            let est_latency = city.cost_model().cost(plan.option, bytes);
            self.record_answered(class, est_latency);
            return Ok(Outcome::Answered(QueryResponse {
                est_latency,
                layer: plan.layer,
                via: ServedVia::SourceCache(plan.source),
                response_bytes: bytes,
                held: HeldSlots::none(),
                completeness: Completeness::Complete,
                answer,
            }));
        }

        // 4. Admission control: one class-tagged slot at the source's
        // layer — except warm-sketch reads, which merge a handful of
        // pre-folded partials instead of scanning an archive and so
        // admit at the QoS policy's reduced cost (one charged slot per
        // `sketch_divisor` reads).
        let held = if matches!(plan.source, DataSource::WarmSketch(_)) {
            match self.ledger.try_acquire_sketch(class, plan.layer) {
                Ok(slots) => HeldSlots::from_slots(class, slots),
                Err(layer) => {
                    return Ok(Outcome::Shed {
                        layer,
                        class,
                        cause: ShedCause::Capacity,
                    })
                }
            }
        } else {
            let held = HeldSlots::single(plan.layer, class);
            if let Err(layer) = self.ledger.try_acquire(class, held.slots()) {
                return Ok(Outcome::Shed {
                    layer,
                    class,
                    cause: ShedCause::Capacity,
                });
            }
            held
        };
        let site = Site::new("fog1", query.origin as u32);
        let now_us = now_s.saturating_mul(1_000_000);
        let admit = self.obs.tracer_mut().open(site, "query-admit", now_us);
        let charged = u64::from(held.slots().iter().sum::<u32>());
        self.obs.tracer_mut().close_with(admit, now_us, charged);

        // 5. Execute against the source store.
        let exec = self.obs.tracer_mut().open(site, "query-execute", now_us);
        let (answer, visited) = self.execute(city, query, plan, now_s, epoch);
        let scan_us = self.cfg.scan_cost_per_record_us * visited;
        self.obs
            .tracer_mut()
            .close_with(exec, now_us + scan_us, visited);
        self.obs
            .metrics_mut()
            .add(self.ids.records_scanned, visited);
        let bytes = answer.response_bytes();
        let est_latency = city.cost_model().cost(plan.option, bytes)
            + Duration::from_micros(self.cfg.scan_cost_per_record_us * visited);
        if city
            .meter_query_scratch(
                self.obs.net_mut(),
                query.origin,
                plan.source,
                self.cfg.request_bytes,
                bytes,
                now_s,
            )
            .is_err()
        {
            // The response was lost in flight (loss coin): give the slot
            // back and degrade to a fault shed instead of an error.
            self.ledger.release(class, held.slots());
            return Ok(Outcome::Shed {
                layer: plan.layer,
                class,
                cause: ShedCause::Fault,
            });
        }
        if self.cacheable(query, now_s, bytes) {
            self.source_cache(city, plan.source, query.origin).put(
                key,
                answer.clone(),
                now_s,
                epoch,
            );
            self.edge[query.origin].put(key, answer.clone(), now_s, epoch);
        }
        self.obs.metrics_mut().inc(self.ids.store_served);
        let deliver = self.obs.tracer_mut().open(site, "query-deliver", now_us);
        self.obs
            .tracer_mut()
            .close_with(deliver, now_us + est_latency.as_micros(), bytes);
        self.record_answered(class, est_latency);
        Ok(Outcome::Answered(QueryResponse {
            answer,
            via: ServedVia::Store(plan.source),
            layer: plan.layer,
            est_latency,
            response_bytes: bytes,
            held,
            completeness: Completeness::Complete,
        }))
    }

    fn serve_scatter(
        &mut self,
        city: &F2cCity,
        query: &Query,
        plan: &ScatterPlan,
        key: CacheKey,
        epoch: u64,
        now_s: u64,
    ) -> Result<Outcome> {
        let class = query.class;
        // Chaos gate at the gather node (the requester's fog-2): every
        // leg and the final delivery route through it, so a crashed or
        // unreachable gather sheds the whole fan-out as a fault.
        if !city.source_available(query.origin, DataSource::Parent, now_s) {
            return Ok(Outcome::Shed {
                layer: Layer::Fog2,
                class,
                cause: ShedCause::Fault,
            });
        }
        // 3. Result cache at the gather node (the requester's fog-2):
        // pays the parent hop, skips the whole fan-out.
        let gather = plan.gather_district;
        if let Some(answer) = self.src_fog2[gather].get(&key, now_s, epoch) {
            self.obs.metrics_mut().inc(self.ids.source_hits);
            let bytes = answer.response_bytes();
            if city
                .meter_query_scratch(
                    self.obs.net_mut(),
                    query.origin,
                    DataSource::Parent,
                    self.cfg.request_bytes,
                    bytes,
                    now_s,
                )
                .is_err()
            {
                return Ok(Outcome::Shed {
                    layer: Layer::Fog2,
                    class,
                    cause: ShedCause::Fault,
                });
            }
            if self.cacheable(query, now_s, bytes) {
                self.edge[query.origin].put(key, answer.clone(), now_s, epoch);
            }
            let est_latency = city.cost_model().cost(AccessOption::Parent, bytes);
            self.record_answered(class, est_latency);
            return Ok(Outcome::Answered(QueryResponse {
                est_latency,
                layer: Layer::Fog2,
                via: ServedVia::SourceCache(DataSource::Parent),
                response_bytes: bytes,
                held: HeldSlots::none(),
                completeness: Completeness::Complete,
                answer,
            }));
        }

        // Chaos gate per leg: legs whose node is crashed or unreachable
        // from the gather node are shed from the fan-out *before*
        // admission — degraded answers never hold slots for work that
        // cannot run. Surviving legs still produce an exact answer over
        // their shards; the response is annotated `Partial` so the
        // consumer knows which fraction of the plan it covers.
        let legs_total = plan.legs.len() as u32;
        let live: Vec<crate::planner::ScatterLeg> = plan
            .legs
            .iter()
            .filter(|leg| city.leg_available(query.origin, leg.node, now_s))
            .copied()
            .collect();
        let legs_shed = legs_total - live.len() as u32;
        if legs_shed > 0 {
            self.obs
                .metrics_mut()
                .add(self.ids.legs_shed, u64::from(legs_shed));
            for leg in plan.legs.iter() {
                if !city.leg_available(query.origin, leg.node, now_s) {
                    let site = match leg.node {
                        FanoutLeg::Fog1(s) => ChaosSite::Fog1(s),
                        FanoutLeg::Fog2(d) => ChaosSite::Fog2(d),
                    };
                    self.obs.record_incident(now_s, site, IncidentKind::LegShed);
                }
            }
        }
        if live.is_empty() {
            // Every leg is down: nothing survives to answer from.
            return Ok(Outcome::Shed {
                layer: Layer::Fog2,
                class,
                cause: ShedCause::Fault,
            });
        }

        // 4. Admission control: one class-tagged slot per surviving leg
        // at each leg's layer, acquired atomically — a refusal at any
        // layer rolls back the slots already taken at the layers below,
        // so a shed fan-out never leaks in-flight accounting.
        let mut held = HeldSlots::empty(class);
        for leg in &live {
            held.add(leg.layer, 1);
        }
        if let Err(layer) = self.ledger.try_acquire(class, held.slots()) {
            return Ok(Outcome::Shed {
                layer,
                class,
                cause: ShedCause::Capacity,
            });
        }
        let site = Site::new("fog1", query.origin as u32);
        let now_us = now_s.saturating_mul(1_000_000);
        let admit = self.obs.tracer_mut().open(site, "query-admit", now_us);
        let charged = u64::from(held.slots().iter().sum::<u32>());
        self.obs.tracer_mut().close_with(admit, now_us, charged);

        // 5. Execute every surviving leg and merge at the gather node.
        let exec = self.obs.tracer_mut().open(site, "query-execute", now_us);
        let (answer, leg_reports, slowest) = self.execute_scatter(city, query, &live, now_s, epoch);
        self.obs
            .tracer_mut()
            .close_with(exec, now_us + slowest.as_micros(), live.len() as u64);
        let visited: u64 = leg_reports.iter().map(|&(_, _, v)| v).sum();
        self.obs
            .metrics_mut()
            .add(self.ids.records_scanned, visited);
        let bytes = answer.response_bytes();
        let est_latency = slowest
            + city.cost_model().fanout_overhead(live.len())
            + city.cost_model().cost(AccessOption::Parent, bytes);
        let metered: Vec<(FanoutLeg, u64)> = leg_reports
            .iter()
            .map(|&(node, leg_bytes, _)| (node, leg_bytes))
            .collect();
        if city
            .meter_fanout_scratch(
                self.obs.net_mut(),
                query.origin,
                &metered,
                self.cfg.request_bytes,
                bytes,
                now_s,
            )
            .is_err()
        {
            self.ledger.release(class, held.slots());
            return Ok(Outcome::Shed {
                layer: Layer::Fog2,
                class,
                cause: ShedCause::Fault,
            });
        }
        let completeness = if legs_shed == 0 {
            Completeness::Complete
        } else {
            self.obs.metrics_mut().inc(self.ids.degraded);
            Completeness::Partial {
                legs_shed,
                legs_total,
            }
        };
        // Partial answers never enter a cache: a later healthy serve of
        // the same window must not inherit a degraded one.
        if completeness.is_complete() && self.cacheable(query, now_s, bytes) {
            self.src_fog2[gather].put(key, answer.clone(), now_s, epoch);
            self.edge[query.origin].put(key, answer.clone(), now_s, epoch);
        }
        let m = self.obs.metrics_mut();
        m.inc(self.ids.store_served);
        m.inc(self.ids.scatter_served);
        m.add(self.ids.scatter_legs, live.len() as u64);
        let deliver = self.obs.tracer_mut().open(site, "query-deliver", now_us);
        self.obs
            .tracer_mut()
            .close_with(deliver, now_us + est_latency.as_micros(), bytes);
        self.record_answered(class, est_latency);
        Ok(Outcome::Answered(QueryResponse {
            answer,
            via: ServedVia::Scatter {
                legs: live.len() as u32,
            },
            layer: Layer::Fog2,
            est_latency,
            response_bytes: bytes,
            held,
            completeness,
        }))
    }

    fn source_cache(
        &mut self,
        city: &F2cCity,
        source: DataSource,
        origin: usize,
    ) -> &mut ResultCache {
        match source {
            DataSource::Local => &mut self.src_fog1[origin],
            DataSource::Neighbor(n) | DataSource::WarmSketch(n) => &mut self.src_fog1[n],
            DataSource::Parent => {
                let d = city.district_of(origin);
                &mut self.src_fog2[d]
            }
            DataSource::RemoteFog2(d) => &mut self.src_fog2[d],
            DataSource::Cloud => &mut self.src_cloud,
        }
    }

    fn execute(
        &mut self,
        city: &F2cCity,
        query: &Query,
        plan: &QueryPlan,
        now_s: u64,
        epoch: u64,
    ) -> (QueryAnswer, u64) {
        let (store, node): (&TieredStore, NodeKey) = match plan.source {
            DataSource::WarmSketch(s) => {
                // The raw window is evicted; the answer is a pure merge
                // of the node's pre-folded ledger partials — no store
                // scan, no partial-cache traffic.
                let (answer, merged) = warm_sketch_answer(city.fog1(s).sketches(), s, query);
                let m = self.obs.metrics_mut();
                m.inc(self.ids.sketch_served);
                m.add(self.ids.sketch_hits, merged);
                return (answer, 0);
            }
            DataSource::Local => (
                city.fog1(query.origin).store(),
                NodeKey::Fog1(query.origin as u16),
            ),
            DataSource::Neighbor(n) => (city.fog1(n).store(), NodeKey::Fog1(n as u16)),
            DataSource::Parent => {
                let d = match query.scope {
                    Scope::Section(s) => city.district_of(s),
                    Scope::District(d) => d,
                    // City scopes never plan a Parent single source —
                    // one fog-2 only holds its own district.
                    Scope::City => unreachable!("city scope has no parent single source"),
                };
                (city.fog2(d).store(), NodeKey::Fog2(d as u16))
            }
            DataSource::RemoteFog2(d) => (city.fog2(d).store(), NodeKey::Fog2(d as u16)),
            DataSource::Cloud => (city.cloud().store(), NodeKey::Cloud),
        };
        match query.kind {
            QueryKind::Point => execute_point(store, query),
            QueryKind::Range => execute_range(store, query),
            QueryKind::Aggregate => {
                let mut tally = FoldTally::default();
                let (acc, visited) = fold_aggregate(
                    city,
                    store,
                    node,
                    query,
                    &mut self.partials,
                    &mut tally,
                    epoch,
                    now_s,
                    self.cfg.bucket_s,
                );
                self.apply_fold_tally(tally);
                (QueryAnswer::Aggregate(finalize(&acc)), visited)
            }
        }
    }

    /// Publishes what a fold did with its closed buckets, once the
    /// store borrow is released.
    fn apply_fold_tally(&mut self, tally: FoldTally) {
        let m = self.obs.metrics_mut();
        m.add(self.ids.partial_hits, tally.partial_hits);
        m.add(self.ids.prefold_hits, tally.prefold_hits);
        m.add(self.ids.partial_fills, tally.partial_fills);
    }

    /// Executes every given fan-out leg (the plan's legs, minus any the
    /// chaos gate shed) against its shard and merges the partial results
    /// ([`crate::scatter`]). Returns the merged answer, a per-leg
    /// `(node, partial bytes, records visited)` report for metering, and
    /// the slowest leg's transport + scan estimate.
    fn execute_scatter(
        &mut self,
        city: &F2cCity,
        query: &Query,
        legs: &[crate::planner::ScatterLeg],
        now_s: u64,
        epoch: u64,
    ) -> (QueryAnswer, Vec<(FanoutLeg, u64, u64)>, Duration) {
        let mut reports = Vec::with_capacity(legs.len());
        let mut slowest = Duration::ZERO;
        let mut points = Vec::new();
        let mut ranges = Vec::new();
        let mut partial_legs = Vec::new();
        let mut tally = FoldTally::default();
        let mut sketch_legs = 0u64;
        let mut sketch_hits = 0u64;
        let now_us = now_s.saturating_mul(1_000_000);
        for leg in legs {
            let shard = Query {
                scope: leg.scope,
                ..*query
            };
            let (store, node): (&TieredStore, NodeKey) = match leg.node {
                FanoutLeg::Fog1(s) => (city.fog1(s).store(), NodeKey::Fog1(s as u16)),
                FanoutLeg::Fog2(d) => (city.fog2(d).store(), NodeKey::Fog2(d as u16)),
            };
            let (leg_bytes, visited) = match query.kind {
                QueryKind::Point => {
                    let (point, visited) = scan_point(store, &shard);
                    points.push(point);
                    (64, visited)
                }
                QueryKind::Range => {
                    let (recs, visited) = scan_range(store, &shard);
                    let bytes = recs.iter().map(DataRecord::wire_len).sum();
                    ranges.push(recs);
                    (bytes, visited)
                }
                QueryKind::Aggregate => {
                    let (partial, visited) = if leg.via_sketch {
                        // The shard's raw records are evicted; the leg
                        // ships its ledger's pre-folded partials.
                        let section = match leg.node {
                            FanoutLeg::Fog1(s) => s,
                            FanoutLeg::Fog2(_) => {
                                unreachable!("sketch legs are always fog-1 members")
                            }
                        };
                        let mut acc = AggPartial::empty();
                        let merged = merge_warm_sketch(
                            city.fog1(section).sketches(),
                            section,
                            &shard,
                            &mut acc,
                        );
                        sketch_legs += 1;
                        sketch_hits += merged;
                        (acc, 0)
                    } else {
                        fold_aggregate(
                            city,
                            store,
                            node,
                            &shard,
                            &mut self.partials,
                            &mut tally,
                            epoch,
                            now_s,
                            self.cfg.bucket_s,
                        )
                    };
                    partial_legs.push(partial);
                    (AGG_PARTIAL_WIRE_BYTES, visited)
                }
            };
            let leg_time = city.cost_model().leg_cost(leg.path, leg_bytes)
                + Duration::from_micros(self.cfg.scan_cost_per_record_us * visited);
            slowest = slowest.max(leg_time);
            // One span per executed leg, at the leg's own site, closed at
            // its modeled completion with the shipped bytes as attribute.
            let leg_site = match leg.node {
                FanoutLeg::Fog1(s) => Site::new("fog1", s as u32),
                FanoutLeg::Fog2(d) => Site::new("fog2", d as u32),
            };
            let span = self.obs.tracer_mut().open(leg_site, "scatter-leg", now_us);
            self.obs
                .tracer_mut()
                .close_with(span, now_us + leg_time.as_micros(), leg_bytes);
            reports.push((leg.node, leg_bytes, visited));
        }
        self.apply_fold_tally(tally);
        let m = self.obs.metrics_mut();
        m.add(self.ids.sketch_legs, sketch_legs);
        m.add(self.ids.sketch_hits, sketch_hits);
        let answer = match query.kind {
            QueryKind::Point => crate::scatter::merge_points(points),
            QueryKind::Range => crate::scatter::merge_ranges(ranges),
            QueryKind::Aggregate => crate::scatter::merge_aggregates(partial_legs),
        };
        (answer, reports, slowest)
    }
}

/// Modeled wire size of one shipped [`AggPartial`]: moments + extremes
/// envelope plus the 1024-register HyperLogLog sketch.
const AGG_PARTIAL_WIRE_BYTES: u64 = 1_152;

/// Latest matching observation: reverse range scan with canonical
/// tie-breaking by sensor identity at equal creation times, so every
/// complete source yields the same point.
fn scan_point(store: &TieredStore, query: &Query) -> (Option<PointSample>, u64) {
    let w = query.window;
    let mut visited = 0u64;
    let mut best: Option<(u64, u64, PointSample)> = None;
    for rec in store.range(w.from_s, w.until_s).rev() {
        visited += 1;
        let created = rec.descriptor().created_s();
        if let Some((best_created, _, _)) = best {
            if created < best_created {
                break;
            }
        }
        if query.matches(rec) {
            let sensor = rec.reading().sensor();
            let rank = (created, sensor.seed_material());
            if best.is_none_or(|(c, s, _)| rank > (c, s)) {
                best = Some((
                    created,
                    sensor.seed_material(),
                    PointSample {
                        created_s: created,
                        sensor,
                        value: rec.reading().value().magnitude(),
                    },
                ));
            }
        }
    }
    (best.map(|(_, _, p)| p), visited)
}

fn execute_point(store: &TieredStore, query: &Query) -> (QueryAnswer, u64) {
    let (best, visited) = scan_point(store, query);
    (QueryAnswer::Point(best), visited)
}

fn scan_range(store: &TieredStore, query: &Query) -> (Vec<DataRecord>, u64) {
    let w = query.window;
    let mut visited = 0u64;
    let mut out = Vec::new();
    for rec in store.range(w.from_s, w.until_s) {
        visited += 1;
        if query.matches(rec) {
            out.push(rec.clone());
        }
    }
    (out, visited)
}

fn execute_range(store: &TieredStore, query: &Query) -> (QueryAnswer, u64) {
    let (out, visited) = scan_range(store, query);
    (QueryAnswer::Records(out), visited)
}

/// The sections of `query`'s scope whose records `node` can hold — the
/// decomposition the sketch plane keys its ledgers by.
fn scope_sections(city: &F2cCity, query: &Query, node: NodeKey) -> Vec<u16> {
    match query.scope {
        Scope::Section(s) => vec![s as u16],
        Scope::District(d) => city
            .sections_in_district(d)
            .into_iter()
            .map(|s| s as u16)
            .collect(),
        Scope::City => match node {
            // Only the cloud is ever a single source for a city window.
            NodeKey::Cloud => (0..city.section_count() as u16).collect(),
            NodeKey::Fog1(s) => vec![s],
            NodeKey::Fog2(d) => city
                .sections_in_district(d as usize)
                .into_iter()
                .map(|s| s as u16)
                .collect(),
        },
    }
}

/// Per-window prefold context, computed once per [`fold_aggregate`]
/// call instead of once per bucket: the node's ledger, the scoped
/// sections, and the frontier up to which the ledger provably matches
/// the archive.
struct PrefoldCtx<'a> {
    ledger: &'a SketchLedger,
    sections: Vec<u16>,
    /// Buckets ending past this cannot prefold. Fog-1 ledgers lag their
    /// pending queue (folds happen at flush), so there it is the pending
    /// frontier; fog-2/cloud ledgers fold at receive time and never lag
    /// their stores.
    settled_until_s: u64,
}

impl<'a> PrefoldCtx<'a> {
    /// The context for `query` at `node`, or `None` when the ledger's
    /// bucketing differs from the engine's and prefolding is off.
    fn new(
        city: &'a F2cCity,
        store: &TieredStore,
        node: NodeKey,
        query: &Query,
        bucket_s: u64,
    ) -> Option<Self> {
        let ledger = match node {
            NodeKey::Fog1(s) => city.fog1(s as usize).sketches(),
            NodeKey::Fog2(d) => city.fog2(d as usize).sketches(),
            NodeKey::Cloud => city.cloud().sketches(),
        };
        if ledger.bucket_s() != bucket_s {
            return None;
        }
        let settled_until_s = if matches!(node, NodeKey::Fog1(_)) {
            store.pending_earliest_s().unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        Some(Self {
            ledger,
            sections: scope_sections(city, query, node),
            settled_until_s,
        })
    }

    /// Assembles one closed bucket from the ledger — the flush-shipped
    /// pre-folded partials — when the ledger provably matches the
    /// archive for it: every scoped section's seal frontier reaches past
    /// the bucket, nothing in it was compacted away, and nothing created
    /// inside it is still pending. Returns `None` when any check fails
    /// and the caller must scan.
    fn bucket(&self, query: &Query, bucket_start_s: u64, bucket_end_s: u64) -> Option<AggPartial> {
        if bucket_end_s > self.settled_until_s {
            return None;
        }
        if !self
            .sections
            .iter()
            .all(|&s| self.ledger.covers(s, bucket_start_s, bucket_end_s))
        {
            return None;
        }
        let mut part = AggPartial::empty();
        for &section in &self.sections {
            merge_selected(
                self.ledger,
                section,
                query,
                bucket_start_s,
                bucket_end_s,
                &mut part,
            );
        }
        Some(part)
    }
}

/// Answers an aggregate query from a fog-1 node's warm sketches alone
/// (the `DataSource::WarmSketch` path — the planner proved coverage, so
/// absent buckets are provably empty). Returns the answer and how many
/// ledger partials were merged.
fn warm_sketch_answer(ledger: &SketchLedger, section: usize, query: &Query) -> (QueryAnswer, u64) {
    let mut acc = AggPartial::empty();
    let merged = merge_warm_sketch(ledger, section, query, &mut acc);
    (QueryAnswer::Aggregate(finalize(&acc)), merged)
}

/// Merges every ledger partial matching `query`'s selector over its
/// whole window for `section` into `acc`; returns the number merged.
fn merge_warm_sketch(
    ledger: &SketchLedger,
    section: usize,
    query: &Query,
    acc: &mut AggPartial,
) -> u64 {
    let w = query.window;
    merge_selected(ledger, section as u16, query, w.from_s, w.until_s, acc)
}

/// Merges the ledger partials of every sensor type `query`'s selector
/// matches over `[from_s, until_s)` for `section`; returns the number
/// merged.
fn merge_selected(
    ledger: &SketchLedger,
    section: u16,
    query: &Query,
    from_s: u64,
    until_s: u64,
    acc: &mut AggPartial,
) -> u64 {
    let mut merged = 0;
    for ty in SensorType::ALL {
        if query.selector.matches(ty) {
            merged += ledger.merge_range(section, ty, from_s, until_s, acc);
        }
    }
    merged
}

/// Folds the window into one mergeable [`AggPartial`] — the shape a
/// scatter-gather leg ships to the gather node — reusing cached closed
/// buckets where the epoch allows, and assembling closed buckets from
/// the node's sketch ledger (the flush-shipped pre-folded partials)
/// before falling back to an archive scan.
#[allow(clippy::too_many_arguments)]
fn fold_aggregate(
    city: &F2cCity,
    store: &TieredStore,
    node: NodeKey,
    query: &Query,
    partials: &mut PartialCache,
    tally: &mut FoldTally,
    epoch: u64,
    now_s: u64,
    bucket_s: u64,
) -> (AggPartial, u64) {
    let w = query.window;
    let bucket_s = bucket_s.max(1);
    let mut acc = AggPartial::empty();
    let mut visited = 0u64;
    let first_full = w.from_s.next_multiple_of(bucket_s);
    let last_full = (w.until_s / bucket_s) * bucket_s;
    if first_full >= last_full {
        // No full bucket inside the window: one direct fold.
        visited += fold_segment(store, query, w.from_s, w.until_s, &mut acc);
    } else {
        let prefold = PrefoldCtx::new(city, store, node, query, bucket_s);
        visited += fold_segment(store, query, w.from_s, first_full, &mut acc);
        let mut bucket = first_full;
        while bucket < last_full {
            let bucket_end = bucket + bucket_s;
            // Only closed buckets are cacheable: fog-1 ingest appends at
            // the clock frontier, and tiers above only change on flush
            // (which bumps the epoch), so a cached closed bucket cannot
            // drift.
            if bucket_end <= now_s {
                let key = PartialKey {
                    node,
                    selector: query.selector,
                    scope: query.scope,
                    bucket_start_s: bucket,
                };
                // A cached-partial merge is O(1) — no records visited,
                // so it never costs more than folding the bucket (even
                // an empty one).
                if partials.merge_into(&key, epoch, &mut acc) {
                    tally.partial_hits += 1;
                } else if let Some(part) = prefold
                    .as_ref()
                    .and_then(|ctx| ctx.bucket(query, bucket, bucket_end))
                {
                    // The flush already folded this bucket: merge the
                    // shipped partials instead of re-scanning, and cache
                    // the assembly for the next query.
                    acc.merge(&part);
                    partials.put(key, part, epoch);
                    tally.prefold_hits += 1;
                } else {
                    let mut part = AggPartial::empty();
                    visited += fold_segment(store, query, bucket, bucket_end, &mut part);
                    acc.merge(&part);
                    partials.put(key, part, epoch);
                    tally.partial_fills += 1;
                }
            } else {
                visited += fold_segment(store, query, bucket, bucket_end, &mut acc);
            }
            bucket = bucket_end;
        }
        visited += fold_segment(store, query, last_full, w.until_s, &mut acc);
    }
    (acc, visited)
}

fn fold_segment(
    store: &TieredStore,
    query: &Query,
    from_s: u64,
    until_s: u64,
    acc: &mut AggPartial,
) -> u64 {
    let mut visited = 0u64;
    for rec in store.range(from_s, until_s) {
        visited += 1;
        if query.matches(rec) {
            absorb_record(acc, rec);
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Selector, TimeWindow};
    use scc_sensors::{Category, ReadingGenerator, SensorType};

    fn engine_with_data(section: usize, ty: SensorType, waves: u64) -> QueryEngine {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(ty, 10, 42);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
        QueryEngine::new(city, EngineConfig::default())
    }

    fn aggregate_query(origin: usize, scope: Scope, from: u64, until: u64) -> Query {
        Query {
            origin,
            class: ServiceClass::Dashboard,
            selector: Selector::Category(Category::Urban),
            scope,
            window: TimeWindow::new(from, until),
            kind: QueryKind::Aggregate,
        }
    }

    fn answered(outcome: Outcome) -> QueryResponse {
        match outcome {
            Outcome::Answered(r) => r,
            Outcome::Shed {
                layer,
                class,
                cause,
            } => panic!("unexpected {class} shed at {layer} ({cause:?})"),
        }
    }

    #[test]
    fn point_query_returns_latest_local_observation() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = Query {
            origin: 5,
            class: ServiceClass::RealTime,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::Section(5),
            window: TimeWindow::new(0, 10_000),
            kind: QueryKind::Point,
        };
        let resp = answered(e.serve_sync(&q, 4_000).unwrap());
        assert_eq!(resp.via, ServedVia::Store(DataSource::Local));
        match resp.answer {
            QueryAnswer::Point(Some(p)) => assert_eq!(p.created_s, 2_700),
            other => panic!("expected a point sample, got {other:?}"),
        }
    }

    #[test]
    fn repeat_queries_hit_the_edge_cache_and_cost_less() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = aggregate_query(5, Scope::Section(5), 0, 3_600);
        let cold = answered(e.serve_sync(&q, 4_000).unwrap());
        assert_eq!(cold.via, ServedVia::Store(DataSource::Local));
        let warm = answered(e.serve_sync(&q, 4_001).unwrap());
        assert_eq!(warm.via, ServedVia::EdgeCache);
        assert_eq!(warm.answer, cold.answer, "cache returns the same answer");
        assert!(
            warm.est_latency < cold.est_latency,
            "warm {} vs cold {}",
            warm.est_latency,
            cold.est_latency
        );
        assert_eq!(e.stats().edge_hits, 1);
    }

    #[test]
    fn flush_invalidates_cached_results() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = aggregate_query(5, Scope::Section(5), 0, 3_600);
        answered(e.serve_sync(&q, 4_000).unwrap());
        e.flush_all(4_100).unwrap();
        let after = answered(e.serve_sync(&q, 4_200).unwrap());
        assert!(
            matches!(after.via, ServedVia::Store(_)),
            "epoch bump forces re-execution, got {:?}",
            after.via
        );
    }

    #[test]
    fn admission_control_sheds_over_cap_and_release_reopens() {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 42);
        for w in 0..4 {
            city.ingest(5, gen.wave(w * 900), w * 900 + 1).unwrap();
        }
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog1: 1,
                ..LayerCaps::default()
            },
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        let q1 = aggregate_query(5, Scope::Section(5), 0, 1_800);
        let q2 = aggregate_query(5, Scope::Section(5), 0, 2_700);
        let first = answered(e.serve(&q1, 4_000).unwrap());
        assert_eq!(
            first.held,
            HeldSlots::single(Layer::Fog1, ServiceClass::Dashboard)
        );
        match e.serve(&q2, 4_000).unwrap() {
            Outcome::Shed {
                layer,
                class,
                cause,
            } => {
                assert_eq!(layer, Layer::Fog1);
                assert_eq!(class, ServiceClass::Dashboard);
                assert_eq!(cause, ShedCause::Capacity);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(e.stats().shed_total(), 1);
        assert_eq!(e.stats().class(ServiceClass::Dashboard).shed, 1);
        e.release(Layer::Fog1, ServiceClass::Dashboard);
        answered(e.serve(&q2, 4_000).unwrap());
    }

    #[test]
    fn aggregates_reuse_bucket_partials_across_windows() {
        let mut e = engine_with_data(5, SensorType::Traffic, 8);
        // Two overlapping dashboard windows sharing full buckets.
        let a = aggregate_query(5, Scope::Section(5), 0, 5_400);
        let b = aggregate_query(5, Scope::Section(5), 900, 6_300);
        answered(e.serve_sync(&a, 8_000).unwrap());
        let fills_after_first = e.stats().partial_fills;
        assert!(fills_after_first > 0);
        answered(e.serve_sync(&b, 8_000).unwrap());
        assert!(
            e.stats().partial_hits > 0,
            "second window reuses cached buckets"
        );
    }

    #[test]
    fn open_window_answers_are_never_cached() {
        use scc_sensors::ReadingGenerator;
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        // Window extends past "now": a later perfectly ordinary ingest
        // could land inside it, so serving must not cache the answer.
        let q = aggregate_query(5, Scope::Section(5), 0, 10_000);
        let first = answered(e.serve_sync(&q, 4_000).unwrap());
        let first_count = match &first.answer {
            QueryAnswer::Aggregate(a) => a.count,
            other => panic!("expected aggregate, got {other:?}"),
        };
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 43);
        e.ingest(5, gen.wave(4_050), 4_050).unwrap();
        let second = answered(e.serve_sync(&q, 4_060).unwrap());
        assert!(
            matches!(second.via, ServedVia::Store(_)),
            "open windows must re-execute, got {:?}",
            second.via
        );
        let second_count = match &second.answer {
            QueryAnswer::Aggregate(a) => a.count,
            other => panic!("expected aggregate, got {other:?}"),
        };
        assert!(
            second_count > first_count,
            "in-window ingest must be visible ({first_count} -> {second_count})"
        );
    }

    #[test]
    fn oversized_answers_bypass_the_result_cache() {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 50, 42);
        for w in 0..8 {
            city.ingest(5, gen.wave(w * 300), w * 300 + 1).unwrap();
        }
        let cfg = EngineConfig {
            max_cache_entry_bytes: 64,
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        let q = Query {
            origin: 5,
            class: ServiceClass::Dashboard,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::Section(5),
            window: TimeWindow::new(0, 2_400),
            kind: QueryKind::Range,
        };
        let first = answered(e.serve_sync(&q, 4_000).unwrap());
        assert!(first.response_bytes > 64, "probe answer must be bulky");
        let second = answered(e.serve_sync(&q, 4_001).unwrap());
        assert!(
            matches!(second.via, ServedVia::Store(_)),
            "bulky answers re-scan instead of bloating the caches, got {:?}",
            second.via
        );
        assert_eq!(second.answer, first.answer);
    }

    #[test]
    fn backdated_ingest_invalidates_cached_answers() {
        use scc_sensors::{Reading, SensorId, Value};
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = aggregate_query(5, Scope::Section(5), 0, 2_700);
        let cold = answered(e.serve_sync(&q, 4_000).unwrap());
        let cold_count = match &cold.answer {
            QueryAnswer::Aggregate(a) => a.count,
            other => panic!("expected aggregate, got {other:?}"),
        };
        // A straggler created inside an already-served (and cached)
        // window must not be masked by the caches.
        let late = Reading::new(
            SensorId::new(SensorType::Traffic, 900),
            1_000,
            Value::from_f64(3.0),
        );
        e.ingest(5, vec![late], 4_100).unwrap();
        let warm = answered(e.serve_sync(&q, 4_200).unwrap());
        assert!(
            matches!(warm.via, ServedVia::Store(_)),
            "backdated ingest must force re-execution, got {:?}",
            warm.via
        );
        match &warm.answer {
            QueryAnswer::Aggregate(a) => assert_eq!(a.count, cold_count + 1),
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn unflushed_district_windows_scatter_then_use_the_parent_store() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let district = e.city().district_of(5);
        let members = e.city().sections_in_district(district).len() as u32;
        // District window ending past the flush frontier: nothing above
        // fog 1 holds it yet, so the engine fans out over the members.
        let q = aggregate_query(5, Scope::District(district), 0, 3_000);
        let resp = answered(e.serve_sync(&q, 4_000).unwrap());
        assert_eq!(resp.via, ServedVia::Scatter { legs: members });
        assert_eq!(e.stats().scatter_served, 1);
        assert_eq!(e.stats().scatter_legs, u64::from(members));
        e.flush_all(4_000).unwrap();
        let after = answered(e.serve_sync(&q, 4_100).unwrap());
        assert_eq!(after.via, ServedVia::Store(DataSource::Parent));
        match (&resp.answer, &after.answer) {
            (QueryAnswer::Aggregate(a), QueryAnswer::Aggregate(b)) => {
                assert_eq!(a.count, b.count, "scatter and parent answers agree");
                assert_eq!(a.min, b.min);
                assert_eq!(a.distinct_sensors, b.distinct_sensors);
            }
            other => panic!("expected aggregates, got {other:?}"),
        }
    }

    #[test]
    fn unanswerable_windows_surface_and_are_counted() {
        let mut e = engine_with_data(5, SensorType::Traffic, 2);
        // Flush, then age fog-1 out (1-day retention) and leave a fresh
        // unflushed wave behind: a window spanning the evicted past and
        // the pending present has no provable cover anywhere.
        e.flush_all(2_000).unwrap();
        e.flush_all(2 * 86_400).unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 99);
        let late = 2 * 86_400 + 10;
        e.ingest(5, gen.wave(late), late).unwrap();
        let q = aggregate_query(5, Scope::Section(5), 1_000, late + 100);
        assert!(matches!(
            e.serve_sync(&q, late + 200),
            Err(Error::Unanswerable { .. })
        ));
        assert_eq!(e.stats().unanswerable, 1);
    }

    #[test]
    fn city_scope_scatters_and_caches_at_the_gather_fog2() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        e.flush_all(4_000).unwrap();
        let q = Query {
            origin: 5,
            class: ServiceClass::CityWide,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::City,
            window: TimeWindow::new(0, 3_600),
            kind: QueryKind::Aggregate,
        };
        let cold = answered(e.serve_sync(&q, 4_100).unwrap());
        assert_eq!(cold.via, ServedVia::Scatter { legs: 10 });
        assert_eq!(cold.layer, Layer::Fog2);
        assert_eq!(e.stats().scatter_wins, 1, "fog-2 fan-out beat the cloud");
        // A different requester in the same district rides the gather
        // node's result cache instead of re-fanning.
        let q2 = Query { origin: 6, ..q };
        assert_eq!(e.city().district_of(5), e.city().district_of(6));
        let warm = answered(e.serve_sync(&q2, 4_101).unwrap());
        assert_eq!(warm.via, ServedVia::SourceCache(DataSource::Parent));
        assert_eq!(warm.answer, cold.answer);
        assert!(warm.est_latency < cold.est_latency);
    }

    fn city_with_waves(section: usize, waves: u64) -> F2cCity {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 42);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
        city
    }

    fn city_query(origin: usize) -> Query {
        Query {
            origin,
            class: ServiceClass::CityWide,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::City,
            window: TimeWindow::new(0, 3_600),
            kind: QueryKind::Aggregate,
        }
    }

    #[test]
    fn scatter_admission_requires_a_slot_per_leg() {
        let mut city = city_with_waves(5, 4);
        city.flush_all(4_000).unwrap();
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog2: 9,  // a 10-leg city fan-out cannot fit
                cloud: 0, // and the cloud fallback is saturated too
                ..LayerCaps::default()
            },
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        match e.serve(&city_query(5), 4_100).unwrap() {
            Outcome::Shed {
                layer,
                class,
                cause,
            } => {
                assert_eq!(layer, Layer::Fog2);
                assert_eq!(class, ServiceClass::CityWide);
                assert_eq!(cause, ShedCause::Capacity);
            }
            other => panic!("expected a fog-2 shed, got {other:?}"),
        }
        assert_eq!(e.stats().shed[Layer::Fog2.index()], 1);
        assert_eq!(e.stats().class(ServiceClass::CityWide).shed, 1);
    }

    #[test]
    fn saturated_fanout_reroutes_to_the_cloud_within_budget() {
        let mut city = city_with_waves(5, 4);
        city.flush_all(4_000).unwrap();
        // The fan-out wins the contest but its fog-2 quota cannot hold
        // ten legs; the losing cloud read fits the city-wide deadline
        // budget, so the query is rerouted instead of shed.
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog2: 9,
                ..LayerCaps::default()
            },
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        let resp = answered(e.serve(&city_query(5), 4_100).unwrap());
        assert_eq!(resp.via, ServedVia::Store(DataSource::Cloud));
        assert_eq!(
            resp.held,
            HeldSlots::single(Layer::Cloud, ServiceClass::CityWide)
        );
        let stats = e.stats();
        let cs = stats.class(ServiceClass::CityWide);
        assert_eq!(cs.rerouted, 1);
        assert_eq!(cs.shed, 0);
        assert_eq!(e.stats().shed_total(), 0, "a reroute is not a shed");
        assert_eq!(e.stats().scatter_wins, 1, "the contest still records costs");
    }

    #[test]
    fn shed_fanout_releases_partially_acquired_slots() {
        // No flush: section 5's district needs per-member fog-1 legs
        // while the other nine districts serve (vacuously) from fog-2 —
        // a mixed-layer fan-out. Fog 1 admits its legs, fog 2 refuses,
        // and the rollback must leave *nothing* in flight.
        let city = city_with_waves(5, 4);
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog2: 2, // nine fog-2 legs cannot fit
                ..LayerCaps::default()
            },
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        match e.serve(&city_query(5), 4_100).unwrap() {
            Outcome::Shed { layer, class, .. } => {
                assert_eq!(layer, Layer::Fog2);
                assert_eq!(class, ServiceClass::CityWide);
            }
            other => panic!("expected a fog-2 shed, got {other:?}"),
        }
        for layer in Layer::ALL {
            assert_eq!(
                e.in_flight(layer),
                0,
                "a shed fan-out must not leak slots at {layer}"
            );
        }
        // The capacity the rollback returned is immediately usable.
        let probe = aggregate_query(5, Scope::Section(5), 0, 1_800);
        answered(e.serve_sync(&probe, 4_200).unwrap());
    }

    #[test]
    fn analytics_borrowing_never_sheds_a_realtime_read() {
        // Fog-1 cap 10 under the default policy: analytics holds no
        // guarantee there and may borrow at most 2 headroom slots. Let
        // it saturate its borrow budget — the real-time guarantee (4
        // slots) must stay untouched.
        let city = city_with_waves(5, 6);
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog1: 10,
                ..LayerCaps::default()
            },
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        let analytics = |until: u64| Query {
            class: ServiceClass::Analytics,
            ..aggregate_query(5, Scope::Section(5), 0, until)
        };
        answered(e.serve(&analytics(1_800), 6_000).unwrap());
        answered(e.serve(&analytics(2_700), 6_000).unwrap());
        assert_eq!(e.ledger().borrowed(Layer::Fog1, ServiceClass::Analytics), 2);
        match e.serve(&analytics(3_600), 6_000).unwrap() {
            Outcome::Shed { layer, class, .. } => {
                assert_eq!(layer, Layer::Fog1);
                assert_eq!(class, ServiceClass::Analytics);
            }
            other => panic!("analytics must hit its borrow cap, got {other:?}"),
        }
        // A real-time read sails through on its guaranteed share.
        let rt = Query {
            origin: 5,
            class: ServiceClass::RealTime,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::Section(5),
            window: TimeWindow::new(0, 6_000),
            kind: QueryKind::Point,
        };
        answered(e.serve(&rt, 6_000).unwrap());
        assert_eq!(e.stats().class(ServiceClass::RealTime).shed, 0);
        assert_eq!(e.stats().class(ServiceClass::Analytics).shed, 1);
    }

    #[test]
    fn over_budget_routes_shed_at_plan_time() {
        // Age the window out of both fog tiers: only the cloud holds it,
        // and the ~70 ms WAN round trip busts the 25 ms real-time
        // budget — the read is shed at plan time, holding nothing.
        let mut e = engine_with_data(5, SensorType::Traffic, 2);
        e.flush_all(2_000).unwrap();
        e.flush_all(10 * 86_400).unwrap();
        let rt = Query {
            origin: 5,
            class: ServiceClass::RealTime,
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::Section(5),
            window: TimeWindow::new(0, 2_000),
            kind: QueryKind::Point,
        };
        let now = 10 * 86_400 + 100;
        match e.serve(&rt, now).unwrap() {
            Outcome::Shed {
                layer,
                class,
                cause,
            } => {
                assert_eq!(layer, Layer::Cloud);
                assert_eq!(class, ServiceClass::RealTime);
                assert_eq!(cause, ShedCause::Deadline);
            }
            other => panic!("expected a deadline shed, got {other:?}"),
        }
        assert_eq!(e.stats().class(ServiceClass::RealTime).deadline_shed, 1);
        assert_eq!(e.stats().shed_total(), 0, "no capacity was charged");
        assert_eq!(e.in_flight(Layer::Cloud), 0);
        // The analytics budget tolerates the WAN trip: same window, same
        // source, answered.
        let bulk = Query {
            class: ServiceClass::Analytics,
            ..rt
        };
        answered(e.serve_sync(&bulk, now).unwrap());
        assert_eq!(e.stats().class(ServiceClass::Analytics).slo_met, 1);
    }

    #[test]
    fn evicted_windows_answer_from_warm_sketches_and_match_the_raw_answer() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        // Aligned window, fully settled, then aged past *both* fog
        // tiers' raw retention (1 day / 7 days).
        let q = aggregate_query(5, Scope::Section(5), 0, 3_600);
        e.flush_all(3_600).unwrap();
        let before = answered(e.serve_sync(&q, 3_700).unwrap());
        e.flush_all(10 * 86_400).unwrap();
        let now = 10 * 86_400 + 10;
        let after = answered(e.serve_sync(&q, now).unwrap());
        assert_eq!(after.via, ServedVia::Store(DataSource::WarmSketch(5)));
        assert_eq!(after.layer, Layer::Fog1);
        assert!(e.stats().sketch_served == 1 && e.stats().sketch_hits > 0);
        match (&before.answer, &after.answer) {
            (QueryAnswer::Aggregate(a), QueryAnswer::Aggregate(b)) => {
                assert_eq!(a.count, b.count, "warm sketch matches the raw answer");
                assert_eq!(a.min, b.min);
                assert_eq!(a.max, b.max);
                assert_eq!(a.distinct_sensors, b.distinct_sensors);
            }
            other => panic!("expected aggregates, got {other:?}"),
        }
        // The local sketch merge undercuts every surviving raw source.
        assert!(after.est_latency < e.city().cost_model().cost(AccessOption::Cloud, 96));
    }

    #[test]
    fn stale_sketches_are_refused_until_the_flush_folds_the_straggler() {
        use scc_sensors::{Reading, SensorId, Value};
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = aggregate_query(5, Scope::Section(5), 0, 3_600);
        e.flush_all(3_600).unwrap();
        let cold = answered(e.serve_sync(&q, 3_700).unwrap());
        e.flush_all(10 * 86_400).unwrap();
        // A backdated straggler created inside the evicted window: the
        // sketch no longer proves the window (pending frontier below the
        // window end) and nothing else can either — refused, not served
        // stale.
        let late = Reading::new(
            SensorId::new(SensorType::Traffic, 901),
            1_000,
            Value::from_f64(2.0),
        );
        let now = 10 * 86_400 + 100;
        e.ingest(5, vec![late], now).unwrap();
        assert!(matches!(
            e.serve_sync(&q, now + 1),
            Err(Error::Unanswerable { .. })
        ));
        // The next flush folds the straggler into the ledger; the warm
        // sketch proves again and the answer includes it.
        e.flush_all(now + 900).unwrap();
        let warm = answered(e.serve_sync(&q, now + 1_000).unwrap());
        assert_eq!(warm.via, ServedVia::Store(DataSource::WarmSketch(5)));
        match (&cold.answer, &warm.answer) {
            (QueryAnswer::Aggregate(a), QueryAnswer::Aggregate(b)) => {
                assert_eq!(b.count, a.count + 1, "the straggler is folded in");
            }
            other => panic!("expected aggregates, got {other:?}"),
        }
    }

    #[test]
    fn warm_sketch_reads_admit_at_reduced_cost() {
        // Cap fog 1 at 1 and keep it occupied by a raw read: with the
        // default divisor (4), the first warm-sketch reads charge no
        // slot and sail through where a raw read would shed.
        let mut city = city_with_waves(5, 4);
        city.flush_all(3_600).unwrap();
        city.flush_all(10 * 86_400).unwrap();
        let cfg = EngineConfig {
            caps: LayerCaps {
                fog1: 1,
                ..LayerCaps::default()
            },
            result_ttl_s: 0, // no result caching: every serve executes
            ..EngineConfig::default()
        };
        let mut e = QueryEngine::new(city, cfg);
        let now = 10 * 86_400 + 10;
        // Occupy the only fog-1 slot with a live (un-evicted) raw read.
        let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 7);
        e.ingest(5, gen.wave(now), now).unwrap();
        let live = aggregate_query(5, Scope::Section(5), now - 10, now + 10);
        let held = answered(e.serve(&live, now).unwrap()).held;
        assert_eq!(e.in_flight(Layer::Fog1), 1, "the slot is taken");
        // Three sketch reads ride free (divisor 4)...
        let evicted = aggregate_query(5, Scope::Section(5), 0, 3_600);
        for i in 0..3 {
            let resp = answered(e.serve(&evicted, now + i).unwrap());
            assert_eq!(resp.via, ServedVia::Store(DataSource::WarmSketch(5)));
            assert!(resp.held.is_empty(), "reduced-cost admission: no slot");
        }
        // ...the fourth owes a slot, and the layer is full: it sheds.
        match e.serve(&evicted, now + 3).unwrap() {
            Outcome::Shed { layer, cause, .. } => {
                assert_eq!(layer, Layer::Fog1);
                assert_eq!(cause, ShedCause::Capacity);
            }
            other => panic!("expected the paying sketch read to shed, got {other:?}"),
        }
        e.release_held(held);
        let paying = answered(e.serve(&evicted, now + 4).unwrap());
        assert!(!paying.held.is_empty(), "the due charge is collected");
    }

    #[test]
    fn sketch_legs_cover_district_shards_after_full_raw_eviction() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let district = e.city().district_of(5);
        let members = e.city().sections_in_district(district).len() as u32;
        e.flush_all(3_600).unwrap();
        e.flush_all(10 * 86_400).unwrap();
        // District aggregate over the evicted window: both fog tiers'
        // raw shards are gone; the warm-sketch member legs fan out and
        // beat the cloud read.
        let q = aggregate_query(5, Scope::District(district), 0, 3_600);
        let resp = answered(e.serve_sync(&q, 10 * 86_400 + 10).unwrap());
        assert_eq!(resp.via, ServedVia::Scatter { legs: members });
        assert_eq!(e.stats().sketch_legs, u64::from(members));
        assert_eq!(e.stats().scatter_wins, 1, "sketch fan-out beats the WAN");
        match &resp.answer {
            QueryAnswer::Aggregate(a) => assert!(a.count > 0),
            other => panic!("expected an aggregate, got {other:?}"),
        }
    }

    #[test]
    fn settled_buckets_prefold_from_the_flush_shipped_ledger() {
        let mut e = engine_with_data(5, SensorType::Traffic, 8);
        e.flush_all(7_200).unwrap();
        // A parent-served district aggregate over settled buckets: every
        // full bucket assembles from the fog-2 ledger the flush shipped
        // into — no archive scan, no partial fills.
        let district = e.city().district_of(5);
        let q = aggregate_query(5, Scope::District(district), 0, 7_200);
        let resp = answered(e.serve_sync(&q, 7_300).unwrap());
        assert_eq!(resp.via, ServedVia::Store(DataSource::Parent));
        assert_eq!(e.stats().prefold_hits, 8, "one per settled bucket");
        assert_eq!(e.stats().partial_fills, 0, "nothing was scanned");
        assert_eq!(e.stats().records_scanned, 0);
        // The answer still matches a fresh engine's scan-based answer.
        let mut scan = engine_with_data(5, SensorType::Traffic, 8);
        let raw = answered(scan.serve_sync(&q, 7_300).unwrap());
        match (&resp.answer, &raw.answer) {
            (QueryAnswer::Aggregate(a), QueryAnswer::Aggregate(b)) => {
                assert_eq!(a.count, b.count);
                assert_eq!(a.min, b.min);
                assert_eq!(a.distinct_sensors, b.distinct_sensors);
            }
            other => panic!("expected aggregates, got {other:?}"),
        }
    }

    #[test]
    fn serving_publishes_metrics_and_wellformed_spans_into_the_city() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        let q = aggregate_query(5, Scope::Section(5), 0, 3_600);
        answered(e.serve_sync(&q, 4_000).unwrap());
        e.sync_gauges();
        let snap = e.city().metrics().snapshot();
        assert_eq!(snap.counter("query_requests{service=query}"), Some(1));
        assert_eq!(snap.counter("query_answered{service=query}"), Some(1));
        assert_eq!(snap.counter("query_store_served{service=query}"), Some(1));
        assert!(
            snap.gauges
                .iter()
                .any(|(k, _)| k.starts_with("qos_in_flight")),
            "gauges sync at snapshot time: {:?}",
            snap.gauges
        );
        // The stats() view and the registry are the same numbers.
        assert_eq!(e.stats().requests, 1);
        // The query lifecycle traced at the requester's site, well-formed.
        let log = e.city().tracer().log(Site::new("fog1", 5)).unwrap();
        assert_eq!(log.open_count(), 0, "no orphan spans after serving");
        assert_eq!(log.malformed(), 0);
        let names: Vec<_> = log.completed().map(|s| s.name).collect();
        for phase in [
            "query",
            "query-plan",
            "query-admit",
            "query-execute",
            "query-deliver",
        ] {
            assert!(names.contains(&phase), "missing {phase} in {names:?}");
        }
        // Children carry depth ≥ 1 under the root query span.
        let root = log.completed().find(|s| s.name == "query").unwrap();
        assert_eq!(root.depth, 0);
        assert!(log
            .completed()
            .filter(|s| s.name != "query")
            .all(|s| s.depth >= 1));
    }

    #[test]
    fn non_local_serving_is_metered_on_the_network() {
        let mut e = engine_with_data(5, SensorType::Traffic, 4);
        e.flush_all(4_000).unwrap();
        let district = e.city().district_of(5);
        let before = e.city().network_bytes();
        let q = aggregate_query(5, Scope::District(district), 0, 3_000);
        answered(e.serve_sync(&q, 4_100).unwrap());
        assert!(e.city().network_bytes() > before);
    }
}
