//! The layer-aware query planner: §IV.C's cost model applied to serving.
//!
//! For every query the planner enumerates the sources that *provably*
//! hold the whole window and picks the cheapest by access cost. A source
//! is provably complete when
//!
//! * its **eviction watermark** is at or before the window start (the
//!   retention business rule of §IV.B hasn't aged the data out), and
//! * everything created before the window end has **propagated** to it —
//!   checked against the pending-queue frontiers of the tiers below.
//!
//! When recent data has aged out of fog 1 the plan falls back upward
//! (fog 2, then the cloud), mirroring the residency ladder of §IV.B.

use citysim::time::Duration;
use f2c_core::cost::AccessOption;
use f2c_core::{DataSource, F2cCity, Layer, TieredStore};

use crate::model::{Query, Scope, TimeWindow};
use crate::{Error, Result};

/// Payload size used to rank candidate sources before the answer size is
/// known. All fog links share a bandwidth class in the default profile,
/// so the ranking is insensitive to the exact figure.
pub const NOMINAL_PAYLOAD_BYTES: u64 = 1_024;

/// Where and how a query will be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// The chosen source, relative to the requester.
    pub source: DataSource,
    /// The §IV.C access option it maps to.
    pub option: AccessOption,
    /// The architecture layer that will do the work.
    pub layer: Layer,
    /// Cost-model estimate at the nominal payload.
    pub est_cost: Duration,
}

/// Whether `store` still holds every record it ever received with a
/// creation time inside the window.
fn holds_window(store: &TieredStore, w: TimeWindow) -> bool {
    w.from_s >= store.evicted_before_s()
}

/// Whether everything created before `until_s` has left `store`'s
/// pending queue (i.e. has been flushed to the tier above).
fn pending_settled(store: &TieredStore, until_s: u64) -> bool {
    store.pending_earliest_s().is_none_or(|e| e >= until_s)
}

/// Plans the cheapest complete source for `query`.
///
/// # Errors
///
/// [`Error::BadQuery`] on invalid queries; [`Error::Unanswerable`] when
/// no reachable layer provably holds the whole window (e.g. the window
/// reaches past what the hierarchy has flushed upward so far).
pub fn plan(city: &F2cCity, query: &Query) -> Result<QueryPlan> {
    query.validated()?;
    let w = query.window;
    let origin_district = city.district_of(query.origin);
    let mut candidates: Vec<(AccessOption, DataSource, Layer)> = Vec::new();
    match query.scope {
        Scope::Section(target) => {
            let td = city.district_of(target);
            // The section's own fog-1 node holds everything the section
            // produced (pending copies included) until retention evicts.
            if holds_window(city.fog1(target).store(), w) {
                if target == query.origin {
                    candidates.push((AccessOption::Local, DataSource::Local, Layer::Fog1));
                } else if td == origin_district {
                    let hops = city.ring_hops(query.origin, target);
                    candidates.push((
                        AccessOption::Neighbor { hops },
                        DataSource::Neighbor(target),
                        Layer::Fog1,
                    ));
                }
                // Cross-district fog-1 peering is not modeled; the cloud
                // serves those requesters below.
            }
            if td == origin_district
                && holds_window(city.fog2(td).store(), w)
                && pending_settled(city.fog1(target).store(), w.until_s)
            {
                candidates.push((AccessOption::Parent, DataSource::Parent, Layer::Fog2));
            }
            if pending_settled(city.fog1(target).store(), w.until_s)
                && pending_settled(city.fog2(td).store(), w.until_s)
            {
                candidates.push((AccessOption::Cloud, DataSource::Cloud, Layer::Cloud));
            }
        }
        Scope::District(d) => {
            // Individual fog-1 nodes each hold one section's slice, so a
            // district window needs fog 2 or above (per-section
            // scatter-gather is a roadmap follow-on).
            let members = city.sections_in_district(d);
            let members_settled = members
                .iter()
                .all(|&s| pending_settled(city.fog1(s).store(), w.until_s));
            if d == origin_district && holds_window(city.fog2(d).store(), w) && members_settled {
                candidates.push((AccessOption::Parent, DataSource::Parent, Layer::Fog2));
            }
            if members_settled && pending_settled(city.fog2(d).store(), w.until_s) {
                candidates.push((AccessOption::Cloud, DataSource::Cloud, Layer::Cloud));
            }
        }
    }
    let cost = city.cost_model();
    candidates
        .into_iter()
        .map(|(option, source, layer)| QueryPlan {
            source,
            option,
            layer,
            est_cost: cost.cost(option, NOMINAL_PAYLOAD_BYTES),
        })
        .min_by_key(|p| p.est_cost.as_micros())
        .ok_or_else(|| Error::Unanswerable {
            reason: format!(
                "no layer provably holds {:?}/{:?} over [{}, {}) yet",
                query.selector, query.scope, w.from_s, w.until_s
            ),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{QueryKind, Selector};
    use scc_sensors::{ReadingGenerator, SensorType};

    fn city_with_data(section: usize, ty: SensorType, waves: u64) -> F2cCity {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(ty, 10, section as u64 + 1);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
        city
    }

    fn q(origin: usize, scope: Scope, from: u64, until: u64) -> Query {
        Query {
            origin,
            selector: Selector::Type(SensorType::Weather),
            scope,
            window: TimeWindow::new(from, until),
            kind: QueryKind::Aggregate,
        }
    }

    #[test]
    fn local_data_plans_local() {
        let city = city_with_data(5, SensorType::Weather, 4);
        let plan = plan(&city, &q(5, Scope::Section(5), 0, 10_000)).unwrap();
        assert_eq!(plan.source, DataSource::Local);
        assert_eq!(plan.layer, Layer::Fog1);
    }

    #[test]
    fn neighbor_beats_cloud_for_same_district_sections() {
        let city = city_with_data(1, SensorType::Weather, 4);
        let plan = plan(&city, &q(0, Scope::Section(1), 0, 10_000)).unwrap();
        assert_eq!(plan.source, DataSource::Neighbor(1));
    }

    #[test]
    fn unflushed_district_window_is_unanswerable_then_parent_after_flush() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        let district = city.district_of(5);
        let query = q(5, Scope::District(district), 0, 3_000);
        assert!(matches!(
            plan(&city, &query),
            Err(Error::Unanswerable { .. })
        ));
        city.flush_all(4_000).unwrap();
        let p = plan(&city, &query).unwrap();
        assert_eq!(p.source, DataSource::Parent);
        assert_eq!(p.layer, Layer::Fog2);
    }

    #[test]
    fn cross_district_requester_is_served_by_the_cloud() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let district = city.district_of(5);
        // Section 70 is in Sant Martí (district 9), far from district of 5.
        assert_ne!(city.district_of(70), district);
        let p = plan(&city, &q(70, Scope::District(district), 0, 3_000)).unwrap();
        assert_eq!(p.source, DataSource::Cloud);
    }

    #[test]
    fn aged_out_fog1_falls_back_upward() {
        let mut city = city_with_data(5, SensorType::Weather, 2);
        city.flush_all(2_000).unwrap();
        // Two days in: fog-1 retention (1 day) evicts; fog-2 still holds.
        city.flush_all(2 * 86_400).unwrap();
        let p = plan(&city, &q(5, Scope::Section(5), 0, 2_000)).unwrap();
        assert_eq!(p.source, DataSource::Parent, "fog-1 window aged out");
        // Ten days in: fog-2 retention (7 days) evicts too; only the
        // cloud still has the historical window.
        city.flush_all(10 * 86_400).unwrap();
        let p = plan(&city, &q(5, Scope::Section(5), 0, 2_000)).unwrap();
        assert_eq!(p.source, DataSource::Cloud);
    }

    #[test]
    fn plans_rank_by_cost_model() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let local = plan(&city, &q(5, Scope::Section(5), 0, 3_000)).unwrap();
        let district = city.district_of(5);
        let parent = plan(&city, &q(5, Scope::District(district), 0, 3_000)).unwrap();
        let cloud = plan(&city, &q(70, Scope::District(district), 0, 3_000)).unwrap();
        assert!(local.est_cost < parent.est_cost);
        assert!(parent.est_cost < cloud.est_cost);
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let city = F2cCity::barcelona().unwrap();
        assert!(matches!(
            plan(&city, &q(73, Scope::Section(0), 0, 10)),
            Err(Error::BadQuery { .. })
        ));
    }
}
