//! The layer-aware query planner: §IV.C's cost model applied to serving.
//!
//! For every query the planner enumerates the routes that *provably*
//! cover the whole window and picks the cheapest by access cost. A
//! source is provably complete for its shard when
//!
//! * its **eviction watermark** is at or before the window start (the
//!   retention business rule of §IV.B hasn't aged the data out), and
//! * everything created before the window end has **propagated** to it —
//!   checked against the pending-queue frontiers of the tiers below.
//!
//! Two route shapes exist. A **single-source** route reads one node that
//! holds the whole scope: the section's own fog-1, a same-district
//! neighbor, the fog-2 parent, a *sibling district's* fog-2 over the
//! metro ring, or the cloud. A **scatter-gather** route fans the query
//! out over the member fog-1/fog-2 nodes that each hold one shard of the
//! scope, and merges the partials at the requester's fog-2 — the §V.A
//! decomposability payoff across *nodes* instead of across time buckets.
//! City-wide scopes and windows that have not yet flushed upward are
//! only coverable this way; where both a fan-out and a cloud read are
//! possible the cost model (max over legs + per-leg merge/admission +
//! last-hop delivery, vs. one WAN round trip) decides per query.
//!
//! When recent data has aged out of fog 1 the plan falls back upward
//! (fog 2, then the cloud), mirroring the residency ladder of §IV.B —
//! unless the **sketch plane** can answer first: an *aggregate* query
//! over a bucket-aligned window that fog 1 has evicted is still provable
//! from the node's [`f2c_aggregate::sketch::SketchLedger`] of pre-folded
//! bucket partials ([`DataSource::WarmSketch`]), whose seal frontier —
//! the flush-epoch frontier of the write path — bounds the staleness:
//! the window must end at or before the last seal *and* nothing created
//! inside it may still sit in the node's pending queue (a backdated
//! ingest makes the sketch stale, and stale sketches are refused).
//! Warm sketches also join scatter-gather as per-member legs, so a
//! district shard whose raw shards are gone everywhere in the fog can
//! still contest the cloud read.
//!
//! # Example: answering an evicted window from warm sketches
//!
//! ```
//! use f2c_core::{DataSource, F2cCity};
//! use f2c_query::model::{Query, QueryKind, Scope, Selector, TimeWindow};
//! use f2c_query::planner::{plan, Choice};
//! use scc_sensors::{ReadingGenerator, SensorType};
//!
//! let mut city = F2cCity::barcelona()?;
//! let mut gen = ReadingGenerator::for_population(SensorType::Traffic, 10, 7);
//! city.ingest(5, gen.wave(0), 1)?;
//! city.flush_all(900)?;
//! city.flush_all(10 * 86_400)?; // both fog tiers evict the raw window
//! let query = Query {
//!     origin: 5,
//!     class: f2c_qos::ServiceClass::RealTime,
//!     selector: Selector::Type(SensorType::Traffic),
//!     scope: Scope::Section(5),
//!     window: TimeWindow::new(0, 900), // bucket-aligned
//!     kind: QueryKind::Aggregate,
//! };
//! let route = plan(&city, &query)?;
//! match route.choice {
//!     Choice::Single(p) => assert_eq!(p.source, DataSource::WarmSketch(5)),
//!     Choice::Scatter(_) => unreachable!(),
//! }
//! # Ok::<(), f2c_query::Error>(())
//! ```

use citysim::time::Duration;
use f2c_core::cost::{AccessOption, FanoutPath};
use f2c_core::{DataSource, F2cCity, FanoutLeg, Layer, TieredStore};
use f2c_obs::Json;

use crate::model::{Query, QueryKind, Scope, TimeWindow};
use crate::{Error, Result};

/// Payload size used to rank candidate sources before the answer size is
/// known. All fog links share a bandwidth class in the default profile,
/// so the ranking is insensitive to the exact figure.
pub const NOMINAL_PAYLOAD_BYTES: u64 = 1_024;

/// A single-source serving plan: where and how the query will be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// The chosen source, relative to the requester.
    pub source: DataSource,
    /// The §IV.C access option it maps to.
    pub option: AccessOption,
    /// The architecture layer that will do the work.
    pub layer: Layer,
    /// Cost-model estimate at the nominal payload.
    pub est_cost: Duration,
}

/// One leg of a scatter-gather fan-out: a node that provably holds one
/// shard of the query's scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterLeg {
    /// The node executing this leg.
    pub node: FanoutLeg,
    /// The shard of the query's scope this leg answers for.
    pub scope: Scope,
    /// Transport path from the gather node, for pricing and latency.
    pub path: FanoutPath,
    /// The layer whose admission slot this leg occupies.
    pub layer: Layer,
    /// Whether the leg answers from the node's warm sketch ledger
    /// (pre-folded bucket partials; the raw shard may be evicted)
    /// instead of scanning its archive. Only aggregate shards are ever
    /// planned this way.
    pub via_sketch: bool,
}

/// A scatter-gather serving plan: fan out over `legs`, merge at the
/// requester's district fog-2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterPlan {
    /// The fan-out legs (disjoint shards covering the scope).
    pub legs: Vec<ScatterLeg>,
    /// District whose fog-2 node merges the partials (the requester's).
    pub gather_district: usize,
    /// Cost-model estimate at the nominal payload: max over the legs,
    /// plus per-leg merge and admission overhead, plus last-hop delivery.
    pub est_cost: Duration,
}

/// The route shape the planner chose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Choice {
    /// Serve from one complete source.
    Single(QueryPlan),
    /// Fan out over per-shard legs and merge at the gather fog-2.
    Scatter(ScatterPlan),
}

impl Choice {
    /// This plan's cost estimate at the nominal payload.
    pub fn est_cost(&self) -> Duration {
        match self {
            Choice::Single(p) => p.est_cost,
            Choice::Scatter(p) => p.est_cost,
        }
    }

    /// The layer whose admission quota this plan charges first: the
    /// single source's layer, or the *gather* fog-2 of a fan-out.
    pub fn charged_layer(&self) -> Layer {
        match self {
            Choice::Single(p) => p.layer,
            Choice::Scatter(_) => Layer::Fog2,
        }
    }
}

/// The planner's decision for one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The winning plan.
    pub choice: Choice,
    /// The losing shape when both a fan-out and a complete single source
    /// could serve the query. The engine may *reroute* onto it when the
    /// winner's admission quota is saturated — but only while its cost
    /// still fits the requesting class's deadline budget.
    pub fallback: Option<Choice>,
    /// Set when *both* a fan-out and the single-source cloud read could
    /// serve the query: `(scatter, cloud)` cost estimates. The engine
    /// counts these contests to report fan-out-vs-cloud win rates.
    pub contest: Option<(Duration, Duration)>,
}

impl Route {
    /// The winning plan's cost estimate.
    pub fn est_cost(&self) -> Duration {
        self.choice.est_cost()
    }
}

/// The planner's decision transcript, collected only when a caller asks
/// for an EXPLAIN: completeness-proof verdicts in evaluation order, plus
/// every candidate the ranking saw.
#[derive(Debug, Default)]
struct Capture {
    proofs: Vec<String>,
    candidates: Vec<Json>,
}

/// Pushes a proof line, building the string only when capturing.
fn note(cap: &mut Option<Capture>, build: impl FnOnce() -> String) {
    if let Some(c) = cap.as_mut() {
        c.proofs.push(build());
    }
}

/// The stable label + ring-hop count of an access option, for transcripts
/// a replay oracle can re-price.
fn option_parts(option: AccessOption) -> (&'static str, u64) {
    match option {
        AccessOption::Local => ("local", 0),
        AccessOption::LocalSketch => ("local-sketch", 0),
        AccessOption::Neighbor { hops } => ("neighbor", u64::from(hops)),
        AccessOption::Parent => ("parent", 0),
        AccessOption::SiblingFog2 { hops } => ("sibling-fog2", u64::from(hops)),
        AccessOption::Cloud => ("cloud", 0),
    }
}

/// Rebuilds the [`AccessOption`] a transcript candidate named. This is
/// the EXPLAIN schema's replay contract: `option` + `hops` round-trip.
pub fn option_from_parts(label: &str, hops: u64) -> Option<AccessOption> {
    let hops = hops as u32;
    match label {
        "local" => Some(AccessOption::Local),
        "local-sketch" => Some(AccessOption::LocalSketch),
        "neighbor" => Some(AccessOption::Neighbor { hops }),
        "parent" => Some(AccessOption::Parent),
        "sibling-fog2" => Some(AccessOption::SiblingFog2 { hops }),
        "cloud" => Some(AccessOption::Cloud),
        _ => None,
    }
}

fn single_candidate_json(option: AccessOption, source: DataSource, cost: Duration) -> Json {
    let (label, hops) = option_parts(option);
    let mut j = Json::obj();
    j.set("shape", Json::Str("single".to_string()));
    j.set("option", Json::Str(label.to_string()));
    j.set("hops", Json::Num(hops as f64));
    j.set("source", Json::Str(format!("{source:?}")));
    j.set("cost_us", Json::Num(cost.as_micros() as f64));
    j
}

fn scatter_candidate_json(plan: &ScatterPlan) -> Json {
    let mut j = Json::obj();
    j.set("shape", Json::Str("scatter".to_string()));
    j.set("legs", Json::Num(plan.legs.len() as f64));
    j.set(
        "sketch_legs",
        Json::Num(plan.legs.iter().filter(|l| l.via_sketch).count() as f64),
    );
    j.set("gather_district", Json::Num(plan.gather_district as f64));
    j.set("cost_us", Json::Num(plan.est_cost.as_micros() as f64));
    j
}

/// Plans `query` *and* returns the decision transcript as Json: the
/// query, every completeness proof the planner evaluated (with its
/// verdict), every candidate with its nominal-payload cost, the
/// scatter-vs-cloud contest pricing, and the chosen route. The route is
/// byte-for-byte the one [`plan`] returns; `tests` hold a replay oracle
/// to the transcript (re-pricing the candidates reproduces the choice).
///
/// # Errors
///
/// Exactly [`plan`]'s errors — an unanswerable query has no transcript.
pub fn plan_explained(city: &F2cCity, query: &Query) -> Result<(Route, Json)> {
    let mut cap = Some(Capture::default());
    let route = plan_captured(city, query, &mut cap)?;
    let cap = cap.expect("capture survives planning");
    let mut doc = Json::obj();
    let mut q = Json::obj();
    q.set("origin", Json::Num(query.origin as f64));
    q.set("class", Json::Str(format!("{:?}", query.class)));
    q.set("selector", Json::Str(format!("{:?}", query.selector)));
    q.set("scope", Json::Str(format!("{:?}", query.scope)));
    q.set("from_s", Json::Num(query.window.from_s as f64));
    q.set("until_s", Json::Num(query.window.until_s as f64));
    q.set("kind", Json::Str(format!("{:?}", query.kind)));
    doc.set("query", q);
    doc.set(
        "proofs",
        Json::Arr(cap.proofs.into_iter().map(Json::Str).collect()),
    );
    doc.set("candidates", Json::Arr(cap.candidates));
    match route.contest {
        Some((scatter_us, cloud_us)) => {
            let mut c = Json::obj();
            c.set("scatter_us", Json::Num(scatter_us.as_micros() as f64));
            c.set("cloud_us", Json::Num(cloud_us.as_micros() as f64));
            doc.set("contest", c);
        }
        None => {
            doc.set("contest", Json::Null);
        }
    }
    let chosen = match &route.choice {
        Choice::Single(p) => {
            let (label, _) = option_parts(p.option);
            format!("single:{label}")
        }
        Choice::Scatter(s) => format!("scatter:{}", s.legs.len()),
    };
    doc.set("choice", Json::Str(chosen));
    doc.set(
        "choice_cost_us",
        Json::Num(route.est_cost().as_micros() as f64),
    );
    doc.set(
        "fallback",
        match &route.fallback {
            Some(Choice::Single(p)) => {
                let (label, _) = option_parts(p.option);
                Json::Str(format!("single:{label}"))
            }
            Some(Choice::Scatter(s)) => Json::Str(format!("scatter:{}", s.legs.len())),
            None => Json::Null,
        },
    );
    Ok((route, doc))
}

/// Whether `store` still holds every record it ever received with a
/// creation time inside the window.
fn holds_window(store: &TieredStore, w: TimeWindow) -> bool {
    w.from_s >= store.evicted_before_s()
}

/// Whether `section`'s fog-1 **sketch ledger** provably covers `w`:
/// the window is bucket-aligned, every bucket survives ledger
/// compaction, the seal frontier (the write path's flush-epoch
/// frontier — the explicit staleness bound) reaches the window end,
/// and nothing created inside the window still sits in the node's
/// pending queue. The last check is what refuses a *stale* sketch: a
/// backdated ingest lands in pending, drops the frontier below the
/// window end, and the sketch stops proving until the next flush folds
/// the straggler in.
fn warm_sketch_covers(city: &F2cCity, section: usize, w: TimeWindow) -> bool {
    let node = city.fog1(section);
    node.sketches().covers(section as u16, w.from_s, w.until_s)
        && node.store().settled_through(w.until_s)
}

/// Whether district `d`'s fog-2 node provably holds the district's whole
/// window: nothing aged out above, nothing still pending below.
fn fog2_complete(city: &F2cCity, d: usize, w: TimeWindow) -> bool {
    holds_window(city.fog2(d).store(), w)
        && city
            .sections_in_district(d)
            .iter()
            .all(|&s| city.fog1(s).store().settled_through(w.until_s))
}

/// Whether every member fog-1 node of district `d` still holds its own
/// shard of the window. Fog-1 nodes hold everything their section
/// produced (pending copies included) until retention evicts, so this
/// covers windows that have not been flushed upward yet.
fn fog1_shards_complete(city: &F2cCity, d: usize, w: TimeWindow) -> bool {
    city.sections_in_district(d)
        .iter()
        .all(|&s| holds_window(city.fog1(s).store(), w))
}

/// Whether the cloud provably holds `w` for the given districts: every
/// member fog-1 and fog-2 queue below it has settled past the window end.
fn cloud_complete<'a>(
    city: &F2cCity,
    districts: impl Iterator<Item = &'a usize>,
    w: TimeWindow,
) -> bool {
    districts.into_iter().all(|&d| {
        city.fog2(d).store().settled_through(w.until_s)
            && city
                .sections_in_district(d)
                .iter()
                .all(|&s| city.fog1(s).store().settled_through(w.until_s))
    })
}

/// The fan-out legs covering district `d`'s shard, gathered at
/// `gather`'s fog-2: the district fog-2 when it is provably complete
/// (one leg), else one leg per member fog-1 node, else — for aggregate
/// queries — one *warm-sketch* leg per member whose ledger still covers
/// the window (the raw shards may all be evicted), else `None` — the
/// shard is not provably held at the fog tiers.
fn district_legs(
    city: &F2cCity,
    d: usize,
    gather: usize,
    w: TimeWindow,
    kind: QueryKind,
    cap: &mut Option<Capture>,
) -> Option<Vec<ScatterLeg>> {
    let hops = city.fog2_ring_hops(d, gather);
    if fog2_complete(city, d, w) {
        note(cap, || {
            format!(
                "district {d}: fog2 complete (evicted_before={} <= {}, members settled through {}) -> one fog2 leg",
                city.fog2(d).store().evicted_before_s(),
                w.from_s,
                w.until_s
            )
        });
        let path = if d == gather {
            FanoutPath::GatherLocal
        } else {
            FanoutPath::SiblingFog2 { hops }
        };
        return Some(vec![ScatterLeg {
            node: FanoutLeg::Fog2(d),
            scope: Scope::District(d),
            path,
            layer: Layer::Fog2,
            via_sketch: false,
        }]);
    }
    let member_legs = |via_sketch: bool| {
        city.sections_in_district(d)
            .into_iter()
            .map(|s| ScatterLeg {
                node: FanoutLeg::Fog1(s),
                scope: Scope::Section(s),
                path: FanoutPath::MemberFog1 { hops },
                layer: Layer::Fog1,
                via_sketch,
            })
            .collect()
    };
    if fog1_shards_complete(city, d, w) {
        note(cap, || {
            format!(
                "district {d}: fog2 incomplete, every member fog1 holds its shard (watermarks <= {}) -> member legs",
                w.from_s
            )
        });
        return Some(member_legs(false));
    }
    if kind == QueryKind::Aggregate
        && city
            .sections_in_district(d)
            .iter()
            .all(|&s| warm_sketch_covers(city, s, w))
    {
        // Every member's raw shard is gone, but their warm sketches all
        // still cover the window: a sketch-leg fan-out contests the
        // cloud read instead of conceding it.
        note(cap, || {
            format!(
                "district {d}: raw shards evicted, every member's sketch seal covers [{}, {}) -> warm-sketch legs",
                w.from_s, w.until_s
            )
        });
        return Some(member_legs(true));
    }
    note(cap, || {
        format!(
            "district {d}: no provable cover at the fog tiers for [{}, {}) -> rejected",
            w.from_s, w.until_s
        )
    });
    None
}

fn scatter_plan(city: &F2cCity, legs: Vec<ScatterLeg>, gather: usize) -> ScatterPlan {
    let paths: Vec<FanoutPath> = legs.iter().map(|l| l.path).collect();
    let est_cost =
        city.cost_model()
            .scatter_cost(&paths, NOMINAL_PAYLOAD_BYTES, NOMINAL_PAYLOAD_BYTES);
    ScatterPlan {
        legs,
        gather_district: gather,
        est_cost,
    }
}

/// Plans the cheapest provably-complete route for `query`.
///
/// # Errors
///
/// [`Error::BadQuery`] on invalid queries; [`Error::Unanswerable`] when
/// no reachable route provably covers the whole window (e.g. the window
/// reaches past what the hierarchy has flushed upward so far *and* some
/// fog-1 shard has already aged out).
pub fn plan(city: &F2cCity, query: &Query) -> Result<Route> {
    plan_captured(city, query, &mut None)
}

fn plan_captured(city: &F2cCity, query: &Query, cap: &mut Option<Capture>) -> Result<Route> {
    query.validated()?;
    let w = query.window;
    let origin_district = city.district_of(query.origin);
    let cost = city.cost_model();
    let mut singles: Vec<(AccessOption, DataSource, Layer)> = Vec::new();
    let mut scatter: Option<ScatterPlan> = None;
    match query.scope {
        Scope::Section(target) => {
            let td = city.district_of(target);
            let target_holds = holds_window(city.fog1(target).store(), w);
            // Section scope only needs the *target's* slice: a sibling
            // section's unflushed pendings cannot change this answer, so
            // the fog-2/cloud proofs check the target's frontier alone
            // (not the whole district's).
            let target_settled = city.fog1(target).store().settled_through(w.until_s);
            let fog2_ok = holds_window(city.fog2(td).store(), w) && target_settled;
            note(cap, || {
                format!(
                    "fog1[{target}]: eviction watermark {} vs window start {} -> {}",
                    city.fog1(target).store().evicted_before_s(),
                    w.from_s,
                    if target_holds { "holds" } else { "evicted" }
                )
            });
            note(cap, || {
                format!(
                    "fog1[{target}]: pending frontier settled through {} -> {}",
                    w.until_s,
                    if target_settled { "settled" } else { "pending" }
                )
            });
            note(cap, || {
                format!(
                    "fog2[{td}]: watermark {} and target frontier -> {}",
                    city.fog2(td).store().evicted_before_s(),
                    if fog2_ok { "complete" } else { "incomplete" }
                )
            });
            // The section's own fog-1 node holds everything the section
            // produced (pending copies included) until retention evicts.
            if target_holds {
                if target == query.origin {
                    singles.push((AccessOption::Local, DataSource::Local, Layer::Fog1));
                } else if td == origin_district {
                    let hops = city.ring_hops(query.origin, target);
                    singles.push((
                        AccessOption::Neighbor { hops },
                        DataSource::Neighbor(target),
                        Layer::Fog1,
                    ));
                }
                // Cross-district fog-1 peering is not modeled; remote
                // requesters go through the target's fog-2 or the cloud.
            }
            if fog2_ok {
                if td == origin_district {
                    singles.push((AccessOption::Parent, DataSource::Parent, Layer::Fog2));
                } else {
                    let hops = city.fog2_ring_hops(origin_district, td);
                    singles.push((
                        AccessOption::SiblingFog2 { hops },
                        DataSource::RemoteFog2(td),
                        Layer::Fog2,
                    ));
                }
            }
            let cloud_ok = target_settled && city.fog2(td).store().settled_through(w.until_s);
            note(cap, || {
                format!(
                    "cloud: fog1[{target}] and fog2[{td}] frontiers settled through {} -> {}",
                    w.until_s,
                    if cloud_ok { "complete" } else { "incomplete" }
                )
            });
            if cloud_ok {
                singles.push((AccessOption::Cloud, DataSource::Cloud, Layer::Cloud));
            }
            if query.kind == QueryKind::Aggregate
                && !target_holds
                && td == origin_district
                && warm_sketch_covers(city, target, w)
            {
                note(cap, || {
                    format!(
                        "fog1[{target}]: raw evicted but sketch seal covers [{}, {}) and nothing pending -> warm sketch admitted",
                        w.from_s, w.until_s
                    )
                });
                // The raw window has aged out of the target's fog-1, but
                // its warm sketch still covers: merge pre-folded bucket
                // partials locally (or over the district ring) instead
                // of climbing to fog 2 / the cloud.
                let option = if target == query.origin {
                    AccessOption::LocalSketch
                } else {
                    AccessOption::Neighbor {
                        hops: city.ring_hops(query.origin, target),
                    }
                };
                singles.push((option, DataSource::WarmSketch(target), Layer::Fog1));
            }
            if td != origin_district && !fog2_ok && target_holds {
                // A remote section whose window has not flushed upward
                // yet: relay the target's fog-1 through the requester's
                // fog-2 as a one-leg fan-out (neither the sibling fog-2
                // nor the cloud can prove completeness here).
                note(cap, || {
                    format!(
                        "fog1[{target}]: remote unflushed window -> one-leg relay through fog2[{origin_district}]"
                    )
                });
                let hops = city.fog2_ring_hops(td, origin_district);
                scatter = Some(scatter_plan(
                    city,
                    vec![ScatterLeg {
                        node: FanoutLeg::Fog1(target),
                        scope: Scope::Section(target),
                        path: FanoutPath::MemberFog1 { hops },
                        layer: Layer::Fog1,
                        via_sketch: false,
                    }],
                    origin_district,
                ));
            }
        }
        Scope::District(d) => {
            // One evaluation decides the shape: a lone fog-2 leg means
            // the district fog-2 is provably complete (serve it as a
            // single source — parent or metro-ring sibling); fog-1 legs
            // mean the window lives only at the members (scatter-gather,
            // merged at the requester's fog-2).
            match district_legs(city, d, origin_district, w, query.kind, cap) {
                Some(legs)
                    if matches!(
                        legs[..],
                        [ScatterLeg {
                            layer: Layer::Fog2,
                            ..
                        }]
                    ) =>
                {
                    if d == origin_district {
                        singles.push((AccessOption::Parent, DataSource::Parent, Layer::Fog2));
                    } else {
                        // A sibling district's fog-2 provably holds the
                        // window: read it over the metro ring instead of
                        // silently falling back to the cloud.
                        let hops = city.fog2_ring_hops(origin_district, d);
                        singles.push((
                            AccessOption::SiblingFog2 { hops },
                            DataSource::RemoteFog2(d),
                            Layer::Fog2,
                        ));
                    }
                }
                Some(legs) => scatter = Some(scatter_plan(city, legs, origin_district)),
                None => {}
            }
            let cloud_ok = cloud_complete(city, [d].iter(), w);
            note(cap, || {
                format!(
                    "cloud: district {d} frontiers settled through {} -> {}",
                    w.until_s,
                    if cloud_ok { "complete" } else { "incomplete" }
                )
            });
            if cloud_ok {
                singles.push((AccessOption::Cloud, DataSource::Cloud, Layer::Cloud));
            }
        }
        Scope::City => {
            let districts: Vec<usize> = (0..city.district_count()).collect();
            let mut legs = Vec::new();
            let mut coverable = true;
            for &d in &districts {
                match district_legs(city, d, origin_district, w, query.kind, cap) {
                    Some(mut shard) => legs.append(&mut shard),
                    None => {
                        coverable = false;
                        break;
                    }
                }
            }
            if coverable {
                scatter = Some(scatter_plan(city, legs, origin_district));
            }
            let cloud_ok = cloud_complete(city, districts.iter(), w);
            note(cap, || {
                format!(
                    "cloud: all-district frontiers settled through {} -> {}",
                    w.until_s,
                    if cloud_ok { "complete" } else { "incomplete" }
                )
            });
            if cloud_ok {
                singles.push((AccessOption::Cloud, DataSource::Cloud, Layer::Cloud));
            }
        }
    }

    let best_single = singles
        .into_iter()
        .map(|(option, source, layer)| {
            let est_cost = cost.cost(option, NOMINAL_PAYLOAD_BYTES);
            if let Some(c) = cap.as_mut() {
                c.candidates
                    .push(single_candidate_json(option, source, est_cost));
            }
            QueryPlan {
                source,
                option,
                layer,
                est_cost,
            }
        })
        .min_by_key(|p| p.est_cost.as_micros());
    if let (Some(c), Some(s)) = (cap.as_mut(), &scatter) {
        c.candidates.push(scatter_candidate_json(s));
    }

    // Fan-out-vs-cloud contest: only recorded when both shapes are
    // viable, which (today) only happens against the cloud — every
    // other single source implies the scope fits one fog node, where no
    // scatter plan is built.
    let contest = match (&scatter, &best_single) {
        (Some(s), Some(b)) if b.source == DataSource::Cloud => Some((s.est_cost, b.est_cost)),
        _ => None,
    };

    match (scatter, best_single) {
        (Some(s), Some(b)) => {
            let (choice, fallback) = if s.est_cost <= b.est_cost {
                (Choice::Scatter(s), Choice::Single(b))
            } else {
                (Choice::Single(b), Choice::Scatter(s))
            };
            Ok(Route {
                choice,
                fallback: Some(fallback),
                contest,
            })
        }
        (Some(s), None) => Ok(Route {
            choice: Choice::Scatter(s),
            fallback: None,
            contest,
        }),
        (None, Some(b)) => Ok(Route {
            choice: Choice::Single(b),
            fallback: None,
            contest,
        }),
        (None, None) => Err(Error::Unanswerable {
            reason: format!(
                "no route provably covers {:?}/{:?} over [{}, {}) yet",
                query.selector, query.scope, w.from_s, w.until_s
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{QueryKind, Selector};
    use scc_sensors::{ReadingGenerator, SensorType};

    fn city_with_data(section: usize, ty: SensorType, waves: u64) -> F2cCity {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gen = ReadingGenerator::for_population(ty, 10, section as u64 + 1);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 900), w * 900 + 1)
                .unwrap();
        }
        city
    }

    fn q(origin: usize, scope: Scope, from: u64, until: u64) -> Query {
        Query {
            origin,
            class: f2c_qos::ServiceClass::Dashboard,
            selector: Selector::Type(SensorType::Weather),
            scope,
            window: TimeWindow::new(from, until),
            kind: QueryKind::Aggregate,
        }
    }

    fn single(route: Route) -> QueryPlan {
        match route.choice {
            Choice::Single(p) => p,
            Choice::Scatter(s) => panic!("expected a single-source plan, got scatter {s:?}"),
        }
    }

    fn scatter(route: Route) -> ScatterPlan {
        match route.choice {
            Choice::Scatter(s) => s,
            Choice::Single(p) => panic!("expected a scatter plan, got {p:?}"),
        }
    }

    #[test]
    fn local_data_plans_local() {
        let city = city_with_data(5, SensorType::Weather, 4);
        let plan = single(plan(&city, &q(5, Scope::Section(5), 0, 10_000)).unwrap());
        assert_eq!(plan.source, DataSource::Local);
        assert_eq!(plan.layer, Layer::Fog1);
    }

    #[test]
    fn neighbor_beats_cloud_for_same_district_sections() {
        let city = city_with_data(1, SensorType::Weather, 4);
        let plan = single(plan(&city, &q(0, Scope::Section(1), 0, 10_000)).unwrap());
        assert_eq!(plan.source, DataSource::Neighbor(1));
    }

    #[test]
    fn unflushed_district_window_scatters_then_parent_after_flush() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        let district = city.district_of(5);
        let query = q(5, Scope::District(district), 0, 3_000);
        // Nothing above fog 1 holds the window yet, but every member
        // fog-1 does: fan out over the members instead of failing.
        let s = scatter(plan(&city, &query).unwrap());
        assert_eq!(s.gather_district, district);
        assert_eq!(
            s.legs.len(),
            city.sections_in_district(district).len(),
            "one leg per member section"
        );
        assert!(s.legs.iter().all(|l| l.layer == Layer::Fog1));
        city.flush_all(4_000).unwrap();
        let p = single(plan(&city, &query).unwrap());
        assert_eq!(p.source, DataSource::Parent);
        assert_eq!(p.layer, Layer::Fog2);
    }

    #[test]
    fn cross_district_requester_reads_the_sibling_fog2_not_the_cloud() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let district = city.district_of(5);
        // Section 70 is in Sant Martí (district 9), far from district of 5.
        assert_ne!(city.district_of(70), district);
        let p = single(plan(&city, &q(70, Scope::District(district), 0, 3_000)).unwrap());
        assert_eq!(
            p.source,
            DataSource::RemoteFog2(district),
            "a sibling fog-2 that provably holds the window must win over the cloud"
        );
        assert!(p.est_cost < city.cost_model().cost(AccessOption::Cloud, 1_024));
    }

    #[test]
    fn remote_section_windows_ride_the_fog2_ring_too() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let td = city.district_of(5);
        assert_ne!(city.district_of(70), td);
        let p = single(plan(&city, &q(70, Scope::Section(5), 0, 3_000)).unwrap());
        assert_eq!(p.source, DataSource::RemoteFog2(td));
    }

    #[test]
    fn city_scope_scatters_over_all_district_fog2s_when_settled() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let route = plan(&city, &q(5, Scope::City, 0, 3_000)).unwrap();
        let (s_cost, c_cost) = route.contest.expect("cloud and fan-out both viable");
        assert!(s_cost < c_cost, "all-fog2 fan-out undercuts the WAN read");
        let s = scatter(route);
        assert_eq!(s.legs.len(), 10, "one fog-2 leg per district");
        assert!(s.legs.iter().all(|l| l.layer == Layer::Fog2));
        assert_eq!(s.gather_district, city.district_of(5));
    }

    #[test]
    fn unsettled_city_scope_mixes_fog1_and_fog2_legs_and_the_cloud_is_no_rival() {
        let city = city_with_data(5, SensorType::Weather, 4);
        // Section 5's district has unflushed pendings: its shard needs
        // per-member fog-1 legs. Every other district is (vacuously)
        // complete at its fog-2. The cloud cannot prove completeness.
        let route = plan(&city, &q(5, Scope::City, 0, 3_000)).unwrap();
        assert_eq!(route.contest, None);
        let s = scatter(route);
        let members = city.sections_in_district(city.district_of(5)).len();
        let fog1_legs = s.legs.iter().filter(|l| l.layer == Layer::Fog1).count();
        let fog2_legs = s.legs.iter().filter(|l| l.layer == Layer::Fog2).count();
        assert_eq!(fog1_legs, members, "one fog-1 leg per unflushed member");
        assert_eq!(fog2_legs, 9, "every settled district serves from fog-2");
    }

    #[test]
    fn aged_out_city_window_is_served_by_the_cloud_alone() {
        let mut city = city_with_data(5, SensorType::Weather, 2);
        city.flush_all(2_000).unwrap();
        // Ten days on, both fog tiers have evicted the historic window;
        // no fan-out leg can prove completeness.
        city.flush_all(10 * 86_400).unwrap();
        let route = plan(&city, &q(5, Scope::City, 0, 2_000)).unwrap();
        assert_eq!(route.contest, None);
        let p = single(route);
        assert_eq!(p.source, DataSource::Cloud);
    }

    #[test]
    fn aged_out_fog1_falls_back_upward() {
        let mut city = city_with_data(5, SensorType::Weather, 2);
        city.flush_all(2_000).unwrap();
        // Two days in: fog-1 retention (1 day) evicts; fog-2 still holds.
        city.flush_all(2 * 86_400).unwrap();
        let p = single(plan(&city, &q(5, Scope::Section(5), 0, 2_000)).unwrap());
        assert_eq!(p.source, DataSource::Parent, "fog-1 window aged out");
        // Ten days in: fog-2 retention (7 days) evicts too; only the
        // cloud still has the historical window.
        city.flush_all(10 * 86_400).unwrap();
        let p = single(plan(&city, &q(5, Scope::Section(5), 0, 2_000)).unwrap());
        assert_eq!(p.source, DataSource::Cloud);
    }

    #[test]
    fn plans_rank_by_cost_model() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(4_000).unwrap();
        let local = single(plan(&city, &q(5, Scope::Section(5), 0, 3_000)).unwrap());
        let district = city.district_of(5);
        let parent = single(plan(&city, &q(5, Scope::District(district), 0, 3_000)).unwrap());
        let sibling = single(plan(&city, &q(70, Scope::District(district), 0, 3_000)).unwrap());
        assert!(local.est_cost < parent.est_cost);
        assert!(parent.est_cost < sibling.est_cost);
        assert!(sibling.est_cost < city.cost_model().cost(AccessOption::Cloud, 1_024));
    }

    #[test]
    fn aged_out_aligned_aggregates_prefer_the_warm_sketch_over_the_parent() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(3_600).unwrap();
        // Two days in: fog-1 raw evicts, fog-2 still holds — but the
        // local warm sketch beats the parent hop for aligned aggregates.
        city.flush_all(2 * 86_400).unwrap();
        let aligned = q(5, Scope::Section(5), 0, 3_600);
        let p = single(plan(&city, &aligned).unwrap());
        assert_eq!(p.source, DataSource::WarmSketch(5));
        assert_eq!(p.option, AccessOption::LocalSketch);
        assert_eq!(p.layer, Layer::Fog1);
        assert!(p.est_cost < city.cost_model().cost(AccessOption::Parent, 1_024));
        // Unaligned windows cannot slice bucket partials: raw fallback.
        let unaligned = q(5, Scope::Section(5), 0, 2_000);
        assert_eq!(
            single(plan(&city, &unaligned).unwrap()).source,
            DataSource::Parent
        );
        // Non-aggregate kinds never ride the sketch plane.
        let range = Query {
            kind: QueryKind::Range,
            ..aligned
        };
        assert_eq!(
            single(plan(&city, &range).unwrap()).source,
            DataSource::Parent
        );
    }

    #[test]
    fn fully_evicted_district_windows_scatter_over_warm_sketch_legs() {
        let mut city = city_with_data(5, SensorType::Weather, 4);
        city.flush_all(3_600).unwrap();
        // Ten days: both fog tiers' raw windows are gone; only warm
        // sketches and the cloud remain.
        city.flush_all(10 * 86_400).unwrap();
        let district = city.district_of(5);
        let route = plan(&city, &q(5, Scope::District(district), 0, 3_600)).unwrap();
        let (s_cost, c_cost) = route.contest.expect("sketch fan-out contests the cloud");
        assert!(s_cost < c_cost, "warm-sketch legs beat the WAN read");
        let s = scatter(route);
        assert!(s
            .legs
            .iter()
            .all(|l| l.via_sketch && l.layer == Layer::Fog1));
        assert_eq!(s.legs.len(), city.sections_in_district(district).len());
        // The same window as a *range* read has no sketch rescue: only
        // the cloud can serve it.
        let range = Query {
            kind: QueryKind::Range,
            ..q(5, Scope::District(district), 0, 3_600)
        };
        assert_eq!(
            single(plan(&city, &range).unwrap()).source,
            DataSource::Cloud
        );
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let city = F2cCity::barcelona().unwrap();
        assert!(matches!(
            plan(&city, &q(73, Scope::Section(0), 0, 10)),
            Err(Error::BadQuery { .. })
        ));
    }

    #[test]
    fn sibling_pendings_do_not_block_section_scope_proofs() {
        // Section 5's window is fully flushed and then ages out of
        // fog 1; a sibling section (6, same district) later ingests a
        // *backdated* reading created inside the window. The sibling's
        // pending data is section-6 data and cannot change a section-5
        // answer, so fog-2 must still prove completeness for section 5.
        let mut city = city_with_data(5, SensorType::Weather, 2);
        city.flush_all(2_000).unwrap();
        city.flush_all(2 * 86_400).unwrap(); // fog-1 evicts the window
        assert_eq!(city.district_of(5), city.district_of(6));
        let mut gen = ReadingGenerator::for_population(SensorType::Weather, 3, 7);
        city.ingest(6, gen.wave(1_500), 2 * 86_400 + 10).unwrap();
        let p = single(plan(&city, &q(5, Scope::Section(5), 0, 2_000)).unwrap());
        assert_eq!(
            p.source,
            DataSource::Parent,
            "a sibling's unflushed pendings must not make the target section unanswerable"
        );
    }

    #[test]
    fn truly_unreachable_windows_stay_unanswerable() {
        let mut city = city_with_data(5, SensorType::Weather, 2);
        // Flush, then age fog-1 out while leaving a *new* unflushed wave
        // behind: a window covering both the evicted past and the
        // pending present has no provable cover anywhere.
        city.flush_all(2_000).unwrap();
        city.flush_all(2 * 86_400).unwrap();
        let mut gen = ReadingGenerator::for_population(SensorType::Weather, 10, 99);
        city.ingest(5, gen.wave(2 * 86_400 + 10), 2 * 86_400 + 10)
            .unwrap();
        let query = q(5, Scope::Section(5), 1_000, 2 * 86_400 + 100);
        assert!(matches!(
            plan(&city, &query),
            Err(Error::Unanswerable { .. })
        ));
    }
}
