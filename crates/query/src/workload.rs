//! Deterministic closed-loop query workloads.
//!
//! A fixed population of simulated users (each assigned a service class)
//! drives the engine through the event-driven clock: every user issues a
//! query, waits for its simulated completion plus a per-class think time,
//! then issues the next — while background ingest waves and periodic
//! hierarchy flushes keep the city live. Everything derives from one
//! seed, and every request appends to an order-exact transcript hash, so
//! two replays of the same configuration are byte-identical (the same
//! guarantee `tests/determinism.rs` enforces for the ingest pipeline).
//!
//! Two load shapes stress admission control beyond the steady closed
//! loop:
//!
//! * a [`DiurnalCurve`] scales every think time by a day-shaped
//!   intensity (the paper's §IV.D off-peak window story) — peaks almost
//!   double the offered load, troughs model the quiet night hours, and
//! * [`FlashCrowd`]s inject temporary bursts of extra users of one
//!   service class (a city-wide incident pulling everyone's dashboards
//!   up, an analytics batch kicking off at midnight), which is what
//!   makes per-class quotas earn their keep: the burst class sheds
//!   while the real-time guarantee stays untouched.

use std::fmt::Write as _;

use citysim::event::EventQueue;
use citysim::time::{Duration, SimTime};
use citysim::Histogram;
use f2c_core::runtime::section_generators;
use f2c_core::{F2cCity, Layer};
use f2c_qos::{ShedCause, CLASS_COUNT};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scc_sensors::{Category, SensorType};

pub use f2c_qos::ServiceClass;

use crate::engine::{ClassStats, HeldSlots, Outcome, QueryEngine, ServedVia};
use crate::model::{Query, QueryKind, Scope, Selector, TimeWindow};
use crate::{Error, Result};

/// Relative weights of the service classes in a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of [`ServiceClass::Dashboard`].
    pub dashboard: u32,
    /// Weight of [`ServiceClass::Analytics`].
    pub analytics: u32,
    /// Weight of [`ServiceClass::RealTime`].
    pub realtime: u32,
    /// Weight of [`ServiceClass::CityWide`].
    pub city: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Self {
            dashboard: 42,
            analytics: 10,
            realtime: 42,
            city: 6,
        }
    }
}

impl Mix {
    pub(crate) fn total(&self) -> u32 {
        self.dashboard + self.analytics + self.realtime + self.city
    }

    pub(crate) fn sample(&self, rng: &mut SmallRng) -> ServiceClass {
        let x = rng.gen_range(0..self.total());
        if x < self.dashboard {
            ServiceClass::Dashboard
        } else if x < self.dashboard + self.analytics {
            ServiceClass::Analytics
        } else if x < self.dashboard + self.analytics + self.realtime {
            ServiceClass::RealTime
        } else {
            ServiceClass::CityWide
        }
    }
}

/// A day-shaped request-intensity curve: a triangle wave ramping from a
/// trough to a peak and back over each period. Think times divide by
/// the intensity, so a 1 800‰ peak nearly doubles the offered load and
/// a 400‰ trough models the §IV.D off-peak window. Integer arithmetic
/// throughout keeps replays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiurnalCurve {
    /// Cycle length in seconds (86 400 for a calendar day).
    pub period_s: u64,
    /// Intensity at the trough, per mille of nominal (e.g. 400 = 0.4×).
    pub trough_milli: u64,
    /// Intensity at the peak, per mille of nominal (e.g. 1 800 = 1.8×).
    pub peak_milli: u64,
    /// Instant of the (first) peak within the cycle.
    pub peak_at_s: u64,
}

impl DiurnalCurve {
    /// A calendar day peaking at 13:00 with a 0.4× night trough and a
    /// 1.8× afternoon peak.
    pub fn paper_day() -> Self {
        Self {
            period_s: 86_400,
            trough_milli: 400,
            peak_milli: 1_800,
            peak_at_s: 13 * 3_600,
        }
    }

    /// Request intensity at `t_s`, per mille of nominal (≥ 1).
    pub fn intensity_milli(&self, t_s: u64) -> u64 {
        let period = self.period_s.max(2);
        let x = (t_s + period - self.peak_at_s % period) % period;
        // Distance from the nearest peak, 0..=period/2.
        let d = x.min(period - x);
        let half = period / 2;
        let span = self.peak_milli.saturating_sub(self.trough_milli);
        (self.peak_milli - span * d / half).max(1)
    }
}

/// A seeded flash crowd: `users` temporary closed-loop users of one
/// service class joining at `start_s`, thinking `think_divisor`× faster
/// than the class nominal, and leaving `duration_s` later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// The class every burst user issues.
    pub class: ServiceClass,
    /// When the crowd arrives (simulated seconds).
    pub start_s: u64,
    /// How long it stays.
    pub duration_s: u64,
    /// How many extra users join.
    pub users: u32,
    /// Burst users think this many times faster than the class nominal
    /// (≥ 1).
    pub think_divisor: u32,
}

impl FlashCrowd {
    pub(crate) fn active_at(&self, t_s: u64) -> bool {
        t_s >= self.start_s && t_s < self.start_s.saturating_add(self.duration_s)
    }
}

/// Maximum flash crowds per workload (a fixed-size array keeps
/// [`WorkloadConfig`] `Copy`).
pub const MAX_FLASH_CROWDS: usize = 4;

/// Workload shape: everything the closed loop needs, seed included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Master seed: user classes, query parameters, think-time jitter.
    pub seed: u64,
    /// Total requests to issue before draining.
    pub requests: u64,
    /// Closed-loop user population.
    pub users: u32,
    /// Service-class mix.
    pub mix: Mix,
    /// Simulated start instant (typically the warm-up horizon).
    pub start_s: u64,
    /// Hierarchy-wide flush period during serving (0 disables).
    pub flush_period_s: u64,
    /// Background ingest-wave period during serving (0 disables).
    pub ingest_period_s: u64,
    /// Population divisor for the background ingest generators.
    pub ingest_scale: u64,
    /// Day-shaped think-time scaling (`None` keeps the flat load of the
    /// steady closed loop).
    pub diurnal: Option<DiurnalCurve>,
    /// Up to [`MAX_FLASH_CROWDS`] seeded per-class bursts.
    pub flash_crowds: [Option<FlashCrowd>; MAX_FLASH_CROWDS],
    /// Keep the full per-request transcript in the report (the rolling
    /// hash is always computed).
    pub record_transcript: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 2017,
            requests: 10_000,
            users: 64,
            mix: Mix::default(),
            start_s: 0,
            flush_period_s: 900,
            ingest_period_s: 300,
            ingest_scale: 20_000,
            diurnal: None,
            flash_crowds: [None; MAX_FLASH_CROWDS],
            record_transcript: false,
        }
    }
}

/// What a workload run measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests answered (cache or store).
    pub answered: u64,
    /// Requests shed by admission control (either cause).
    pub shed: u64,
    /// Requests no layer could answer completely.
    pub unanswerable: u64,
    /// Edge result-cache hits during the run.
    pub edge_hits: u64,
    /// Source result-cache hits during the run.
    pub source_hits: u64,
    /// Store executions during the run.
    pub store_served: u64,
    /// Scatter-gather executions during the run.
    pub scatter_served: u64,
    /// Fan-out legs executed during the run.
    pub scatter_legs: u64,
    /// Contested fan-out-vs-cloud routes the fan-out won during the run.
    pub scatter_wins: u64,
    /// Contested fan-out-vs-cloud routes the cloud won during the run.
    pub cloud_wins: u64,
    /// Closed buckets assembled from flush-shipped pre-folded partials
    /// (the sketch ledger) instead of archive scans during the run.
    pub prefold_hits: u64,
    /// Closed buckets that had to be scanned and cached during the run
    /// (no cached partial, no ledger coverage).
    pub partial_fills: u64,
    /// Queries answered from warm sketches after raw eviction during
    /// the run.
    pub sketch_served: u64,
    /// Scatter legs executed from warm sketches during the run.
    pub sketch_legs: u64,
    /// Requests shed because an injected fault left no viable route
    /// during the run.
    pub fault_shed: u64,
    /// Fan-out legs shed by injected faults during the run.
    pub legs_shed: u64,
    /// Answered requests degraded to partial completeness (surviving
    /// legs only) during the run.
    pub degraded: u64,
    /// Estimated-latency histograms per serving layer (fog 1, fog 2,
    /// cloud).
    pub latency_by_layer: [Histogram; 3],
    /// Estimated-latency histograms per service class, indexed by
    /// [`ServiceClass::index`].
    pub latency_by_class: [Histogram; CLASS_COUNT],
    /// Per-class engine-counter deltas for this run (requests issued,
    /// answered, sheds by cause, reroutes, SLO attainment), indexed by
    /// [`ServiceClass::index`].
    pub per_class: [ClassStats; CLASS_COUNT],
    /// Capacity sheds per class that occurred while any flash crowd was
    /// active — the "same instant" evidence that a burst sheds its own
    /// class, not the guaranteed ones. Indexed by
    /// [`ServiceClass::index`].
    pub shed_during_flash: [u64; CLASS_COUNT],
    /// Estimated-latency histogram of scatter-gather-served requests.
    pub scatter_latency: Histogram,
    /// Simulated instant of the last processed request.
    pub sim_end_s: u64,
    /// Order-exact FNV-1a hash over every request's transcript line.
    pub transcript_hash: u64,
    /// The transcript itself, when recorded.
    pub transcript: Vec<u8>,
}

impl WorkloadReport {
    /// The latency histogram of one serving layer.
    pub fn layer_hist(&self, layer: Layer) -> &Histogram {
        &self.latency_by_layer[layer.index()]
    }

    /// The latency histogram of one service class.
    pub fn class_hist(&self, class: ServiceClass) -> &Histogram {
        &self.latency_by_class[class.index()]
    }

    /// The counters of one service class during this run.
    pub fn class_stats(&self, class: ServiceClass) -> &ClassStats {
        &self.per_class[class.index()]
    }

    /// This run's in-flash capacity sheds of one service class.
    pub fn flash_shed(&self, class: ServiceClass) -> u64 {
        self.shed_during_flash[class.index()]
    }

    /// Fraction of answered requests served from a result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            (self.edge_hits + self.source_hits) as f64 / self.answered as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// User `u` issues their next request.
    Tick(u32),
    /// A store execution's simulated response completed: release the
    /// admission slots it held (one per fan-out leg for scatter-gather).
    Release(HeldSlots),
    /// Hierarchy-wide flush.
    Flush,
    /// Background sensor waves at every section.
    Ingest,
}

pub(crate) fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

/// FNV-1a offset basis — the initial value of every transcript hash.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

pub(crate) fn think(class: ServiceClass, rng: &mut SmallRng) -> Duration {
    let (base_ms, jitter_ms) = match class {
        ServiceClass::RealTime => (1_000, 1_000),
        ServiceClass::Dashboard => (2_000, 3_000),
        ServiceClass::Analytics => (8_000, 8_000),
        ServiceClass::CityWide => (6_000, 6_000),
    };
    Duration::from_millis(base_ms + rng.gen_range(0..jitter_ms))
}

/// One closed-loop user: class, think-time divisor (flash-crowd members
/// tick faster) and an optional retirement instant.
#[derive(Debug, Clone, Copy)]
pub(crate) struct User {
    pub(crate) class: ServiceClass,
    pub(crate) think_divisor: u32,
    pub(crate) retires_at_s: Option<u64>,
}

fn gen_query(class: ServiceClass, now_s: u64, engine: &QueryEngine, rng: &mut SmallRng) -> Query {
    let origin = rng.gen_range(0..73usize);
    gen_query_at(
        class,
        now_s,
        origin,
        engine.last_flush_s(),
        engine.city(),
        rng,
    )
}

/// [`gen_query`] with the origin section and settled frontier supplied by
/// the caller — the form the sharded runtime uses, where each district
/// shard draws origins from its own sections and serving only ever holds
/// `&F2cCity`.
pub(crate) fn gen_query_at(
    class: ServiceClass,
    now_s: u64,
    origin: usize,
    settled: u64,
    city: &F2cCity,
    rng: &mut SmallRng,
) -> Query {
    match class {
        ServiceClass::RealTime => Query {
            origin,
            class,
            selector: Selector::Type(SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())]),
            scope: Scope::Section(origin),
            window: TimeWindow::new(now_s.saturating_sub(1_800), now_s + 1),
            kind: QueryKind::Point,
        },
        ServiceClass::Dashboard => {
            if rng.gen_bool(0.25) {
                // Raw recent feed of the user's own section (always
                // local-complete).
                Query {
                    origin,
                    class,
                    selector: Selector::Type(
                        SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())],
                    ),
                    scope: Scope::Section(origin),
                    window: TimeWindow::new(now_s.saturating_sub(900), now_s + 1),
                    kind: QueryKind::Range,
                }
            } else {
                // District aggregate over the last settled hour.
                let district = city.district_of(origin);
                Query {
                    origin,
                    class,
                    selector: Selector::Category(
                        Category::ALL[rng.gen_range(0..Category::ALL.len())],
                    ),
                    scope: Scope::District(district),
                    window: TimeWindow::new(settled.saturating_sub(3_600), settled),
                    kind: QueryKind::Aggregate,
                }
            }
        }
        ServiceClass::Analytics => Query {
            origin,
            class,
            selector: Selector::Category(Category::ALL[rng.gen_range(0..Category::ALL.len())]),
            scope: Scope::District(rng.gen_range(0..10usize)),
            // A randomized lookback keeps long-window analytics mostly
            // distinct (real batch jobs rarely repeat a window exactly),
            // so bursts stress admission instead of the result caches.
            window: TimeWindow::new(rng.gen_range(0..settled / 2 + 1), settled),
            kind: QueryKind::Aggregate,
        },
        ServiceClass::CityWide => {
            if rng.gen_bool(0.2) {
                // City-wide latest observation of one type (a status
                // probe racing every shard's winner).
                Query {
                    origin,
                    class,
                    selector: Selector::Type(
                        SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())],
                    ),
                    scope: Scope::City,
                    window: TimeWindow::new(now_s.saturating_sub(1_800), now_s + 1),
                    kind: QueryKind::Point,
                }
            } else {
                // City-wide aggregate panel over the last settled hour.
                Query {
                    origin,
                    class,
                    selector: Selector::Category(
                        Category::ALL[rng.gen_range(0..Category::ALL.len())],
                    ),
                    scope: Scope::City,
                    window: TimeWindow::new(settled.saturating_sub(3_600), settled),
                    kind: QueryKind::Aggregate,
                }
            }
        }
    }
}

/// Rejects degenerate workload shapes; returns the flattened flash-crowd
/// list on success. Shared by the sequential loop and the sharded
/// runtime in [`crate::parallel`], so both reject exactly the same
/// configurations.
pub(crate) fn validate(config: &WorkloadConfig) -> Result<Vec<FlashCrowd>> {
    if config.users == 0 || config.requests == 0 || config.mix.total() == 0 {
        return Err(Error::BadQuery {
            field: "workload",
            reason: "users, requests and the mix total must be positive".to_owned(),
        });
    }
    if let Some(curve) = &config.diurnal {
        if curve.peak_milli < curve.trough_milli || curve.trough_milli == 0 || curve.period_s < 2 {
            return Err(Error::BadQuery {
                field: "diurnal",
                reason: format!("need period ≥ 2 and peak ≥ trough ≥ 1‰, got {curve:?}"),
            });
        }
    }
    let crowds: Vec<FlashCrowd> = config.flash_crowds.iter().flatten().copied().collect();
    if crowds
        .iter()
        .any(|c| c.users == 0 || c.duration_s == 0 || c.think_divisor == 0)
    {
        return Err(Error::BadQuery {
            field: "flash_crowds",
            reason: "every flash crowd needs users, a duration and a divisor ≥ 1".to_owned(),
        });
    }
    Ok(crowds)
}

/// Runs one closed-loop workload against `engine`.
///
/// The run opens with a settling flush at `start_s` (stamping the
/// engine's settled frontier), then interleaves user requests, background
/// ingest and periodic flushes on one deterministic event clock until
/// `requests` have been issued and the in-flight tail has drained. Flash
/// crowds join (and leave) as scheduled, and the diurnal curve scales
/// every think time.
///
/// # Errors
///
/// [`Error::BadQuery`] on a degenerate configuration; hierarchy/network
/// errors from serving.
pub fn run(engine: &mut QueryEngine, config: &WorkloadConfig) -> Result<WorkloadReport> {
    let crowds = validate(config)?;
    let mut rng = SmallRng::seed_from_u64(config.seed);
    engine.flush_all(config.start_s)?;
    let stats0 = engine.stats();

    let mut ingest_gens = (config.ingest_period_s > 0).then(|| {
        section_generators(
            &engine
                .city()
                .catalog()
                .scaled_down(config.ingest_scale.max(1)),
            config.seed ^ 0x9E37_79B9_7F4A_7C15,
        )
    });

    // The steady population, then the flash crowds' temporary members.
    let mut users: Vec<User> = (0..config.users)
        .map(|_| User {
            class: config.mix.sample(&mut rng),
            think_divisor: 1,
            retires_at_s: None,
        })
        .collect();

    let start = SimTime::from_secs(config.start_s);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for u in 0..config.users {
        // Stagger arrivals so users do not tick in lockstep forever.
        queue.schedule_at(
            start + Duration::from_millis(u64::from(u) * 31),
            Ev::Tick(u),
        );
    }
    for crowd in &crowds {
        let arrive = SimTime::from_secs(crowd.start_s.max(config.start_s));
        let leaves = crowd.start_s.saturating_add(crowd.duration_s);
        for i in 0..crowd.users {
            let u = users.len() as u32;
            users.push(User {
                class: crowd.class,
                think_divisor: crowd.think_divisor,
                retires_at_s: Some(leaves),
            });
            queue.schedule_at(
                arrive + Duration::from_millis(u64::from(i) * 17),
                Ev::Tick(u),
            );
        }
    }
    if config.flush_period_s > 0 {
        queue.schedule_at(
            start + Duration::from_secs(config.flush_period_s),
            Ev::Flush,
        );
    }
    if ingest_gens.is_some() {
        queue.schedule_at(
            start + Duration::from_secs(config.ingest_period_s),
            Ev::Ingest,
        );
    }

    // A user's next think time: class nominal, scaled by the diurnal
    // intensity, then by the flash-crowd divisor.
    let next_think = |user: &User, now_s: u64, rng: &mut SmallRng| -> Duration {
        let base = think(user.class, rng);
        let milli = config
            .diurnal
            .map_or(1_000, |curve| curve.intensity_milli(now_s));
        let scaled = base.as_micros() * 1_000 / milli;
        Duration::from_micros((scaled / u64::from(user.think_divisor)).max(1))
    };

    let mut issued = 0u64;
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut unanswerable = 0u64;
    let mut shed_during_flash = [0u64; CLASS_COUNT];
    let mut hists = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut class_hists: [Histogram; CLASS_COUNT] = Default::default();
    let mut scatter_latency = Histogram::new();
    let mut sim_end_s = config.start_s;
    let mut transcript = Vec::new();
    let mut transcript_hash = FNV_OFFSET;
    let mut line = String::new();

    while let Some((at, ev)) = queue.pop() {
        let now_s = at.as_secs();
        match ev {
            Ev::Flush => {
                engine.flush_all(now_s)?;
                if issued < config.requests {
                    queue.schedule_at(at + Duration::from_secs(config.flush_period_s), Ev::Flush);
                }
            }
            Ev::Ingest => {
                if let Some(gens) = ingest_gens.as_mut() {
                    for (section, per_section) in gens.iter_mut().enumerate() {
                        for gen in per_section.values_mut() {
                            engine.ingest(section, gen.wave(now_s), now_s)?;
                        }
                    }
                    if issued < config.requests {
                        queue.schedule_at(
                            at + Duration::from_secs(config.ingest_period_s),
                            Ev::Ingest,
                        );
                    }
                }
            }
            Ev::Release(held) => engine.release_held(held),
            Ev::Tick(u) => {
                if issued >= config.requests {
                    continue;
                }
                let user = users[u as usize];
                if user.retires_at_s.is_some_and(|end| now_s >= end) {
                    // The flash crowd left: this user stops ticking.
                    continue;
                }
                issued += 1;
                sim_end_s = now_s;
                let class = user.class;
                let in_flash = crowds.iter().any(|c| c.active_at(now_s));
                let query = gen_query(class, now_s, engine, &mut rng);
                line.clear();
                let next_at = match engine.serve(&query, now_s) {
                    Ok(Outcome::Answered(resp)) => {
                        answered += 1;
                        hists[resp.layer.index()].record(resp.est_latency);
                        class_hists[class.index()].record(resp.est_latency);
                        if matches!(resp.via, ServedVia::Scatter { .. }) {
                            scatter_latency.record(resp.est_latency);
                        }
                        let done = at + resp.est_latency;
                        if !resp.held.is_empty() {
                            queue.schedule_at(done, Ev::Release(resp.held));
                        }
                        write!(
                            line,
                            "{issued};{class:?};A;{:?};{}",
                            resp.via,
                            resp.est_latency.as_micros()
                        )
                        .expect("writing to a String cannot fail");
                        done + next_think(&user, now_s, &mut rng)
                    }
                    Ok(Outcome::Shed {
                        layer,
                        class: shed_class,
                        cause,
                    }) => {
                        // The outcome carries the requester's context, so
                        // accounting and retry policy need not re-derive
                        // it from the query (per-class shed counts come
                        // from the engine's own ledger stats).
                        shed += 1;
                        if in_flash && cause == ShedCause::Capacity {
                            shed_during_flash[shed_class.index()] += 1;
                        }
                        write!(
                            line,
                            "{issued};{shed_class:?};S;{layer};{};0",
                            cause.label()
                        )
                        .expect("writing to a String cannot fail");
                        match cause {
                            // Quota pressure drains as in-flight work
                            // completes: retry after half a think.
                            ShedCause::Capacity => {
                                at + Duration::from_micros(
                                    next_think(&user, now_s, &mut rng).as_micros() / 2,
                                )
                            }
                            // A deadline shed cannot succeed until the
                            // hierarchy state changes (a flush, an
                            // eviction): abandon and come back later.
                            ShedCause::Deadline => at + next_think(&user, now_s, &mut rng),
                            // A fault shed clears when the injected
                            // outage window ends: abandon and retry
                            // after a full think, like a deadline shed.
                            ShedCause::Fault => at + next_think(&user, now_s, &mut rng),
                        }
                    }
                    Err(Error::Unanswerable { .. }) => {
                        unanswerable += 1;
                        write!(line, "{issued};{class:?};U;;0")
                            .expect("writing to a String cannot fail");
                        at + next_think(&user, now_s, &mut rng)
                    }
                    Err(e) => return Err(e),
                };
                line.push('\n');
                fnv1a(&mut transcript_hash, line.as_bytes());
                if config.record_transcript {
                    transcript.extend_from_slice(line.as_bytes());
                }
                if issued < config.requests {
                    queue.schedule_at(next_at, Ev::Tick(u));
                }
            }
        }
    }

    // Publish the run's estimated-latency distributions into the city's
    // unified registry (merged, not moved — the typed report below keeps
    // its own copies), and sync the point-in-time gauges, so a bench
    // export after the run sees the same series the report prints.
    {
        let m = engine.city_mut().metrics_mut();
        let q = f2c_obs::Labels::new().service("query");
        for layer in Layer::ALL {
            let id = m.histogram(
                "query_latency_us",
                q.layer(crate::engine::layer_label(layer)),
            );
            m.merge_histogram(id, &hists[layer.index()]);
        }
        for class in ServiceClass::ALL {
            let id = m.histogram("query_latency_us", q.class(class.label()));
            m.merge_histogram(id, &class_hists[class.index()]);
        }
        let id = m.histogram("query_latency_us", q.kind("scatter"));
        m.merge_histogram(id, &scatter_latency);
    }
    engine.sync_gauges();

    let stats = engine.stats();
    // Per-class counters are the engine's own ledger accounting, scoped
    // to this run by delta — one source of truth for sheds, reroutes
    // and SLO attainment.
    let mut per_class = [ClassStats::default(); CLASS_COUNT];
    for class in ServiceClass::ALL {
        let i = class.index();
        per_class[i] = stats.per_class[i].delta_since(&stats0.per_class[i]);
    }
    Ok(WorkloadReport {
        issued,
        answered,
        shed,
        unanswerable,
        edge_hits: stats.edge_hits - stats0.edge_hits,
        source_hits: stats.source_hits - stats0.source_hits,
        store_served: stats.store_served - stats0.store_served,
        scatter_served: stats.scatter_served - stats0.scatter_served,
        scatter_legs: stats.scatter_legs - stats0.scatter_legs,
        scatter_wins: stats.scatter_wins - stats0.scatter_wins,
        cloud_wins: stats.cloud_wins - stats0.cloud_wins,
        prefold_hits: stats.prefold_hits - stats0.prefold_hits,
        partial_fills: stats.partial_fills - stats0.partial_fills,
        sketch_served: stats.sketch_served - stats0.sketch_served,
        sketch_legs: stats.sketch_legs - stats0.sketch_legs,
        fault_shed: stats.fault_shed - stats0.fault_shed,
        legs_shed: stats.legs_shed - stats0.legs_shed,
        degraded: stats.degraded - stats0.degraded,
        latency_by_layer: hists,
        latency_by_class: class_hists,
        per_class,
        shed_during_flash,
        scatter_latency,
        sim_end_s,
        transcript_hash,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, LayerCaps};
    use f2c_core::runtime::populate_city;
    use f2c_core::F2cCity;

    fn warm_engine() -> QueryEngine {
        let mut city = F2cCity::barcelona().unwrap();
        populate_city(&mut city, 50_000, 7, 3_600, 900).unwrap();
        QueryEngine::new(city, EngineConfig::default())
    }

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            requests: 800,
            users: 16,
            start_s: 3_600,
            record_transcript: true,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn closed_loop_issues_exactly_the_requested_count() {
        let mut engine = warm_engine();
        let report = run(&mut engine, &small_config()).unwrap();
        assert_eq!(report.issued, 800);
        assert_eq!(
            report.answered + report.shed + report.unanswerable,
            report.issued,
            "every request has exactly one outcome"
        );
        assert!(report.answered > 0, "a warm city answers most requests");
        assert!(
            report.latency_by_layer.iter().any(|h| h.count() > 0),
            "latencies were recorded"
        );
        assert_eq!(
            report.transcript.iter().filter(|&&b| b == b'\n').count() as u64,
            report.issued,
            "one transcript line per request"
        );
        let by_class: u64 = report.per_class.iter().map(|c| c.requests).sum();
        assert_eq!(by_class, report.issued, "per-class request counts add up");
        let answered_by_class: u64 = report.per_class.iter().map(|c| c.answered).sum();
        assert_eq!(answered_by_class, report.answered);
        let recorded: u64 = report.latency_by_class.iter().map(Histogram::count).sum();
        assert_eq!(recorded, report.answered, "per-class latencies recorded");
    }

    #[test]
    fn repeated_queries_warm_the_caches() {
        let mut engine = warm_engine();
        let report = run(&mut engine, &small_config()).unwrap();
        assert!(
            report.edge_hits + report.source_hits > 0,
            "dashboards repeat over settled windows: {report:?}"
        );
    }

    #[test]
    fn city_wide_mix_exercises_scatter_gather() {
        let mut engine = warm_engine();
        let mut config = small_config();
        config.mix = Mix {
            dashboard: 20,
            analytics: 10,
            realtime: 20,
            city: 50,
        };
        let report = run(&mut engine, &config).unwrap();
        assert!(
            report.scatter_served > 0,
            "city-wide queries must fan out: {report:?}"
        );
        assert!(
            report.scatter_legs >= report.scatter_served,
            "every scatter execution has at least one leg"
        );
        assert!(
            report.scatter_latency.count() == report.scatter_served,
            "scatter latencies are recorded per execution"
        );
        assert!(
            report.scatter_wins + report.cloud_wins > 0,
            "settled city windows put the fan-out and the cloud in contest"
        );
    }

    #[test]
    fn fan_out_replays_are_transcript_identical() {
        // The scatter path merges per-leg partials; replays must stay
        // byte-identical with fan-out (and its multi-slot admission
        // releases) in the mix.
        let run_once = || {
            let mut engine = warm_engine();
            let mut config = small_config();
            config.mix = Mix {
                dashboard: 10,
                analytics: 10,
                realtime: 10,
                city: 70,
            };
            run(&mut engine, &config).unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert!(a.scatter_served > 0, "fan-out must actually run: {a:?}");
        assert_eq!(a.transcript, b.transcript, "fan-out replay diverged");
        assert_eq!(a.transcript_hash, b.transcript_hash);
    }

    #[test]
    fn replays_are_transcript_identical_and_seeds_matter() {
        let run_once = |seed: u64| {
            let mut engine = warm_engine();
            let mut config = small_config();
            config.seed = seed;
            run(&mut engine, &config).unwrap()
        };
        let a = run_once(2017);
        let b = run_once(2017);
        assert_eq!(a.transcript, b.transcript, "replays must be identical");
        assert_eq!(a.transcript_hash, b.transcript_hash);
        let c = run_once(2018);
        assert_ne!(
            a.transcript_hash, c.transcript_hash,
            "a different seed must change the workload"
        );
    }

    #[test]
    fn diurnal_and_burst_replays_are_transcript_identical() {
        // The diurnal scaling and flash-crowd machinery run off the same
        // seed and clock as everything else: replays must stay
        // byte-identical, and the knobs must actually change the run.
        let run_once = |seed: u64, diurnal: bool| {
            let mut engine = warm_engine();
            let mut config = small_config();
            config.seed = seed;
            if diurnal {
                config.diurnal = Some(DiurnalCurve::paper_day());
            }
            config.flash_crowds[0] = Some(FlashCrowd {
                class: ServiceClass::Analytics,
                start_s: 3_620,
                duration_s: 60,
                users: 12,
                think_divisor: 8,
            });
            run(&mut engine, &config).unwrap()
        };
        let a = run_once(2017, true);
        let b = run_once(2017, true);
        assert_eq!(a.transcript, b.transcript, "diurnal/burst replay diverged");
        assert_eq!(a.transcript_hash, b.transcript_hash);
        assert!(
            a.class_stats(ServiceClass::Analytics).requests > 0,
            "the burst issues analytics traffic"
        );
        let flat = run_once(2017, false);
        assert_ne!(
            a.transcript_hash, flat.transcript_hash,
            "the diurnal curve must reshape the run"
        );
    }

    #[test]
    fn diurnal_intensity_peaks_and_troughs_where_configured() {
        let curve = DiurnalCurve::paper_day();
        assert_eq!(curve.intensity_milli(13 * 3_600), 1_800, "peak at 13:00");
        assert_eq!(curve.intensity_milli(on_the_far_side(&curve)), 400);
        // Periodicity.
        assert_eq!(
            curve.intensity_milli(13 * 3_600),
            curve.intensity_milli(13 * 3_600 + 86_400)
        );
        // Monotone ramp between trough and peak.
        let morning: Vec<u64> = (1..13)
            .map(|h| curve.intensity_milli(3_600 + h * 3_600))
            .collect();
        assert!(morning.windows(2).all(|w| w[0] <= w[1]), "{morning:?}");
    }

    fn on_the_far_side(curve: &DiurnalCurve) -> u64 {
        curve.peak_at_s + curve.period_s / 2
    }

    #[test]
    fn an_analytics_flash_crowd_sheds_analytics_not_realtime() {
        // Tight caps plus a hard analytics burst: the burst must shed
        // *its own* class while real-time reads ride their guaranteed
        // share untouched — the core QoS promise, asserted at workload
        // scale. The result caches are disabled (TTL 0) so the burst's
        // repetitive settled-window aggregates cannot hide behind cache
        // hits, which bypass admission entirely.
        let mut city = F2cCity::barcelona().unwrap();
        populate_city(&mut city, 50_000, 7, 3_600, 900).unwrap();
        let cfg = EngineConfig {
            result_ttl_s: 0,
            caps: LayerCaps {
                fog1: 64,
                fog2: 8,
                cloud: 4,
            },
            ..EngineConfig::default()
        };
        let mut engine = QueryEngine::new(city, cfg);
        let mut config = WorkloadConfig {
            requests: 3_000,
            users: 32,
            start_s: 3_600,
            ..WorkloadConfig::default()
        };
        config.flash_crowds[0] = Some(FlashCrowd {
            class: ServiceClass::Analytics,
            start_s: 3_610,
            duration_s: 120,
            users: 48,
            think_divisor: 32,
        });
        let report = run(&mut engine, &config).unwrap();
        let realtime = report.class_stats(ServiceClass::RealTime);
        assert!(
            report.flash_shed(ServiceClass::Analytics) > 0,
            "the burst must overrun the analytics quota: {report:?}"
        );
        assert_eq!(
            realtime.shed, 0,
            "real-time reads must never shed while analytics bursts: {report:?}"
        );
        assert_eq!(report.flash_shed(ServiceClass::RealTime), 0);
        assert!(realtime.requests > 0, "the steady mix keeps issuing reads");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut engine = warm_engine();
        let mut config = small_config();
        config.users = 0;
        assert!(run(&mut engine, &config).is_err());
        let mut config = small_config();
        config.mix = Mix {
            dashboard: 0,
            analytics: 0,
            realtime: 0,
            city: 0,
        };
        assert!(run(&mut engine, &config).is_err());
        let mut config = small_config();
        config.diurnal = Some(DiurnalCurve {
            period_s: 86_400,
            trough_milli: 2_000,
            peak_milli: 1_000, // inverted
            peak_at_s: 0,
        });
        assert!(run(&mut engine, &config).is_err());
        let mut config = small_config();
        config.flash_crowds[0] = Some(FlashCrowd {
            class: ServiceClass::Dashboard,
            start_s: 3_600,
            duration_s: 0, // degenerate
            users: 4,
            think_divisor: 1,
        });
        assert!(run(&mut engine, &config).is_err());
    }
}
