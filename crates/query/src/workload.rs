//! Deterministic closed-loop query workloads.
//!
//! A fixed population of simulated users (each assigned a service class)
//! drives the engine through the event-driven clock: every user issues a
//! query, waits for its simulated completion plus a per-class think time,
//! then issues the next — while background ingest waves and periodic
//! hierarchy flushes keep the city live. Everything derives from one
//! seed, and every request appends to an order-exact transcript hash, so
//! two replays of the same configuration are byte-identical (the same
//! guarantee `tests/determinism.rs` enforces for the ingest pipeline).

use std::fmt::Write as _;

use citysim::event::EventQueue;
use citysim::time::{Duration, SimTime};
use citysim::Histogram;
use f2c_core::runtime::section_generators;
use f2c_core::Layer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scc_sensors::{Category, SensorType};

use crate::engine::{HeldSlots, Outcome, QueryEngine, ServedVia};
use crate::model::{Query, QueryKind, Scope, Selector, TimeWindow};
use crate::{Error, Result};

/// The service classes of the paper's consumer taxonomy (§IV.D): live
/// per-section reads, refreshing district dashboards, long-window
/// analytics, and city-wide situation panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// District dashboards: aggregate panels over recent settled windows,
    /// plus an occasional raw feed of the user's own section.
    Dashboard,
    /// Long-window district aggregates (history since the epoch start).
    Analytics,
    /// Latest-value point reads at the user's own section.
    RealTime,
    /// City-wide aggregates (and an occasional city-wide latest-value
    /// probe) over recent settled windows — the scatter-gather workload.
    CityWide,
}

/// Relative weights of the service classes in a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Weight of [`ServiceClass::Dashboard`].
    pub dashboard: u32,
    /// Weight of [`ServiceClass::Analytics`].
    pub analytics: u32,
    /// Weight of [`ServiceClass::RealTime`].
    pub realtime: u32,
    /// Weight of [`ServiceClass::CityWide`].
    pub city: u32,
}

impl Default for Mix {
    fn default() -> Self {
        Self {
            dashboard: 42,
            analytics: 10,
            realtime: 42,
            city: 6,
        }
    }
}

impl Mix {
    fn total(&self) -> u32 {
        self.dashboard + self.analytics + self.realtime + self.city
    }

    fn sample(&self, rng: &mut SmallRng) -> ServiceClass {
        let x = rng.gen_range(0..self.total());
        if x < self.dashboard {
            ServiceClass::Dashboard
        } else if x < self.dashboard + self.analytics {
            ServiceClass::Analytics
        } else if x < self.dashboard + self.analytics + self.realtime {
            ServiceClass::RealTime
        } else {
            ServiceClass::CityWide
        }
    }
}

/// Workload shape: everything the closed loop needs, seed included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Master seed: user classes, query parameters, think-time jitter.
    pub seed: u64,
    /// Total requests to issue before draining.
    pub requests: u64,
    /// Closed-loop user population.
    pub users: u32,
    /// Service-class mix.
    pub mix: Mix,
    /// Simulated start instant (typically the warm-up horizon).
    pub start_s: u64,
    /// Hierarchy-wide flush period during serving (0 disables).
    pub flush_period_s: u64,
    /// Background ingest-wave period during serving (0 disables).
    pub ingest_period_s: u64,
    /// Population divisor for the background ingest generators.
    pub ingest_scale: u64,
    /// Keep the full per-request transcript in the report (the rolling
    /// hash is always computed).
    pub record_transcript: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 2017,
            requests: 10_000,
            users: 64,
            mix: Mix::default(),
            start_s: 0,
            flush_period_s: 900,
            ingest_period_s: 300,
            ingest_scale: 20_000,
            record_transcript: false,
        }
    }
}

/// What a workload run measured.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Requests issued.
    pub issued: u64,
    /// Requests answered (cache or store).
    pub answered: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests no layer could answer completely.
    pub unanswerable: u64,
    /// Edge result-cache hits during the run.
    pub edge_hits: u64,
    /// Source result-cache hits during the run.
    pub source_hits: u64,
    /// Store executions during the run.
    pub store_served: u64,
    /// Scatter-gather executions during the run.
    pub scatter_served: u64,
    /// Fan-out legs executed during the run.
    pub scatter_legs: u64,
    /// Contested fan-out-vs-cloud routes the fan-out won during the run.
    pub scatter_wins: u64,
    /// Contested fan-out-vs-cloud routes the cloud won during the run.
    pub cloud_wins: u64,
    /// Estimated-latency histograms per serving layer (fog 1, fog 2,
    /// cloud).
    pub latency_by_layer: [Histogram; 3],
    /// Estimated-latency histogram of scatter-gather-served requests.
    pub scatter_latency: Histogram,
    /// Simulated instant of the last processed request.
    pub sim_end_s: u64,
    /// Order-exact FNV-1a hash over every request's transcript line.
    pub transcript_hash: u64,
    /// The transcript itself, when recorded.
    pub transcript: Vec<u8>,
}

impl WorkloadReport {
    /// The latency histogram of one serving layer.
    pub fn layer_hist(&self, layer: Layer) -> &Histogram {
        &self.latency_by_layer[layer.index()]
    }

    /// Fraction of answered requests served from a result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            (self.edge_hits + self.source_hits) as f64 / self.answered as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// User `u` issues their next request.
    Tick(u32),
    /// A store execution's simulated response completed: release the
    /// admission slots it held (one per fan-out leg for scatter-gather).
    Release(HeldSlots),
    /// Hierarchy-wide flush.
    Flush,
    /// Background sensor waves at every section.
    Ingest,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn think(class: ServiceClass, rng: &mut SmallRng) -> Duration {
    let (base_ms, jitter_ms) = match class {
        ServiceClass::RealTime => (1_000, 1_000),
        ServiceClass::Dashboard => (2_000, 3_000),
        ServiceClass::Analytics => (8_000, 8_000),
        ServiceClass::CityWide => (6_000, 6_000),
    };
    Duration::from_millis(base_ms + rng.gen_range(0..jitter_ms))
}

fn gen_query(class: ServiceClass, now_s: u64, engine: &QueryEngine, rng: &mut SmallRng) -> Query {
    let origin = rng.gen_range(0..73usize);
    let settled = engine.last_flush_s();
    match class {
        ServiceClass::RealTime => Query {
            origin,
            selector: Selector::Type(SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())]),
            scope: Scope::Section(origin),
            window: TimeWindow::new(now_s.saturating_sub(1_800), now_s + 1),
            kind: QueryKind::Point,
        },
        ServiceClass::Dashboard => {
            if rng.gen_bool(0.25) {
                // Raw recent feed of the user's own section (always
                // local-complete).
                Query {
                    origin,
                    selector: Selector::Type(
                        SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())],
                    ),
                    scope: Scope::Section(origin),
                    window: TimeWindow::new(now_s.saturating_sub(900), now_s + 1),
                    kind: QueryKind::Range,
                }
            } else {
                // District aggregate over the last settled hour.
                let district = engine.city().district_of(origin);
                Query {
                    origin,
                    selector: Selector::Category(
                        Category::ALL[rng.gen_range(0..Category::ALL.len())],
                    ),
                    scope: Scope::District(district),
                    window: TimeWindow::new(settled.saturating_sub(3_600), settled),
                    kind: QueryKind::Aggregate,
                }
            }
        }
        ServiceClass::Analytics => Query {
            origin,
            selector: Selector::Category(Category::ALL[rng.gen_range(0..Category::ALL.len())]),
            scope: Scope::District(rng.gen_range(0..10usize)),
            window: TimeWindow::new(0, settled),
            kind: QueryKind::Aggregate,
        },
        ServiceClass::CityWide => {
            if rng.gen_bool(0.2) {
                // City-wide latest observation of one type (a status
                // probe racing every shard's winner).
                Query {
                    origin,
                    selector: Selector::Type(
                        SensorType::ALL[rng.gen_range(0..SensorType::ALL.len())],
                    ),
                    scope: Scope::City,
                    window: TimeWindow::new(now_s.saturating_sub(1_800), now_s + 1),
                    kind: QueryKind::Point,
                }
            } else {
                // City-wide aggregate panel over the last settled hour.
                Query {
                    origin,
                    selector: Selector::Category(
                        Category::ALL[rng.gen_range(0..Category::ALL.len())],
                    ),
                    scope: Scope::City,
                    window: TimeWindow::new(settled.saturating_sub(3_600), settled),
                    kind: QueryKind::Aggregate,
                }
            }
        }
    }
}

/// Runs one closed-loop workload against `engine`.
///
/// The run opens with a settling flush at `start_s` (stamping the
/// engine's settled frontier), then interleaves user requests, background
/// ingest and periodic flushes on one deterministic event clock until
/// `requests` have been issued and the in-flight tail has drained.
///
/// # Errors
///
/// [`Error::BadQuery`] on a degenerate configuration; hierarchy/network
/// errors from serving.
pub fn run(engine: &mut QueryEngine, config: &WorkloadConfig) -> Result<WorkloadReport> {
    if config.users == 0 || config.requests == 0 || config.mix.total() == 0 {
        return Err(Error::BadQuery {
            field: "workload",
            reason: "users, requests and the mix total must be positive".to_owned(),
        });
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    engine.flush_all(config.start_s)?;
    let stats0 = *engine.stats();

    let mut ingest_gens = (config.ingest_period_s > 0).then(|| {
        section_generators(
            &engine
                .city()
                .catalog()
                .scaled_down(config.ingest_scale.max(1)),
            config.seed ^ 0x9E37_79B9_7F4A_7C15,
        )
    });

    let classes: Vec<ServiceClass> = (0..config.users)
        .map(|_| config.mix.sample(&mut rng))
        .collect();

    let start = SimTime::from_secs(config.start_s);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    for u in 0..config.users {
        // Stagger arrivals so users do not tick in lockstep forever.
        queue.schedule_at(
            start + Duration::from_millis(u64::from(u) * 31),
            Ev::Tick(u),
        );
    }
    if config.flush_period_s > 0 {
        queue.schedule_at(
            start + Duration::from_secs(config.flush_period_s),
            Ev::Flush,
        );
    }
    if ingest_gens.is_some() {
        queue.schedule_at(
            start + Duration::from_secs(config.ingest_period_s),
            Ev::Ingest,
        );
    }

    let mut issued = 0u64;
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut unanswerable = 0u64;
    let mut hists = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut scatter_latency = Histogram::new();
    let mut sim_end_s = config.start_s;
    let mut transcript = Vec::new();
    let mut transcript_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut line = String::new();

    while let Some((at, ev)) = queue.pop() {
        let now_s = at.as_secs();
        match ev {
            Ev::Flush => {
                engine.flush_all(now_s)?;
                if issued < config.requests {
                    queue.schedule_at(at + Duration::from_secs(config.flush_period_s), Ev::Flush);
                }
            }
            Ev::Ingest => {
                if let Some(gens) = ingest_gens.as_mut() {
                    for (section, per_section) in gens.iter_mut().enumerate() {
                        for gen in per_section.values_mut() {
                            engine.ingest(section, gen.wave(now_s), now_s)?;
                        }
                    }
                    if issued < config.requests {
                        queue.schedule_at(
                            at + Duration::from_secs(config.ingest_period_s),
                            Ev::Ingest,
                        );
                    }
                }
            }
            Ev::Release(held) => engine.release_held(held),
            Ev::Tick(u) => {
                if issued >= config.requests {
                    continue;
                }
                issued += 1;
                sim_end_s = now_s;
                let class = classes[u as usize];
                let query = gen_query(class, now_s, engine, &mut rng);
                line.clear();
                let next_at = match engine.serve(&query, now_s) {
                    Ok(Outcome::Answered(resp)) => {
                        answered += 1;
                        hists[resp.layer.index()].record(resp.est_latency);
                        if matches!(resp.via, ServedVia::Scatter { .. }) {
                            scatter_latency.record(resp.est_latency);
                        }
                        let done = at + resp.est_latency;
                        if !resp.held.is_empty() {
                            queue.schedule_at(done, Ev::Release(resp.held));
                        }
                        write!(
                            line,
                            "{issued};{class:?};A;{:?};{}",
                            resp.via,
                            resp.est_latency.as_micros()
                        )
                        .expect("writing to a String cannot fail");
                        done + think(class, &mut rng)
                    }
                    Ok(Outcome::Shed { layer }) => {
                        shed += 1;
                        write!(line, "{issued};{class:?};S;{layer};0")
                            .expect("writing to a String cannot fail");
                        // Back off half a think time before retrying.
                        at + Duration::from_micros(think(class, &mut rng).as_micros() / 2)
                    }
                    Err(Error::Unanswerable { .. }) => {
                        unanswerable += 1;
                        write!(line, "{issued};{class:?};U;;0")
                            .expect("writing to a String cannot fail");
                        at + think(class, &mut rng)
                    }
                    Err(e) => return Err(e),
                };
                line.push('\n');
                fnv1a(&mut transcript_hash, line.as_bytes());
                if config.record_transcript {
                    transcript.extend_from_slice(line.as_bytes());
                }
                if issued < config.requests {
                    queue.schedule_at(next_at, Ev::Tick(u));
                }
            }
        }
    }

    let stats = engine.stats();
    Ok(WorkloadReport {
        issued,
        answered,
        shed,
        unanswerable,
        edge_hits: stats.edge_hits - stats0.edge_hits,
        source_hits: stats.source_hits - stats0.source_hits,
        store_served: stats.store_served - stats0.store_served,
        scatter_served: stats.scatter_served - stats0.scatter_served,
        scatter_legs: stats.scatter_legs - stats0.scatter_legs,
        scatter_wins: stats.scatter_wins - stats0.scatter_wins,
        cloud_wins: stats.cloud_wins - stats0.cloud_wins,
        latency_by_layer: hists,
        scatter_latency,
        sim_end_s,
        transcript_hash,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use f2c_core::runtime::populate_city;
    use f2c_core::F2cCity;

    fn warm_engine() -> QueryEngine {
        let mut city = F2cCity::barcelona().unwrap();
        populate_city(&mut city, 50_000, 7, 3_600, 900).unwrap();
        QueryEngine::new(city, EngineConfig::default())
    }

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            requests: 800,
            users: 16,
            start_s: 3_600,
            record_transcript: true,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn closed_loop_issues_exactly_the_requested_count() {
        let mut engine = warm_engine();
        let report = run(&mut engine, &small_config()).unwrap();
        assert_eq!(report.issued, 800);
        assert_eq!(
            report.answered + report.shed + report.unanswerable,
            report.issued,
            "every request has exactly one outcome"
        );
        assert!(report.answered > 0, "a warm city answers most requests");
        assert!(
            report.latency_by_layer.iter().any(|h| h.count() > 0),
            "latencies were recorded"
        );
        assert_eq!(
            report.transcript.iter().filter(|&&b| b == b'\n').count() as u64,
            report.issued,
            "one transcript line per request"
        );
    }

    #[test]
    fn repeated_queries_warm_the_caches() {
        let mut engine = warm_engine();
        let report = run(&mut engine, &small_config()).unwrap();
        assert!(
            report.edge_hits + report.source_hits > 0,
            "dashboards repeat over settled windows: {report:?}"
        );
    }

    #[test]
    fn city_wide_mix_exercises_scatter_gather() {
        let mut engine = warm_engine();
        let mut config = small_config();
        config.mix = Mix {
            dashboard: 20,
            analytics: 10,
            realtime: 20,
            city: 50,
        };
        let report = run(&mut engine, &config).unwrap();
        assert!(
            report.scatter_served > 0,
            "city-wide queries must fan out: {report:?}"
        );
        assert!(
            report.scatter_legs >= report.scatter_served,
            "every scatter execution has at least one leg"
        );
        assert!(
            report.scatter_latency.count() == report.scatter_served,
            "scatter latencies are recorded per execution"
        );
        assert!(
            report.scatter_wins + report.cloud_wins > 0,
            "settled city windows put the fan-out and the cloud in contest"
        );
    }

    #[test]
    fn fan_out_replays_are_transcript_identical() {
        // The scatter path merges per-leg partials; replays must stay
        // byte-identical with fan-out (and its multi-slot admission
        // releases) in the mix.
        let run_once = || {
            let mut engine = warm_engine();
            let mut config = small_config();
            config.mix = Mix {
                dashboard: 10,
                analytics: 10,
                realtime: 10,
                city: 70,
            };
            run(&mut engine, &config).unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert!(a.scatter_served > 0, "fan-out must actually run: {a:?}");
        assert_eq!(a.transcript, b.transcript, "fan-out replay diverged");
        assert_eq!(a.transcript_hash, b.transcript_hash);
    }

    #[test]
    fn replays_are_transcript_identical_and_seeds_matter() {
        let run_once = |seed: u64| {
            let mut engine = warm_engine();
            let mut config = small_config();
            config.seed = seed;
            run(&mut engine, &config).unwrap()
        };
        let a = run_once(2017);
        let b = run_once(2017);
        assert_eq!(a.transcript, b.transcript, "replays must be identical");
        assert_eq!(a.transcript_hash, b.transcript_hash);
        let c = run_once(2018);
        assert_ne!(
            a.transcript_hash, c.transcript_hash,
            "a different seed must change the workload"
        );
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut engine = warm_engine();
        let mut config = small_config();
        config.users = 0;
        assert!(run(&mut engine, &config).is_err());
        let mut config = small_config();
        config.mix = Mix {
            dashboard: 0,
            analytics: 0,
            realtime: 0,
            city: 0,
        };
        assert!(run(&mut engine, &config).is_err());
    }
}
