use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from query validation and serving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A structurally invalid query (bad indices, inverted window).
    BadQuery {
        /// Which part is invalid.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// No layer both holds the window completely and is reachable from
    /// the requester — typically a window reaching past what has been
    /// flushed upward so far.
    Unanswerable {
        /// Human-readable reason.
        reason: String,
    },
    /// An underlying hierarchy/network error surfaced while serving.
    Hierarchy(f2c_core::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadQuery { field, reason } => write!(f, "bad query ({field}): {reason}"),
            Error::Unanswerable { reason } => write!(f, "query unanswerable: {reason}"),
            Error::Hierarchy(e) => write!(f, "hierarchy error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Hierarchy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<f2c_core::Error> for Error {
    fn from(e: f2c_core::Error) -> Self {
        Error::Hierarchy(e)
    }
}
