//! Merging scatter-gather partials at the gather fog-2 node.
//!
//! Every fan-out leg answers its shard independently; this module folds
//! the per-leg partial results into the final answer:
//!
//! * **aggregates** — [`AggPartial`] merge, exact for count / extremes /
//!   distinct sketches and within rounding for sums (the §V.A
//!   decomposability across *nodes* rather than across time buckets),
//! * **points** — the per-leg winners race by the engine's canonical
//!   `(created, sensor)` rank,
//! * **ranges** — a k-way ordered merge over the per-leg record streams
//!   with dedup by record identity, so a record replicated across tiers
//!   can never appear twice in one answer.
//!
//! Merging is order-insensitive: any permutation of the legs produces
//! the same answer, which is what makes the workload replay transcripts
//! stable under fan-out.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use scc_dlc::DataRecord;

use crate::model::{finalize, AggPartial, PointSample, QueryAnswer};

/// `(identity, leg index, position in leg)` — one k-way merge cursor.
type MergeCursor = ((u64, u64), usize, usize);

/// Canonical identity of one stored observation — the same projection
/// the brute-force test oracle dedups the hierarchy by.
fn identity(rec: &DataRecord) -> (u64, u64) {
    (
        rec.descriptor().created_s(),
        rec.reading().sensor().seed_material(),
    )
}

/// Merges the per-leg aggregate partials into one finalized bundle.
pub fn merge_aggregates(legs: Vec<AggPartial>) -> QueryAnswer {
    let mut acc = AggPartial::empty();
    for leg in &legs {
        acc.merge(leg);
    }
    QueryAnswer::Aggregate(finalize(&acc))
}

/// Merges the per-leg latest observations: the city-wide latest is the
/// maximum of the shard winners under the canonical `(created, sensor)`
/// rank every complete source agrees on.
pub fn merge_points(legs: Vec<Option<PointSample>>) -> QueryAnswer {
    QueryAnswer::Point(
        legs.into_iter()
            .flatten()
            .max_by_key(|p| (p.created_s, p.sensor.seed_material())),
    )
}

/// K-way ordered merge of the per-leg record streams, deduplicated by
/// record identity. Legs cover disjoint shards by construction, but a
/// record that climbed tiers between two legs' reads must still appear
/// exactly once, so dedup is enforced rather than assumed.
pub fn merge_ranges(mut legs: Vec<Vec<DataRecord>>) -> QueryAnswer {
    // Leg streams arrive in creation order from the archive scan; ties
    // at equal creation times are ordered by sensor identity so the heap
    // sees each stream monotone in the full merge key.
    for leg in &mut legs {
        leg.sort_by_key(identity);
    }
    let mut heap: BinaryHeap<Reverse<MergeCursor>> = legs
        .iter()
        .enumerate()
        .filter(|(_, leg)| !leg.is_empty())
        .map(|(i, leg)| Reverse((identity(&leg[0]), i, 0)))
        .collect();
    let mut out: Vec<DataRecord> = Vec::with_capacity(legs.iter().map(Vec::len).sum());
    let mut last: Option<(u64, u64)> = None;
    while let Some(Reverse((key, leg, pos))) = heap.pop() {
        if last != Some(key) {
            out.push(legs[leg][pos].clone());
            last = Some(key);
        }
        if pos + 1 < legs[leg].len() {
            heap.push(Reverse((identity(&legs[leg][pos + 1]), leg, pos + 1)));
        }
    }
    QueryAnswer::Records(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, SensorId, SensorType, Value};

    fn rec(idx: u32, t: u64, v: f64) -> DataRecord {
        DataRecord::from_reading(Reading::new(
            SensorId::new(SensorType::Traffic, idx),
            t,
            Value::from_f64(v),
        ))
    }

    fn sample(idx: u32, t: u64) -> PointSample {
        PointSample {
            created_s: t,
            sensor: SensorId::new(SensorType::Traffic, idx),
            value: 1.0,
        }
    }

    #[test]
    fn aggregate_merge_equals_flat_fold() {
        let records: Vec<DataRecord> = (0..40)
            .map(|i| rec(i % 5, 100 + u64::from(i), 2.5))
            .collect();
        let mut flat = AggPartial::empty();
        for r in &records {
            crate::model::absorb_record(&mut flat, r);
        }
        let legs: Vec<AggPartial> = records
            .chunks(7)
            .map(|chunk| {
                let mut p = AggPartial::empty();
                for r in chunk {
                    crate::model::absorb_record(&mut p, r);
                }
                p
            })
            .collect();
        match merge_aggregates(legs) {
            QueryAnswer::Aggregate(a) => {
                let f = finalize(&flat);
                assert_eq!(a.count, f.count);
                assert_eq!(a.min, f.min);
                assert_eq!(a.max, f.max);
                assert_eq!(a.distinct_sensors, f.distinct_sensors);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn point_merge_picks_the_canonical_latest() {
        let legs = vec![
            Some(sample(3, 100)),
            None,
            Some(sample(9, 120)),
            Some(sample(1, 120)),
        ];
        match merge_points(legs) {
            QueryAnswer::Point(Some(p)) => {
                assert_eq!(p.created_s, 120);
                assert_eq!(p.sensor, SensorId::new(SensorType::Traffic, 9));
            }
            other => panic!("expected a point, got {other:?}"),
        }
        assert_eq!(merge_points(vec![None, None]), QueryAnswer::Point(None));
    }

    #[test]
    fn range_merge_is_ordered_and_deduped() {
        let a = vec![rec(0, 100, 1.0), rec(0, 300, 1.0)];
        let b = vec![rec(1, 100, 1.0), rec(1, 200, 1.0)];
        let dup = vec![rec(0, 300, 1.0)]; // replicated across tiers
        match merge_ranges(vec![a, b, dup]) {
            QueryAnswer::Records(out) => {
                let keys: Vec<(u64, u64)> = out.iter().map(identity).collect();
                let mut sorted = keys.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(keys, sorted, "merge output is ordered and unique");
                assert_eq!(out.len(), 4, "the replicated record appears once");
            }
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn merge_is_leg_order_insensitive() {
        let legs = || {
            vec![
                vec![rec(0, 100, 1.0), rec(2, 150, 1.0)],
                vec![rec(1, 100, 1.0)],
                vec![rec(3, 50, 1.0)],
            ]
        };
        let forward = merge_ranges(legs());
        let mut reversed = legs();
        reversed.reverse();
        assert_eq!(forward, merge_ranges(reversed));
    }
}
