//! The typed query model: what a city-service consumer can ask the F2C
//! hierarchy, and what it gets back.
//!
//! Queries select by sensor type or whole category, scope to one section
//! or one district, bound a half-open creation-time window, and come in
//! three shapes: **point** (latest matching observation), **range** (the
//! matching records themselves), and **aggregate** (count / extremes /
//! moments / distinct-sensor estimate, computed from mergeable partials).

use f2c_qos::ServiceClass;
use scc_dlc::DataRecord;
use scc_sensors::{Category, SensorId, SensorType};

pub use f2c_aggregate::sketch::AggPartial;

use crate::{Error, Result};

/// What data a query selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Selector {
    /// One of the 21 Table-I sensor types.
    Type(SensorType),
    /// A whole Sentilo category (all its types).
    Category(Category),
}

impl Selector {
    /// Whether a record's type matches this selector.
    pub fn matches(&self, ty: SensorType) -> bool {
        match self {
            Selector::Type(t) => *t == ty,
            Selector::Category(c) => ty.category() == *c,
        }
    }
}

/// Which slice of the city a query covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Data produced in one section (one fog-1 node's catchment).
    Section(usize),
    /// Data produced anywhere in one district.
    District(usize),
    /// Data produced anywhere in the city. No single fog node holds a
    /// city-wide window; the planner serves it by scatter-gather over the
    /// member fog nodes (merged at the requester's fog-2) or by one cloud
    /// read, whichever the cost model prices cheaper.
    City,
}

/// A half-open creation-time window `[from_s, until_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeWindow {
    /// Inclusive start (seconds).
    pub from_s: u64,
    /// Exclusive end (seconds).
    pub until_s: u64,
}

impl TimeWindow {
    /// The window `[from_s, until_s)`.
    pub fn new(from_s: u64, until_s: u64) -> Self {
        Self { from_s, until_s }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: u64) -> bool {
        self.from_s <= t && t < self.until_s
    }

    /// Window length in seconds.
    pub fn len_s(&self) -> u64 {
        self.until_s.saturating_sub(self.from_s)
    }
}

/// The shape of the answer a query wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryKind {
    /// The most recent matching observation in the window.
    Point,
    /// Every matching record in the window.
    Range,
    /// The mergeable aggregate bundle over the window.
    Aggregate,
}

/// One consumer query, issued from a section's fog-1 access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Query {
    /// The requesting consumer's section (0..73) — where the answer must
    /// be delivered, and the origin for access-cost ranking.
    pub origin: usize,
    /// The issuing service's QoS class: selects the admission quota,
    /// shed priority and deadline budget the engine applies. It does not
    /// change what the query *answers* — two classes asking the same
    /// question share cached results.
    pub class: ServiceClass,
    /// What data to select.
    pub selector: Selector,
    /// Which slice of the city.
    pub scope: Scope,
    /// Creation-time window.
    pub window: TimeWindow,
    /// Answer shape.
    pub kind: QueryKind,
}

impl Query {
    /// Validates indices and the window.
    ///
    /// # Errors
    ///
    /// [`Error::BadQuery`] on out-of-range sections/districts or an
    /// inverted window.
    pub fn validated(&self) -> Result<()> {
        if self.origin >= 73 {
            return Err(Error::BadQuery {
                field: "origin",
                reason: format!("section {} out of range (73 sections)", self.origin),
            });
        }
        match self.scope {
            Scope::Section(s) if s >= 73 => {
                return Err(Error::BadQuery {
                    field: "scope",
                    reason: format!("section {s} out of range (73 sections)"),
                });
            }
            Scope::District(d) if d >= 10 => {
                return Err(Error::BadQuery {
                    field: "scope",
                    reason: format!("district {d} out of range (10 districts)"),
                });
            }
            Scope::Section(_) | Scope::District(_) | Scope::City => {}
        }
        if self.window.until_s < self.window.from_s {
            return Err(Error::BadQuery {
                field: "window",
                reason: format!(
                    "inverted window [{}, {})",
                    self.window.from_s, self.window.until_s
                ),
            });
        }
        Ok(())
    }

    /// Whether a stored record satisfies the selector, scope and window.
    /// Scope matching uses the provenance tags the acquisition block
    /// stamped at fog 1, so it works at every tier.
    pub fn matches(&self, record: &DataRecord) -> bool {
        self.selector.matches(record.sensor_type())
            && self.window.contains(record.descriptor().created_s())
            && match self.scope {
                Scope::Section(s) => record.descriptor().section() == Some(s as u16),
                Scope::District(d) => record.descriptor().district() == Some(d as u16),
                // Everything the hierarchy ingests is produced in the
                // city; City selects on type and window alone.
                Scope::City => true,
            }
    }
}

/// The most recent matching observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointSample {
    /// Creation time of the observation.
    pub created_s: u64,
    /// Which sensor produced it.
    pub sensor: SensorId,
    /// The observation's magnitude.
    pub value: f64,
}

/// The aggregate bundle every aggregate query answers with. One pass
/// computes all of it, so repeated dashboards with different panels share
/// cached partials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateResult {
    /// Matching observations.
    pub count: u64,
    /// Sum of magnitudes.
    pub sum: f64,
    /// Mean magnitude (`None` when empty).
    pub mean: Option<f64>,
    /// Smallest magnitude.
    pub min: Option<f64>,
    /// Largest magnitude.
    pub max: Option<f64>,
    /// Population variance of the magnitudes.
    pub variance: Option<f64>,
    /// HyperLogLog estimate of distinct reporting sensors.
    pub distinct_sensors: u64,
}

/// Absorbs one stored record into a partial: its magnitude into the
/// moments/extremes, its sensor identity into the distinct sketch. (The
/// [`AggPartial`] itself lives in `f2c_aggregate::sketch`, shared with
/// the write path's flush shipping — this is the record-shaped door the
/// serving side uses.)
pub fn absorb_record(acc: &mut AggPartial, record: &DataRecord) {
    acc.absorb(
        record.reading().value().magnitude(),
        record.reading().sensor().seed_material(),
    );
}

/// Finalizes a partial into the answer bundle every aggregate query
/// returns.
pub fn finalize(partial: &AggPartial) -> AggregateResult {
    let moments = partial.moments();
    let minmax = partial.minmax();
    AggregateResult {
        count: moments.count,
        sum: moments.sum,
        mean: moments.mean(),
        min: minmax.min,
        max: minmax.max,
        variance: moments.variance(),
        distinct_sensors: partial.distinct_estimate(),
    }
}

/// What a query answers with.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Latest matching observation, if any.
    Point(Option<PointSample>),
    /// The matching records (clones — data never leaves its tier).
    Records(Vec<DataRecord>),
    /// The aggregate bundle.
    Aggregate(AggregateResult),
}

impl QueryAnswer {
    /// Approximate response payload size, for transfer-cost estimates:
    /// records at wire size, scalars at a fixed small envelope.
    pub fn response_bytes(&self) -> u64 {
        match self {
            QueryAnswer::Point(_) => 64,
            QueryAnswer::Records(recs) => recs.iter().map(DataRecord::wire_len).sum(),
            QueryAnswer::Aggregate(_) => 96,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sensors::{Reading, Value};

    fn rec(ty: SensorType, idx: u32, t: u64, v: f64) -> DataRecord {
        let mut r =
            DataRecord::from_reading(Reading::new(SensorId::new(ty, idx), t, Value::from_f64(v)));
        r.descriptor_mut().set_location("Barcelona", 3, 21);
        r
    }

    fn query(selector: Selector, scope: Scope, from: u64, until: u64) -> Query {
        Query {
            origin: 21,
            class: ServiceClass::Dashboard,
            selector,
            scope,
            window: TimeWindow::new(from, until),
            kind: QueryKind::Range,
        }
    }

    #[test]
    fn selector_matches_type_and_category() {
        assert!(Selector::Type(SensorType::Traffic).matches(SensorType::Traffic));
        assert!(!Selector::Type(SensorType::Traffic).matches(SensorType::Weather));
        assert!(Selector::Category(Category::Urban).matches(SensorType::Weather));
        assert!(!Selector::Category(Category::Noise).matches(SensorType::Weather));
    }

    #[test]
    fn query_matching_uses_provenance_tags() {
        let q = query(
            Selector::Type(SensorType::Traffic),
            Scope::Section(21),
            100,
            200,
        );
        assert!(q.matches(&rec(SensorType::Traffic, 0, 150, 1.0)));
        assert!(!q.matches(&rec(SensorType::Weather, 0, 150, 1.0)), "type");
        assert!(!q.matches(&rec(SensorType::Traffic, 0, 200, 1.0)), "window");
        let elsewhere = query(
            Selector::Type(SensorType::Traffic),
            Scope::Section(5),
            100,
            200,
        );
        assert!(!elsewhere.matches(&rec(SensorType::Traffic, 0, 150, 1.0)));
        let district = query(
            Selector::Type(SensorType::Traffic),
            Scope::District(3),
            100,
            200,
        );
        assert!(district.matches(&rec(SensorType::Traffic, 0, 150, 1.0)));
    }

    #[test]
    fn validation_rejects_bad_indices_and_windows() {
        let mut q = query(
            Selector::Category(Category::Urban),
            Scope::Section(0),
            0,
            100,
        );
        assert!(q.validated().is_ok());
        q.origin = 73;
        assert!(q.validated().is_err());
        q.origin = 0;
        q.scope = Scope::District(10);
        assert!(q.validated().is_err());
        q.scope = Scope::Section(0);
        q.window = TimeWindow::new(100, 50);
        assert!(q.validated().is_err());
    }

    #[test]
    fn partial_merge_equals_flat_fold() {
        let records: Vec<DataRecord> = (0..60)
            .map(|i| {
                rec(
                    SensorType::Traffic,
                    i % 7,
                    1000 + u64::from(i),
                    f64::from(i % 13),
                )
            })
            .collect();
        let mut flat = AggPartial::empty();
        for r in &records {
            absorb_record(&mut flat, r);
        }
        let mut merged = AggPartial::empty();
        for chunk in records.chunks(11) {
            let mut part = AggPartial::empty();
            for r in chunk {
                absorb_record(&mut part, r);
            }
            merged.merge(&part);
        }
        let (a, b) = (finalize(&flat), finalize(&merged));
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.distinct_sensors, b.distinct_sensors, "HLL merges exactly");
        assert!((a.sum - b.sum).abs() < 1e-9);
        assert_eq!(a.distinct_sensors, 7);
    }

    #[test]
    fn empty_partial_finalizes_to_zeroes() {
        let r = finalize(&AggPartial::empty());
        assert_eq!(r.count, 0);
        assert_eq!(r.mean, None);
        assert_eq!(r.min, None);
        assert_eq!(r.distinct_sensors, 0);
    }
}
