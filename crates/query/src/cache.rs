//! Result and partial-aggregate caching.
//!
//! Two invalidation signals keep cached answers correct without any
//! bookkeeping on the write path:
//!
//! * a **TTL** in simulated seconds bounds staleness for consumers, and
//! * the engine's **epoch** (the hierarchy's flush epoch plus any local
//!   invalidations) certifies structural freshness: archives above fog 1
//!   only change when a flush ships data upward (which also runs
//!   retention eviction), so an entry stamped with the current epoch
//!   cannot have been invalidated by upstream movement.
//!
//! Fog-1 stores do change between flushes — but only by appending records
//! at the clock frontier, which is why bucketed partials are only cached
//! for buckets that end at or before the instant they were computed (the
//! engine bumps its epoch if a backdated ingest breaks that assumption).

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::model::{AggPartial, Query, QueryAnswer, QueryKind, Scope, Selector, TimeWindow};

/// A bounded map with FIFO eviction, shared by both caches.
///
/// Entries removed out of band (stale reads) leave their order slot
/// behind; each slot carries the insertion sequence number, so eviction
/// skips slots whose entry was already dropped or re-inserted, and the
/// order queue is compacted whenever it exceeds twice the capacity.
/// Memory is therefore O(capacity) no matter the churn pattern.
#[derive(Debug, Clone)]
struct BoundedFifo<K, V> {
    map: HashMap<K, Slot<V>>,
    order: VecDeque<(u64, K)>,
    capacity: usize,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Slot<V> {
    value: V,
    seq: u64,
}

impl<K: Copy + Eq + Hash, V> BoundedFifo<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    fn remove(&mut self, key: &K) {
        // The order slot stays behind; eviction/compaction skips it via
        // the sequence check.
        self.map.remove(key);
    }

    fn insert(&mut self, key: K, value: V) {
        if let Some(slot) = self.map.get_mut(&key) {
            // In-place update keeps the original FIFO position.
            slot.value = value;
            return;
        }
        while self.map.len() >= self.capacity {
            match self.order.pop_front() {
                Some((seq, old)) => {
                    if self.map.get(&old).is_some_and(|s| s.seq == seq) {
                        self.map.remove(&old);
                        break;
                    }
                }
                None => break,
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.push_back((seq, key));
        self.map.insert(key, Slot { value, seq });
        if self.order.len() > 2 * self.capacity {
            let map = &self.map;
            self.order
                .retain(|(seq, k)| map.get(k).is_some_and(|s| s.seq == *seq));
        }
    }

    #[cfg(test)]
    fn order_len(&self) -> usize {
        self.order.len()
    }
}

/// Cache identity of a query: everything except the requesting origin —
/// the answer depends on the data selected, not on who asks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    selector: Selector,
    scope: Scope,
    window: TimeWindow,
    kind: QueryKind,
}

impl From<&Query> for CacheKey {
    fn from(q: &Query) -> Self {
        Self {
            selector: q.selector,
            scope: q.scope,
            window: q.window,
            kind: q.kind,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    answer: QueryAnswer,
    stored_at_s: u64,
    epoch: u64,
}

/// A bounded, deterministic result cache: TTL + epoch validity checks on
/// read, FIFO eviction on insert.
#[derive(Debug, Clone)]
pub struct ResultCache {
    inner: BoundedFifo<CacheKey, Entry>,
    ttl_s: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` answers for `ttl_s`.
    pub fn new(ttl_s: u64, capacity: usize) -> Self {
        Self {
            inner: BoundedFifo::new(capacity),
            ttl_s,
        }
    }

    /// Number of resident entries (some may be stale until touched).
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Returns the cached answer if it is still valid at `now_s` under
    /// `epoch`; drops it otherwise.
    pub fn get(&mut self, key: &CacheKey, now_s: u64, epoch: u64) -> Option<QueryAnswer> {
        let valid = match self.inner.get(key) {
            Some(e) => e.epoch == epoch && now_s.saturating_sub(e.stored_at_s) < self.ttl_s,
            None => return None,
        };
        if !valid {
            self.inner.remove(key);
            return None;
        }
        self.inner.get(key).map(|e| e.answer.clone())
    }

    /// Stores an answer, evicting oldest-inserted entries when full.
    pub fn put(&mut self, key: CacheKey, answer: QueryAnswer, now_s: u64, epoch: u64) {
        self.inner.insert(
            key,
            Entry {
                answer,
                stored_at_s: now_s,
                epoch,
            },
        );
    }
}

/// Which node a cached partial was computed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKey {
    /// A fog-1 node by section.
    Fog1(u16),
    /// A fog-2 node by district.
    Fog2(u16),
    /// The cloud archive.
    Cloud,
}

/// Cache identity of one aggregation bucket at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialKey {
    /// Where the partial was folded.
    pub node: NodeKey,
    /// Data selection it covers.
    pub selector: Selector,
    /// Scope it was filtered to.
    pub scope: Scope,
    /// Bucket start (a multiple of the bucket width).
    pub bucket_start_s: u64,
}

#[derive(Debug, Clone)]
struct PartialEntry {
    partial: AggPartial,
    epoch: u64,
}

/// A bounded cache of per-bucket mergeable partials, epoch-invalidated.
/// Aggregate queries merge cached bucket partials instead of rescanning
/// the archive — the decomposability payoff of §V.A at serving time.
#[derive(Debug, Clone)]
pub struct PartialCache {
    inner: BoundedFifo<PartialKey, PartialEntry>,
}

impl PartialCache {
    /// An empty cache holding at most `capacity` bucket partials.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: BoundedFifo::new(capacity),
        }
    }

    /// Number of resident partials.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }

    /// Merges the cached partial for `key` into `acc` if one is valid
    /// under `epoch`; reports whether it was a hit.
    pub fn merge_into(&mut self, key: &PartialKey, epoch: u64, acc: &mut AggPartial) -> bool {
        let valid = match self.inner.get(key) {
            Some(e) => e.epoch == epoch,
            None => return false,
        };
        if !valid {
            self.inner.remove(key);
            return false;
        }
        let entry = self.inner.get(key).expect("checked above");
        acc.merge(&entry.partial);
        true
    }

    /// Stores a freshly folded bucket partial.
    pub fn put(&mut self, key: PartialKey, partial: AggPartial, epoch: u64) {
        self.inner.insert(key, PartialEntry { partial, epoch });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AggregateResult;
    use scc_sensors::SensorType;

    fn key(from: u64, until: u64) -> CacheKey {
        CacheKey {
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::Section(0),
            window: TimeWindow::new(from, until),
            kind: QueryKind::Aggregate,
        }
    }

    fn answer(count: u64) -> QueryAnswer {
        QueryAnswer::Aggregate(AggregateResult {
            count,
            sum: 0.0,
            mean: None,
            min: None,
            max: None,
            variance: None,
            distinct_sensors: 0,
        })
    }

    #[test]
    fn ttl_and_epoch_invalidate() {
        let mut c = ResultCache::new(60, 8);
        c.put(key(0, 100), answer(5), 1_000, 1);
        assert!(c.get(&key(0, 100), 1_059, 1).is_some(), "within TTL");
        assert!(c.get(&key(0, 100), 1_060, 1).is_none(), "TTL expired");
        c.put(key(0, 100), answer(5), 1_000, 1);
        assert!(c.get(&key(0, 100), 1_001, 2).is_none(), "flush epoch moved");
        assert!(c.is_empty(), "stale entries are dropped on read");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let mut c = ResultCache::new(1_000, 3);
        for i in 0..5u64 {
            c.put(key(i, i + 1), answer(i), 0, 1);
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(&key(0, 1), 0, 1).is_none(), "oldest evicted");
        assert!(c.get(&key(4, 5), 0, 1).is_some(), "newest kept");
    }

    #[test]
    fn update_in_place_does_not_grow_the_order_queue() {
        let mut c = ResultCache::new(1_000, 2);
        for _ in 0..10 {
            c.put(key(0, 1), answer(1), 0, 1);
        }
        c.put(key(1, 2), answer(2), 0, 1);
        assert_eq!(c.len(), 2, "repeated puts of one key occupy one slot");
        assert_eq!(c.inner.order_len(), 2);
    }

    #[test]
    fn stale_churn_on_one_key_keeps_memory_bounded() {
        // One recurring key invalidated by an epoch bump every round:
        // the map never reaches capacity, yet the order queue must not
        // grow without bound (it compacts at 2x capacity).
        let mut c = ResultCache::new(1_000, 4);
        for epoch in 0..100u64 {
            assert!(c.get(&key(0, 1), 0, epoch).is_none());
            c.put(key(0, 1), answer(epoch), 0, epoch);
        }
        assert_eq!(c.len(), 1);
        assert!(
            c.inner.order_len() <= 8,
            "order queue leaked: {} slots for 1 live entry",
            c.inner.order_len()
        );
        // The surviving entry is the freshest one.
        match c.get(&key(0, 1), 0, 99) {
            Some(QueryAnswer::Aggregate(a)) => assert_eq!(a.count, 99),
            other => panic!("expected the last answer, got {other:?}"),
        }
    }

    #[test]
    fn eviction_skips_reinserted_keys() {
        // A key dropped as stale and re-inserted gets a fresh sequence;
        // the leftover order slot must not evict the new entry.
        let mut c = ResultCache::new(1_000, 2);
        c.put(key(0, 1), answer(0), 0, 1);
        assert!(c.get(&key(0, 1), 0, 2).is_none(), "stale drop");
        c.put(key(0, 1), answer(1), 0, 2);
        c.put(key(1, 2), answer(2), 0, 2);
        c.put(key(2, 3), answer(3), 0, 2); // evicts the oldest live slot
        assert_eq!(c.len(), 2);
        assert!(
            c.get(&key(2, 3), 0, 2).is_some(),
            "newest insert must survive"
        );
    }

    #[test]
    fn partial_cache_merges_hits_and_respects_epoch() {
        use crate::model::AggPartial;
        let mut pc = PartialCache::new(8);
        let k = PartialKey {
            node: NodeKey::Fog2(3),
            selector: Selector::Type(SensorType::Traffic),
            scope: Scope::District(3),
            bucket_start_s: 900,
        };
        let mut acc = AggPartial::empty();
        assert!(!pc.merge_into(&k, 1, &mut acc), "cold");
        pc.put(k, AggPartial::empty(), 1);
        assert!(pc.merge_into(&k, 1, &mut acc), "hit");
        assert!(!pc.merge_into(&k, 2, &mut acc), "epoch invalidates");
        assert!(pc.is_empty());
    }
}
