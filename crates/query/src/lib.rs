//! # f2c-query — consumer-facing query serving over the F2C hierarchy
//!
//! The paper's §IV.C–§IV.D argue that the fog-to-cloud hierarchy lets
//! city services consume data from the *cheapest layer that holds it* —
//! real-time reads at fog 1, recent windows at fog 2, history at the
//! cloud. This crate is that consumption path as a subsystem:
//!
//! * [`model`] — typed queries: point / range / aggregate, keyed by
//!   sensor type or category, scoped to a section, a district or the
//!   whole city, over a half-open time window,
//! * [`planner`] — the §IV.C cost model applied to serving: route each
//!   query to the cheapest *provably complete* route — one source
//!   (eviction watermarks + flush-propagation frontiers, falling back
//!   upward when data has aged out of a fog tier), or a scatter-gather
//!   fan-out over the member fog-1/fog-2 nodes that each hold one shard,
//!   priced against the single-source cloud read; aggregate windows
//!   fog 1 has *evicted* stay answerable from the sketch plane
//!   ([`f2c_core::DataSource::WarmSketch`] single sources and warm-sketch
//!   scatter legs, staleness-bounded by the flush seal frontier),
//! * [`scatter`] — merging fan-out partials at the requester's fog-2:
//!   [`AggPartial`] folds for aggregates, k-way ordered merge with dedup
//!   for range reads, canonical-rank races for points,
//! * [`engine`] — the executor behind tiered result caches (edge +
//!   source/gather, TTL- and flush-epoch-invalidated) and **class-aware
//!   admission control** (the [`f2c_qos`] ledger: per-class guaranteed
//!   quotas + bounded borrowing per layer, deadline budgets enforced at
//!   plan time, deadline-bounded rerouting onto a contest's losing
//!   route, and a fan-out occupying one class-tagged slot per leg;
//!   warm-sketch reads admit at the QoS policy's *reduced* cost);
//!   aggregates are assembled from mergeable bucket partials
//!   ([`f2c_aggregate::sketch::AggPartial`] moments/extremes plus a
//!   HyperLogLog distinct-sensor sketch) — served from the partial
//!   cache, assembled from the flush-shipped sketch ledger
//!   (`prefold`), or scanned, in that order,
//! * [`workload`] — deterministic, seeded closed-loop workloads
//!   (dashboard / analytics / real-time / city-wide mixes) on the
//!   event-driven clock, with diurnal day-curves and per-class flash
//!   crowds, for driving millions of simulated requests reproducibly,
//! * [`parallel`] — the same closed loop sharded by district onto
//!   worker threads ([`f2c_core::Parallelism`]), with deterministic
//!   barriers at flush/ingest waves and canonical-order merges, so
//!   every run artifact is byte-identical at any thread count.
//!
//! # Quickstart
//!
//! ```
//! use f2c_core::{F2cCity, runtime::populate_city};
//! use f2c_query::{EngineConfig, Outcome, Query, QueryEngine, QueryKind};
//! use f2c_query::{Scope, Selector, ServiceClass, TimeWindow};
//! use scc_sensors::Category;
//!
//! // Warm a city (2 simulated hours at 1/50000 population), then serve.
//! let mut city = F2cCity::barcelona()?;
//! populate_city(&mut city, 50_000, 7, 7_200, 900)?;
//! let mut engine = QueryEngine::new(city, EngineConfig::default());
//! engine.flush_all(7_200)?;
//!
//! let district = engine.city().district_of(21);
//! let dashboard = Query {
//!     origin: 21,
//!     class: ServiceClass::Dashboard,
//!     selector: Selector::Category(Category::Urban),
//!     scope: Scope::District(district),
//!     window: TimeWindow::new(0, 7_200),
//!     kind: QueryKind::Aggregate,
//! };
//! match engine.serve_sync(&dashboard, 7_300)? {
//!     Outcome::Answered(resp) => assert!(resp.est_latency.as_micros() > 0),
//!     Outcome::Shed { layer, class, cause } => {
//!         panic!("{class} shed at {layer} ({cause:?})")
//!     }
//! }
//! # Ok::<(), f2c_query::Error>(())
//! ```

pub mod cache;
pub mod engine;
mod error;
pub mod model;
pub mod parallel;
pub mod planner;
pub mod scatter;
pub mod workload;

pub use engine::{
    ClassStats, Completeness, EngineConfig, EngineStats, HeldSlots, LayerCaps, Outcome,
    QueryEngine, QueryResponse, ServedVia,
};
pub use error::{Error, Result};
pub use f2c_qos::{ClassLedger, ClassPolicy, QosPolicy, ShedCause};
pub use model::{
    absorb_record, finalize, AggPartial, AggregateResult, PointSample, Query, QueryAnswer,
    QueryKind, Scope, Selector, TimeWindow,
};
pub use planner::{plan, Choice, QueryPlan, Route, ScatterLeg, ScatterPlan};
pub use workload::{
    DiurnalCurve, FlashCrowd, Mix, ServiceClass, WorkloadConfig, WorkloadReport, MAX_FLASH_CROWDS,
};
