//! The sharded workload runtime: the closed loop of [`crate::workload`]
//! partitioned by district onto worker threads.
//!
//! The city is split into one **logical shard per district** — a fixed
//! decomposition, independent of the thread count — and each shard owns
//! its district's users, its own `ServeCore` (result caches, a
//! *partitioned slice* of the admission ledger, buffered observability)
//! and its own event queue and RNG. Between synchronization points the
//! shards advance independently against a shared `&F2cCity` snapshot:
//! serving only ever *reads* the city, and every observable side effect
//! (metrics, spans, incidents, network metering) lands in the shard's
//! [`f2c_core::ObsScratch`].
//!
//! Synchronization happens at **barriers** — the global flush-wave and
//! ingest-wave instants. Every shard runs its queue strictly up to the
//! barrier time; the coordinator then absorbs each shard's scratch into
//! the city **in canonical district order**, applies the flush or the
//! ingest wave, and releases the shards into the next span. Because the
//! shard decomposition, the per-shard event streams, and the merge order
//! are all independent of how many worker threads carry the shards,
//! every run artifact — the transcript, its FNV hash, the metric
//! snapshot, traces and the incident timeline — is byte-identical at
//! any [`f2c_core::Parallelism`] (`PARALLELISM=1` reproduces
//! `PARALLELISM=8` exactly). `tests/parallel.rs` holds that oracle.
//!
//! Two latent shared-state hazards are resolved by construction:
//!
//! * **Admission slices** — the global [`LayerCaps`] are partitioned
//!   across shards (`partition_caps`): fog-1 slots proportionally to
//!   the district's section count (largest-remainder, minimum 1);
//!   fog-2 and cloud budgets replicate per shard so multi-leg fan-outs
//!   stay admissible. A shard only ever acquires and releases against
//!   its own slice, so there is no cross-shard acquire or rollback —
//!   and no ordering dependence.
//! * **Histogram merge order** — per-shard latency histograms merge
//!   into the report (and the city registry) in district order, never
//!   in completion order.

use std::fmt::Write as _;

use citysim::event::EventQueue;
use citysim::time::{Duration, SimTime};
use citysim::Histogram;
use f2c_core::runtime::section_generators;
use f2c_core::{run_shards, F2cCity};
use f2c_qos::{ShedCause, CLASS_COUNT};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{ClassStats, LayerCaps, Outcome, QueryEngine, ServeCore, ServedVia};
use crate::workload::{
    fnv1a, gen_query_at, think, validate, DiurnalCurve, FlashCrowd, ServiceClass, User,
    WorkloadConfig, WorkloadReport, FNV_OFFSET,
};
use crate::{Error, Result};

/// Splits the global admission caps into per-district slices.
///
/// Fog-1 slots are apportioned proportionally to each district's
/// section count by largest remainder (ties to the lower district
/// index, minimum 1): fog-1 serving is origin-local and every origin
/// belongs to exactly one shard, so the slices conserve the city-wide
/// budget without starving anyone. Fog-2 and cloud slots are **not**
/// divided — each shard keeps the full budget, because those layers
/// serve district- and city-scoped queries whose fan-outs hold one
/// slot per *leg* (a 10-district scatter needs 10 fog-2 slots at
/// once; a tenth-sized slice could never admit it). Each shard thus
/// runs the exact admission arithmetic the sequential engine would
/// run if only that shard's users existed; the aggregate in-flight
/// bound relaxes to per-shard, which is the documented cost of
/// shard-local admission (no cross-shard slot traffic, no ordering
/// dependence).
pub(crate) fn partition_caps(total: LayerCaps, section_counts: &[usize]) -> Vec<LayerCaps> {
    let total_sections: u64 = section_counts.iter().map(|&c| c as u64).sum::<u64>().max(1);
    let mut fog1: Vec<u32> = Vec::with_capacity(section_counts.len());
    let mut rems: Vec<(u64, usize)> = Vec::with_capacity(section_counts.len());
    let mut assigned = 0u64;
    for (d, &count) in section_counts.iter().enumerate() {
        let share = u64::from(total.fog1) * count as u64;
        fog1.push((share / total_sections) as u32);
        assigned += share / total_sections;
        rems.push((share % total_sections, d));
    }
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = u64::from(total.fog1).saturating_sub(assigned);
    for &(_, d) in &rems {
        if leftover == 0 {
            break;
        }
        fog1[d] += 1;
        leftover -= 1;
    }
    (0..section_counts.len())
        .map(|d| LayerCaps {
            fog1: fog1[d].max(1),
            fog2: total.fog2,
            cloud: total.cloud,
        })
        .collect()
}

/// A shard-local event: user ticks and slot releases. Flush and ingest
/// are coordinator barriers, never shard events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Shard-local user `u` issues their next request.
    Tick(u32),
    /// A simulated response completed: release its admission slots
    /// (always against this shard's own ledger slice).
    Release(crate::engine::HeldSlots),
}

/// A user's next think time (identical arithmetic to the sequential
/// loop): class nominal, scaled by the diurnal intensity, then by the
/// flash-crowd divisor.
fn next_think(
    user: &User,
    now_s: u64,
    diurnal: Option<DiurnalCurve>,
    rng: &mut SmallRng,
) -> Duration {
    let base = think(user.class, rng);
    let milli = diurnal.map_or(1_000, |curve| curve.intensity_milli(now_s));
    let scaled = base.as_micros() * 1_000 / milli;
    Duration::from_micros((scaled / u64::from(user.think_divisor)).max(1))
}

/// One district shard: everything it needs to advance between barriers
/// without touching another shard or mutating the city.
struct Shard {
    /// The district's fog-1 sections — the origin pool for its users.
    sections: Vec<usize>,
    core: ServeCore,
    rng: SmallRng,
    users: Vec<User>,
    queue: EventQueue<Ev>,
    /// Requests this shard must issue (the global budget, dealt
    /// round-robin across shards with steady users).
    quota: u64,
    issued: u64,
    answered: u64,
    shed: u64,
    unanswerable: u64,
    shed_during_flash: [u64; CLASS_COUNT],
    hists: [Histogram; 3],
    class_hists: [Histogram; CLASS_COUNT],
    scatter_latency: Histogram,
    sim_end_s: u64,
    transcript: Vec<u8>,
    transcript_hash: u64,
    line: String,
    /// First hard serving error, reported at the next barrier.
    failed: Option<Error>,
}

impl Shard {
    /// Processes every queued event strictly before `deadline`
    /// (`None` drains the queue). Runs on a worker thread; only reads
    /// `city`.
    fn run_until(
        &mut self,
        city: &F2cCity,
        deadline: Option<SimTime>,
        config: &WorkloadConfig,
        crowds: &[FlashCrowd],
    ) {
        if self.failed.is_some() {
            return;
        }
        while let Some(next) = self.queue.peek_time() {
            if deadline.is_some_and(|d| next >= d) {
                return;
            }
            let Some((at, ev)) = self.queue.pop() else {
                return;
            };
            let now_s = at.as_secs();
            match ev {
                Ev::Release(held) => self.core.ledger.release(held.class(), held.slots()),
                Ev::Tick(u) => {
                    if self.issued >= self.quota {
                        continue;
                    }
                    let user = self.users[u as usize];
                    if user.retires_at_s.is_some_and(|end| now_s >= end) {
                        continue;
                    }
                    self.issued += 1;
                    self.sim_end_s = now_s;
                    let class = user.class;
                    let in_flash = crowds.iter().any(|c| c.active_at(now_s));
                    let origin = self.sections[self.rng.gen_range(0..self.sections.len())];
                    let query = gen_query_at(
                        class,
                        now_s,
                        origin,
                        self.core.last_flush_s,
                        city,
                        &mut self.rng,
                    );
                    let issued = self.issued;
                    self.line.clear();
                    let next_at = match self.core.serve(city, &query, now_s) {
                        Ok(Outcome::Answered(resp)) => {
                            self.answered += 1;
                            self.hists[resp.layer.index()].record(resp.est_latency);
                            self.class_hists[class.index()].record(resp.est_latency);
                            if matches!(resp.via, ServedVia::Scatter { .. }) {
                                self.scatter_latency.record(resp.est_latency);
                            }
                            let done = at + resp.est_latency;
                            if !resp.held.is_empty() {
                                self.queue.schedule_at(done, Ev::Release(resp.held));
                            }
                            write!(
                                self.line,
                                "{issued};{class:?};A;{:?};{}",
                                resp.via,
                                resp.est_latency.as_micros()
                            )
                            .expect("writing to a String cannot fail");
                            done + next_think(&user, now_s, config.diurnal, &mut self.rng)
                        }
                        Ok(Outcome::Shed {
                            layer,
                            class: shed_class,
                            cause,
                        }) => {
                            self.shed += 1;
                            if in_flash && cause == ShedCause::Capacity {
                                self.shed_during_flash[shed_class.index()] += 1;
                            }
                            write!(
                                self.line,
                                "{issued};{shed_class:?};S;{layer};{};0",
                                cause.label()
                            )
                            .expect("writing to a String cannot fail");
                            match cause {
                                ShedCause::Capacity => {
                                    at + Duration::from_micros(
                                        next_think(&user, now_s, config.diurnal, &mut self.rng)
                                            .as_micros()
                                            / 2,
                                    )
                                }
                                ShedCause::Deadline | ShedCause::Fault => {
                                    at + next_think(&user, now_s, config.diurnal, &mut self.rng)
                                }
                            }
                        }
                        Err(Error::Unanswerable { .. }) => {
                            self.unanswerable += 1;
                            write!(self.line, "{issued};{class:?};U;;0")
                                .expect("writing to a String cannot fail");
                            at + next_think(&user, now_s, config.diurnal, &mut self.rng)
                        }
                        Err(e) => {
                            self.failed = Some(e);
                            return;
                        }
                    };
                    self.line.push('\n');
                    fnv1a(&mut self.transcript_hash, self.line.as_bytes());
                    if config.record_transcript {
                        self.transcript.extend_from_slice(self.line.as_bytes());
                    }
                    if self.issued < self.quota {
                        self.queue.schedule_at(next_at, Ev::Tick(u));
                    }
                }
            }
        }
    }
}

/// Runs one closed-loop workload against `engine`, sharded by district
/// onto the city's configured [`f2c_core::Parallelism`] worker threads.
///
/// Semantics follow [`crate::workload::run`] — the same per-class think
/// times, retry policies, diurnal scaling, flash crowds, background
/// flush/ingest cadence and transcript line format — but the population
/// is dealt round-robin across the ten district shards, each user's
/// queries originate from their home district, and every shard draws
/// from its own seeded RNG and ledger slice. The report (and every city
/// observable) is therefore a *different* deterministic run than the
/// sequential loop's, yet byte-identical to itself at **any** thread
/// count.
///
/// The per-request transcript numbers requests *per shard* and the
/// report concatenates shard transcripts in district order;
/// `transcript_hash` is the FNV-1a fold of the per-shard rolling hashes
/// in that same order.
///
/// # Errors
///
/// [`Error::BadQuery`] on a degenerate configuration (exactly as the
/// sequential loop); hierarchy/network errors from serving or the
/// background waves.
pub fn run(engine: &mut QueryEngine, config: &WorkloadConfig) -> Result<WorkloadReport> {
    let crowds = validate(config)?;
    let threads = engine.city().parallelism();
    engine.flush_all(config.start_s)?;
    let stats0 = engine.stats();

    let mut ingest_gens = (config.ingest_period_s > 0).then(|| {
        section_generators(
            &engine
                .city()
                .catalog()
                .scaled_down(config.ingest_scale.max(1)),
            config.seed ^ 0x9E37_79B9_7F4A_7C15,
        )
    });

    let (engine_core, city) = engine.core_parts();
    let districts = city.district_count();
    let section_count = city.section_count();
    let counts: Vec<usize> = (0..districts)
        .map(|d| city.sections_in_district(d).len())
        .collect();
    let slices = partition_caps(engine_core.cfg.caps, &counts);

    let mut shards: Vec<Shard> = (0..districts)
        .map(|d| {
            let mut cfg = engine_core.cfg;
            cfg.caps = slices[d];
            let mut core = ServeCore::new(cfg, section_count);
            core.last_flush_s = config.start_s;
            Shard {
                sections: city.sections_in_district(d),
                core,
                // Each shard owns an independent stream derived from the
                // master seed and its district index.
                rng: SmallRng::seed_from_u64(
                    config.seed ^ (d as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                users: Vec::new(),
                queue: EventQueue::new(),
                quota: 0,
                issued: 0,
                answered: 0,
                shed: 0,
                unanswerable: 0,
                shed_during_flash: [0; CLASS_COUNT],
                hists: [Histogram::new(), Histogram::new(), Histogram::new()],
                class_hists: Default::default(),
                scatter_latency: Histogram::new(),
                sim_end_s: config.start_s,
                transcript: Vec::new(),
                transcript_hash: FNV_OFFSET,
                line: String::new(),
                failed: None,
            }
        })
        .collect();

    // Deal the steady population round-robin across districts, with the
    // same arrival staggering as the sequential loop; then the flash
    // crowds' temporary members.
    let start = SimTime::from_secs(config.start_s);
    for u in 0..config.users {
        let d = (u as usize) % districts;
        let class = config.mix.sample(&mut shards[d].rng);
        let local = shards[d].users.len() as u32;
        shards[d].users.push(User {
            class,
            think_divisor: 1,
            retires_at_s: None,
        });
        shards[d].queue.schedule_at(
            start + Duration::from_millis(u64::from(u) * 31),
            Ev::Tick(local),
        );
    }
    for crowd in &crowds {
        let arrive = SimTime::from_secs(crowd.start_s.max(config.start_s));
        let leaves = crowd.start_s.saturating_add(crowd.duration_s);
        for i in 0..crowd.users {
            let d = (i as usize) % districts;
            let local = shards[d].users.len() as u32;
            shards[d].users.push(User {
                class: crowd.class,
                think_divisor: crowd.think_divisor,
                retires_at_s: Some(leaves),
            });
            shards[d].queue.schedule_at(
                arrive + Duration::from_millis(u64::from(i) * 17),
                Ev::Tick(local),
            );
        }
    }

    // Deal the request budget across shards that have at least one
    // steady (non-retiring) user — a crowd-only shard could retire
    // before filling a quota and stall the run.
    let active: Vec<usize> = (0..districts)
        .filter(|&d| shards[d].users.iter().any(|u| u.retires_at_s.is_none()))
        .collect();
    debug_assert!(!active.is_empty(), "validate() guarantees users ≥ 1");
    let per = config.requests / active.len() as u64;
    let rem = (config.requests % active.len() as u64) as usize;
    for (k, &d) in active.iter().enumerate() {
        shards[d].quota = per + u64::from(k < rem);
    }

    let mut next_flush =
        (config.flush_period_s > 0).then(|| start + Duration::from_secs(config.flush_period_s));
    let mut next_ingest = ingest_gens
        .as_ref()
        .map(|_| start + Duration::from_secs(config.ingest_period_s));
    let mut last_flush_s = config.start_s;
    let mut epoch_bumps = 0u64;

    loop {
        let barrier = match (next_flush, next_ingest) {
            (Some(f), Some(i)) => Some(f.min(i)),
            (Some(f), None) => Some(f),
            (None, Some(i)) => Some(i),
            (None, None) => None,
        };
        // Advance every shard to the barrier on the worker threads; the
        // city is a shared read-only snapshot for the whole span.
        {
            let city_ref: &F2cCity = city;
            let crowds_ref: &[FlashCrowd] = &crowds;
            run_shards(threads, &mut shards, |_, shard| {
                shard.run_until(city_ref, barrier, config, crowds_ref);
            });
        }
        for shard in &mut shards {
            if let Some(e) = shard.failed.take() {
                return Err(e);
            }
        }
        // Merge buffered observability in canonical district order —
        // never completion order — so the global view is independent of
        // the thread count.
        for shard in &mut shards {
            city.absorb_scratch(&mut shard.core.obs);
        }
        let Some(at) = barrier else { break };
        let now_s = at.as_secs();
        let unfinished = shards.iter().any(|s| s.issued < s.quota);
        if next_flush == Some(at) {
            city.flush_all(now_s)?;
            last_flush_s = now_s;
            for shard in &mut shards {
                shard.core.last_flush_s = now_s;
            }
            next_flush = unfinished.then(|| at + Duration::from_secs(config.flush_period_s));
        }
        if next_ingest == Some(at) {
            let gens = ingest_gens
                .as_mut()
                .expect("ingest barrier implies generators");
            // The cache-frontier invariant, hierarchy-wide: a wave
            // backdated behind *any* shard's served frontier bumps
            // every shard's epoch identically.
            let frontier = shards
                .iter()
                .map(|s| s.core.served_frontier_s)
                .max()
                .unwrap_or(0);
            let mut bumps = 0u64;
            for (section, per_section) in gens.iter_mut().enumerate() {
                for gen in per_section.values_mut() {
                    let wave = gen.wave(now_s);
                    if wave.iter().any(|r| r.timestamp_s() < frontier) {
                        bumps += 1;
                    }
                    city.ingest(section, wave, now_s)?;
                }
            }
            if bumps > 0 {
                epoch_bumps += bumps;
                for shard in &mut shards {
                    shard.core.extra_epochs += bumps;
                }
            }
            next_ingest = unfinished.then(|| at + Duration::from_secs(config.ingest_period_s));
        }
    }

    // Keep the engine's own (sequential) core coherent with what the
    // run did to the city, so post-run serving and gauge syncs see the
    // same frontier and epoch the shards saw.
    engine_core.last_flush_s = last_flush_s;
    engine_core.extra_epochs += epoch_bumps;
    engine_core.served_frontier_s = engine_core.served_frontier_s.max(
        shards
            .iter()
            .map(|s| s.core.served_frontier_s)
            .max()
            .unwrap_or(0),
    );

    // Fold the shard reports in district order.
    let mut issued = 0u64;
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut unanswerable = 0u64;
    let mut shed_during_flash = [0u64; CLASS_COUNT];
    let mut hists = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut class_hists: [Histogram; CLASS_COUNT] = Default::default();
    let mut scatter_latency = Histogram::new();
    let mut sim_end_s = config.start_s;
    let mut transcript = Vec::new();
    let mut transcript_hash = FNV_OFFSET;
    for shard in &shards {
        issued += shard.issued;
        answered += shard.answered;
        shed += shard.shed;
        unanswerable += shard.unanswerable;
        for (hist, shard_hist) in hists.iter_mut().zip(&shard.hists) {
            hist.merge(shard_hist);
        }
        for (hist, shard_hist) in class_hists.iter_mut().zip(&shard.class_hists) {
            hist.merge(shard_hist);
        }
        for (total, &n) in shed_during_flash.iter_mut().zip(&shard.shed_during_flash) {
            *total += n;
        }
        scatter_latency.merge(&shard.scatter_latency);
        sim_end_s = sim_end_s.max(shard.sim_end_s);
        fnv1a(&mut transcript_hash, &shard.transcript_hash.to_le_bytes());
        if config.record_transcript {
            transcript.extend_from_slice(&shard.transcript);
        }
    }

    // Publish the merged latency distributions into the city's unified
    // registry, exactly as the sequential loop does.
    {
        let m = city.metrics_mut();
        let q = f2c_obs::Labels::new().service("query");
        for layer in f2c_core::Layer::ALL {
            let id = m.histogram(
                "query_latency_us",
                q.layer(crate::engine::layer_label(layer)),
            );
            m.merge_histogram(id, &hists[layer.index()]);
        }
        for class in ServiceClass::ALL {
            let id = m.histogram("query_latency_us", q.class(class.label()));
            m.merge_histogram(id, &class_hists[class.index()]);
        }
        let id = m.histogram("query_latency_us", q.kind("scatter"));
        m.merge_histogram(id, &scatter_latency);
    }
    engine.sync_gauges();

    let stats = engine.stats();
    let mut per_class = [ClassStats::default(); CLASS_COUNT];
    for class in ServiceClass::ALL {
        let i = class.index();
        per_class[i] = stats.per_class[i].delta_since(&stats0.per_class[i]);
    }
    Ok(WorkloadReport {
        issued,
        answered,
        shed,
        unanswerable,
        edge_hits: stats.edge_hits - stats0.edge_hits,
        source_hits: stats.source_hits - stats0.source_hits,
        store_served: stats.store_served - stats0.store_served,
        scatter_served: stats.scatter_served - stats0.scatter_served,
        scatter_legs: stats.scatter_legs - stats0.scatter_legs,
        scatter_wins: stats.scatter_wins - stats0.scatter_wins,
        cloud_wins: stats.cloud_wins - stats0.cloud_wins,
        prefold_hits: stats.prefold_hits - stats0.prefold_hits,
        partial_fills: stats.partial_fills - stats0.partial_fills,
        sketch_served: stats.sketch_served - stats0.sketch_served,
        sketch_legs: stats.sketch_legs - stats0.sketch_legs,
        fault_shed: stats.fault_shed - stats0.fault_shed,
        legs_shed: stats.legs_shed - stats0.legs_shed,
        degraded: stats.degraded - stats0.degraded,
        latency_by_layer: hists,
        latency_by_class: class_hists,
        per_class,
        shed_during_flash,
        scatter_latency,
        sim_end_s,
        transcript_hash,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use f2c_core::runtime::populate_city;
    use f2c_core::{F2cCity, Parallelism};

    #[test]
    fn cap_partition_conserves_generous_caps_and_floors_tiny_ones() {
        let counts = [4usize, 6, 8, 3, 6, 5, 11, 13, 7, 10];
        let generous = partition_caps(LayerCaps::default(), &counts);
        assert_eq!(generous.len(), 10);
        // Largest remainder conserves the fog-1 total exactly; fog-2
        // and cloud budgets replicate per shard so a city-wide scatter
        // (one slot per district leg) stays admissible from any shard.
        assert_eq!(
            generous.iter().map(|c| u64::from(c.fog1)).sum::<u64>(),
            u64::from(LayerCaps::default().fog1)
        );
        assert!(generous
            .iter()
            .all(|c| c.fog2 == LayerCaps::default().fog2 && c.cloud == LayerCaps::default().cloud));
        // Proportionality: the biggest district (13 sections) gets more
        // fog-1 slots than the smallest (3).
        assert!(generous[7].fog1 > generous[3].fog1);
        // Tiny caps floor at one slot per layer per shard (documented
        // inflation rather than a starved district).
        let tiny = partition_caps(
            LayerCaps {
                fog1: 4,
                fog2: 2,
                cloud: 1,
            },
            &counts,
        );
        assert!(tiny
            .iter()
            .all(|c| c.fog1 >= 1 && c.fog2 >= 1 && c.cloud >= 1));
    }

    #[test]
    fn sharded_run_issues_the_exact_budget_and_is_replayable() {
        let run_once = |threads: usize| {
            let mut city = F2cCity::barcelona().unwrap();
            city.set_parallelism(Parallelism::new(threads));
            populate_city(&mut city, 50_000, 11, 3_600, 900).unwrap();
            let mut engine = QueryEngine::new(city, EngineConfig::default());
            let config = WorkloadConfig {
                seed: 11,
                requests: 400,
                users: 24,
                start_s: 3_600,
                record_transcript: true,
                ..WorkloadConfig::default()
            };
            run(&mut engine, &config).unwrap()
        };
        let report = run_once(1);
        assert_eq!(report.issued, 400);
        assert_eq!(
            report.answered + report.shed + report.unanswerable,
            report.issued
        );
        assert!(report.answered > 0, "a warm city must answer something");
        // Same seed, same thread count → byte-identical replay.
        let replay = run_once(1);
        assert_eq!(report.transcript, replay.transcript);
        assert_eq!(report.transcript_hash, replay.transcript_hash);
    }

    #[test]
    fn degenerate_configs_are_rejected_like_the_sequential_loop() {
        let mut city = F2cCity::barcelona().unwrap();
        populate_city(&mut city, 100_000, 3, 1_800, 900).unwrap();
        let mut engine = QueryEngine::new(city, EngineConfig::default());
        let bad = WorkloadConfig {
            users: 0,
            ..WorkloadConfig::default()
        };
        assert!(matches!(
            run(&mut engine, &bad),
            Err(Error::BadQuery {
                field: "workload",
                ..
            })
        ));
    }
}
