//! Query-correctness conformance: every planner-routed answer must equal
//! a brute-force scan over *all* records resident anywhere in the
//! hierarchy (deduplicated across tiers — upward movement replicates).
//!
//! This is the load-bearing check behind the planner's completeness
//! predicate: if the cost model ever routes a window to a layer that
//! does not hold all of it (aged-out retention, unflushed pendings), the
//! answer diverges from the oracle and the case fails with the query.

use std::collections::HashSet;

use f2c_core::F2cCity;
use f2c_query::{
    AggPartial, EngineConfig, Outcome, Query, QueryAnswer, QueryEngine, QueryKind, Scope, Selector,
    TimeWindow,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scc_dlc::DataRecord;
use scc_sensors::{Category, ReadingGenerator, SensorType};

/// Tier-independent identity/projection of a record: (sensor, created,
/// value bits). Descriptors mutate as records climb (classification at
/// the cloud), so comparisons project down to the observation itself.
fn projection(rec: &DataRecord) -> (u64, u64, u64) {
    (
        rec.reading().sensor().seed_material(),
        rec.descriptor().created_s(),
        rec.reading().value().magnitude().to_bits(),
    )
}

/// Every record resident anywhere in the hierarchy, deduplicated across
/// tiers by (sensor, creation time).
fn hierarchy_records(city: &F2cCity) -> Vec<DataRecord> {
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut out = Vec::new();
    let mut gather = |store: &f2c_core::TieredStore| {
        for rec in store.range(0, u64::MAX) {
            let key = (
                rec.reading().sensor().seed_material(),
                rec.descriptor().created_s(),
            );
            if seen.insert(key) {
                out.push(rec.clone());
            }
        }
    };
    for s in 0..city.section_count() {
        gather(city.fog1(s).store());
    }
    for d in 0..10 {
        gather(city.fog2(d).store());
    }
    gather(city.cloud().store());
    out
}

/// Brute-force answer over the deduplicated hierarchy, in canonical
/// (created, sensor) order.
fn oracle(records: &[DataRecord], query: &Query) -> QueryAnswer {
    let mut matching: Vec<&DataRecord> = records.iter().filter(|r| query.matches(r)).collect();
    matching.sort_by_key(|r| {
        (
            r.descriptor().created_s(),
            r.reading().sensor().seed_material(),
        )
    });
    match query.kind {
        QueryKind::Point => QueryAnswer::Point(matching.last().map(|r| f2c_query::PointSample {
            created_s: r.descriptor().created_s(),
            sensor: r.reading().sensor(),
            value: r.reading().value().magnitude(),
        })),
        QueryKind::Range => QueryAnswer::Records(matching.into_iter().cloned().collect()),
        QueryKind::Aggregate => {
            let mut acc = AggPartial::empty();
            for r in matching {
                f2c_query::model::absorb_record(&mut acc, r);
            }
            QueryAnswer::Aggregate(f2c_query::model::finalize(&acc))
        }
    }
}

fn approx(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

fn approx_opt(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(a), Some(b)) => approx(a, b),
        _ => false,
    }
}

/// Asserts an engine answer equals the oracle's (records compared as
/// projected multisets; floating aggregate sums within rounding).
fn assert_answers_match(
    got: &QueryAnswer,
    want: &QueryAnswer,
    query: &Query,
) -> Result<(), TestCaseError> {
    match (got, want) {
        (QueryAnswer::Point(g), QueryAnswer::Point(w)) => {
            let gp = g.map(|p| (p.sensor.seed_material(), p.created_s, p.value.to_bits()));
            let wp = w.map(|p| (p.sensor.seed_material(), p.created_s, p.value.to_bits()));
            prop_assert_eq!(gp, wp, "point mismatch for {:?}", query);
        }
        (QueryAnswer::Records(g), QueryAnswer::Records(w)) => {
            let mut gk: Vec<_> = g.iter().map(projection).collect();
            gk.sort_unstable();
            let mut wk: Vec<_> = w.iter().map(projection).collect();
            wk.sort_unstable();
            prop_assert_eq!(gk, wk, "range mismatch for {:?}", query);
        }
        (QueryAnswer::Aggregate(g), QueryAnswer::Aggregate(w)) => {
            prop_assert_eq!(g.count, w.count, "count mismatch for {:?}", query);
            prop_assert_eq!(g.min, w.min, "min mismatch for {:?}", query);
            prop_assert_eq!(g.max, w.max, "max mismatch for {:?}", query);
            prop_assert_eq!(
                g.distinct_sensors,
                w.distinct_sensors,
                "distinct mismatch for {:?}",
                query
            );
            prop_assert!(
                approx(g.sum, w.sum) && approx_opt(g.mean, w.mean),
                "sum/mean mismatch for {:?}: {:?} vs {:?}",
                query,
                g,
                w
            );
        }
        _ => {
            return Err(TestCaseError::fail(format!(
                "answer shape mismatch for {query:?}: {got:?} vs {want:?}"
            )))
        }
    }
    Ok(())
}

/// Builds a city with `waves` ingest waves at each of `sections` (one
/// sensor type per section, rotating through the catalog), optionally
/// flushing and aging per the flags, and returns it with the final
/// simulated instant.
fn build_city(
    sections: &[usize],
    waves: u64,
    seed: u64,
    flush_mid: bool,
    age_days: u64,
) -> (F2cCity, u64) {
    let mut city = F2cCity::barcelona().unwrap();
    for (i, &section) in sections.iter().enumerate() {
        let ty = SensorType::ALL[(seed as usize + i * 5) % SensorType::ALL.len()];
        let mut gen = ReadingGenerator::for_population(ty, 6, seed ^ (section as u64) << 8);
        for w in 0..waves {
            city.ingest(section, gen.wave(w * 600), w * 600 + 1)
                .unwrap();
        }
    }
    let mut now = waves * 600;
    if flush_mid {
        city.flush_all(now).unwrap();
    }
    if age_days > 0 {
        now = age_days * 86_400;
        // Flushing at a later instant runs retention eviction at every
        // tier, exercising the aged-out upward fallback.
        city.flush_all(now).unwrap();
    }
    (city, now)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn planner_routed_answers_equal_brute_force(
        seed in 0u64..10_000,
        sections in proptest::collection::vec(0usize..73, 1..4),
        waves in 2u64..6,
        shape in 0u8..8,
        origin in 0usize..73,
        from_s in 0u64..3_000,
        len_s in 1u64..4_000,
        align in 0u8..2,
    ) {
        // Bucket-aligned windows are the warm-sketch-eligible ones: when
        // an aged shape routes them to `DataSource::WarmSketch` or to
        // warm-sketch scatter legs, the answer must still equal the
        // brute-force scan like every other route.
        let (from_s, len_s) = if align == 1 {
            (from_s - from_s % 900, (len_s / 900 + 1) * 900)
        } else {
            (from_s, len_s)
        };
        let flush_mid = shape & 1 != 0;
        // 0 or 3 days: 3 days outlives fog-1 retention (1 day) so the
        // aged-out fallback to fog 2 is exercised, but not fog 2's (7 d).
        let age_days = if shape & 2 != 0 { u64::from(shape >> 2) * 3 } else { 0 };
        let (city, now) = build_city(&sections, waves, seed, flush_mid, age_days);
        let records = hierarchy_records(&city);
        let mut engine = QueryEngine::new(city, EngineConfig::default());

        let selector = if shape & 4 != 0 {
            Selector::Type(SensorType::ALL[(seed as usize) % SensorType::ALL.len()])
        } else {
            Selector::Category(Category::ALL[(seed as usize) % Category::ALL.len()])
        };
        let target = sections[seed as usize % sections.len()];
        // Remote scopes matter: the origin is arbitrary, so the district
        // scopes cover same-district (parent), sibling-fog-2 and
        // scatter-gather routes, and City exercises the full fan-out.
        let scopes = [
            Scope::Section(target),
            Scope::Section(origin),
            Scope::District(engine.city().district_of(target)),
            Scope::District((engine.city().district_of(target) + 5) % 10),
            Scope::City,
        ];
        let window = TimeWindow::new(from_s, from_s + len_s);
        for scope in scopes {
            for kind in [QueryKind::Point, QueryKind::Range, QueryKind::Aggregate] {
                // Analytics has the widest deadline budget, so the oracle
                // exercises every route (aged-out cloud fallbacks
                // included) without tripping plan-time deadline sheds —
                // QoS behavior has its own tests.
                let class = f2c_query::ServiceClass::Analytics;
                let query = Query { origin, class, selector, scope, window, kind };
                match engine.serve_sync(&query, now) {
                    Ok(Outcome::Answered(resp)) => {
                        assert_answers_match(&resp.answer, &oracle(&records, &query), &query)?;
                        // A cache hit must reproduce the stored answer.
                        match engine.serve_sync(&query, now) {
                            Ok(Outcome::Answered(again)) => {
                                prop_assert_eq!(&again.answer, &resp.answer,
                                    "cache changed the answer for {:?}", &query);
                                prop_assert!(again.est_latency <= resp.est_latency,
                                    "a warm hit must not cost more than the cold path");
                            }
                            other => return Err(TestCaseError::fail(format!(
                                "repeat of answered query failed: {other:?}"))),
                        }
                    }
                    Ok(Outcome::Shed { .. }) => {
                        return Err(TestCaseError::fail(
                            "default caps must not shed a serial workload".to_owned(),
                        ));
                    }
                    Err(f2c_query::Error::Unanswerable { .. }) => {
                        // Permitted only when no single tier can prove
                        // completeness — never after the hierarchy has
                        // fully settled (flushed with nothing pending).
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("hard error: {e}"))),
                }
            }
        }
    }

    #[test]
    fn settled_hierarchies_answer_every_query(
        seed in 0u64..10_000,
        section in 0usize..73,
        waves in 2u64..5,
        origin in 0usize..73,
    ) {
        // After a full settle (flush with nothing pending), every window
        // bounded by the flush instant must be answerable somewhere.
        let (city, now) = build_city(&[section], waves, seed, true, 0);
        let records = hierarchy_records(&city);
        let mut engine = QueryEngine::new(city, EngineConfig::default());
        let district = engine.city().district_of(section);
        for (scope, kind) in [
            (Scope::Section(section), QueryKind::Range),
            (Scope::District(district), QueryKind::Aggregate),
            (Scope::City, QueryKind::Aggregate),
            (Scope::City, QueryKind::Range),
        ] {
            let query = Query {
                origin,
                class: f2c_query::ServiceClass::Analytics,
                selector: Selector::Type(SensorType::ALL[(seed as usize + 25) % 21]),
                scope,
                window: TimeWindow::new(0, now),
                kind,
            };
            match engine.serve_sync(&query, now) {
                Ok(Outcome::Answered(resp)) => {
                    assert_answers_match(&resp.answer, &oracle(&records, &query), &query)?;
                }
                other => return Err(TestCaseError::fail(format!(
                    "settled query must answer, got {other:?} for {query:?}"))),
            }
        }
    }
}
