//! Explain-replay oracle: a planner EXPLAIN transcript must be
//! *truthful* — replaying it reproduces the decision it describes.
//!
//! Two rungs:
//! 1. [`plan_explained`] must return byte-for-byte the route [`plan`]
//!    returns, for every query shape — explaining may never perturb the
//!    decision it explains.
//! 2. The transcript alone must re-derive the choice: every candidate's
//!    `option`/`hops` round-trips through [`option_from_parts`] to an
//!    [`AccessOption`] whose nominal re-pricing matches the recorded
//!    `cost_us`, and applying the planner's published selection rules
//!    (first cheapest single in candidate order; a scatter beats it on
//!    `<=`) to the recorded costs reproduces `choice` and
//!    `choice_cost_us` exactly.

use f2c_core::runtime::populate_city;
use f2c_core::F2cCity;
use f2c_obs::Json;
use f2c_query::planner::{self, option_from_parts, Choice};
use f2c_query::workload::ServiceClass;
use f2c_query::{Query, QueryKind, Scope, Selector, TimeWindow};
use scc_sensors::{Category, SensorType};

/// A warmed deployment with enough history for every route shape: local
/// reads, neighbor relays, parent/cloud climbs and city-wide scatters.
fn warmed_city() -> F2cCity {
    let mut city = F2cCity::barcelona().expect("city builds");
    populate_city(&mut city, 10_000, 2017, 2 * 3_600, 900).expect("warm-up runs");
    city
}

/// A spread of query shapes over the warmed window: every scope, every
/// kind, settled and live windows, type and category selectors.
fn probe_queries(city: &F2cCity) -> Vec<Query> {
    let mut queries = Vec::new();
    let selectors = [
        Selector::Type(SensorType::Weather),
        Selector::Category(Category::Urban),
        Selector::Category(Category::Energy),
    ];
    let windows = [
        TimeWindow::new(0, 3_600),
        TimeWindow::new(900, 7_200),
        TimeWindow::new(3_600, 2 * 3_600 + 600),
    ];
    let kinds = [QueryKind::Point, QueryKind::Range, QueryKind::Aggregate];
    for (i, origin) in (0..city.section_count()).step_by(11).enumerate() {
        let selector = selectors[i % selectors.len()];
        let window = windows[i % windows.len()];
        let kind = kinds[i % kinds.len()];
        for scope in [
            Scope::Section(origin),
            Scope::District(city.district_of(origin)),
            Scope::City,
        ] {
            queries.push(Query {
                origin,
                class: ServiceClass::Dashboard,
                selector,
                scope,
                window,
                kind,
            });
        }
    }
    queries
}

#[test]
fn explaining_never_perturbs_the_route() {
    let city = warmed_city();
    let mut planned = 0u32;
    for query in probe_queries(&city) {
        let plain = planner::plan(&city, &query);
        let explained = planner::plan_explained(&city, &query);
        match (plain, explained) {
            (Ok(route), Ok((eroute, _))) => {
                assert_eq!(
                    route, eroute,
                    "explained route diverges from the plain plan for {query:?}"
                );
                planned += 1;
            }
            (Err(_), Err(_)) => {}
            (plain, explained) => panic!(
                "plan and plan_explained disagree on answerability for \
                 {query:?}: {plain:?} vs {explained:?}"
            ),
        }
    }
    assert!(planned > 10, "the probe set must exercise real plans");
}

/// Re-derives the choice from a transcript's candidate list alone,
/// using the planner's published rules: the cheapest single in
/// candidate order wins ties, and the scatter (at most one) beats the
/// best single on `cost_us <=`.
fn replay_choice(doc: &Json) -> (String, u64) {
    let Some(Json::Arr(candidates)) = doc.path("candidates") else {
        panic!("transcript has no candidates array: {doc:?}");
    };
    let mut best_single: Option<(String, u64)> = None;
    let mut scatter: Option<(u64, u64)> = None;
    for cand in candidates {
        let cost = cand
            .path("cost_us")
            .and_then(Json::as_u64)
            .expect("candidate carries cost_us");
        match cand.path("shape").and_then(Json::as_str) {
            Some("single") => {
                let label = cand
                    .path("option")
                    .and_then(Json::as_str)
                    .expect("single candidate names its option");
                if best_single.as_ref().is_none_or(|(_, c)| cost < *c) {
                    best_single = Some((label.to_string(), cost));
                }
            }
            Some("scatter") => {
                let legs = cand
                    .path("legs")
                    .and_then(Json::as_u64)
                    .expect("scatter candidate counts its legs");
                assert!(scatter.is_none(), "at most one scatter candidate");
                scatter = Some((legs, cost));
            }
            other => panic!("unknown candidate shape {other:?}"),
        }
    }
    match (scatter, best_single) {
        (Some((legs, s_cost)), Some((_, b_cost))) if s_cost <= b_cost => {
            (format!("scatter:{legs}"), s_cost)
        }
        (_, Some((label, cost))) => (format!("single:{label}"), cost),
        (Some((legs, cost)), None) => (format!("scatter:{legs}"), cost),
        (None, None) => panic!("transcript with no candidates planned nothing"),
    }
}

#[test]
fn transcripts_replay_to_the_recorded_choice() {
    let city = warmed_city();
    let cost_model = city.cost_model();
    let mut replayed = 0u32;
    for query in probe_queries(&city) {
        let Ok((route, doc)) = planner::plan_explained(&city, &query) else {
            continue;
        };
        // Rung 1: every single candidate re-prices through the replay
        // contract — label+hops rebuild the AccessOption, and the cost
        // model at the nominal payload reproduces the recorded cost.
        let Some(Json::Arr(candidates)) = doc.path("candidates") else {
            panic!("transcript has no candidates array");
        };
        for cand in candidates {
            if cand.path("shape").and_then(Json::as_str) != Some("single") {
                continue;
            }
            let label = cand.path("option").and_then(Json::as_str).unwrap();
            let hops = cand.path("hops").and_then(Json::as_u64).unwrap();
            let option = option_from_parts(label, hops)
                .unwrap_or_else(|| panic!("candidate option `{label}` must round-trip"));
            let repriced = cost_model
                .cost(option, planner::NOMINAL_PAYLOAD_BYTES)
                .as_micros();
            assert_eq!(
                Some(repriced),
                cand.path("cost_us").and_then(Json::as_u64),
                "re-pricing {label} diverges from the transcript for {query:?}"
            );
        }
        // Rung 2: the selection rules over the recorded costs reproduce
        // the recorded choice, its cost, and the route itself.
        let (choice, cost_us) = replay_choice(&doc);
        assert_eq!(
            doc.path("choice").and_then(Json::as_str),
            Some(choice.as_str()),
            "replayed choice diverges for {query:?}"
        );
        assert_eq!(
            doc.path("choice_cost_us").and_then(Json::as_u64),
            Some(cost_us),
            "replayed choice cost diverges for {query:?}"
        );
        match &route.choice {
            Choice::Single(_) => assert!(
                choice.starts_with("single:"),
                "route chose a single, replay chose {choice}"
            ),
            Choice::Scatter(s) => assert_eq!(
                choice,
                format!("scatter:{}", s.legs.len()),
                "route chose a scatter, replay diverges"
            ),
        }
        assert_eq!(
            route.est_cost().as_micros(),
            cost_us,
            "replayed cost diverges from the route's estimate"
        );
        replayed += 1;
    }
    assert!(replayed > 10, "the probe set must replay real transcripts");
}
