//! Sketch-plane conformance: the pre-folded partials shipped on flush
//! must equal a brute-force re-fold of the raw records — for every
//! ledger entry, at every tier, after every flush epoch — and a
//! warm-sketch answer after eviction must match the pre-eviction answer.
//!
//! This is the load-bearing check behind both halves of the plane: if a
//! flush ever ships a partial that disagrees with its batch, or a relay
//! drops/doubles a bucket, the receiving tier's ledger diverges from its
//! own archive and the entry-wise oracle fails naming the exact
//! `(section, type, bucket)`.

use std::collections::{HashMap, HashSet};

use f2c_aggregate::sketch::SketchKey;
use f2c_core::{F2cCity, F2cNode};
use f2c_query::model::{absorb_record, AggPartial};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scc_dlc::DataRecord;
use scc_sensors::{ReadingGenerator, SensorType};

/// Every record resident anywhere in the hierarchy, deduplicated across
/// tiers by (sensor, creation time) — the cloud is permanent, so this
/// union also covers records the fog tiers have evicted.
fn hierarchy_records(city: &F2cCity) -> Vec<DataRecord> {
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    let mut out = Vec::new();
    let mut gather = |store: &f2c_core::TieredStore| {
        for rec in store.range(0, u64::MAX) {
            let key = (
                rec.reading().sensor().seed_material(),
                rec.descriptor().created_s(),
            );
            if seen.insert(key) {
                out.push(rec.clone());
            }
        }
    };
    for s in 0..city.section_count() {
        gather(city.fog1(s).store());
    }
    for d in 0..city.district_count() {
        gather(city.fog2(d).store());
    }
    gather(city.cloud().store());
    out
}

/// Brute-force re-fold of the deduplicated raw stream, keyed the way the
/// ledgers key their buckets.
fn brute_folds(records: &[DataRecord], bucket_s: u64) -> HashMap<SketchKey, AggPartial> {
    let mut folds: HashMap<SketchKey, AggPartial> = HashMap::new();
    for rec in records {
        let Some(section) = rec.descriptor().section() else {
            continue;
        };
        let created = rec.descriptor().created_s();
        let key = SketchKey {
            section,
            ty: rec.sensor_type(),
            bucket_start_s: created - created % bucket_s,
        };
        absorb_record(folds.entry(key).or_default(), rec);
    }
    folds
}

/// Asserts every ledger entry of `node` equals the brute-force fold of
/// the raw stream for its key: exact for count/min/max/distinct, within
/// rounding for sums.
fn assert_ledger_matches(
    node: &F2cNode,
    truth: &HashMap<SketchKey, AggPartial>,
) -> Result<(), TestCaseError> {
    let ledger = node.sketches();
    prop_assert_eq!(
        ledger.crc_failures(),
        0,
        "{}: corrupt shipments",
        node.label()
    );
    for key in ledger.keys() {
        let (entry, _epoch) = ledger.entry(key).expect("iterated key resolves");
        let want = truth.get(key);
        let want_count = want.map_or(0, AggPartial::count);
        prop_assert_eq!(
            entry.count(),
            want_count,
            "{}: count drift at {:?}",
            node.label(),
            key
        );
        if let Some(want) = want {
            prop_assert_eq!(
                entry.minmax().min,
                want.minmax().min,
                "{}: min drift at {:?}",
                node.label(),
                key
            );
            prop_assert_eq!(
                entry.minmax().max,
                want.minmax().max,
                "{}: max drift at {:?}",
                node.label(),
                key
            );
            prop_assert_eq!(
                entry.distinct_estimate(),
                want.distinct_estimate(),
                "{}: distinct drift at {:?} (HLL merges exactly)",
                node.label(),
                key
            );
            let (sum, want_sum) = (entry.moments().sum, want.moments().sum);
            prop_assert!(
                (sum - want_sum).abs() <= 1e-9 * sum.abs().max(want_sum.abs()).max(1.0),
                "{}: sum drift at {:?}: {} vs {}",
                node.label(),
                key,
                sum,
                want_sum
            );
        }
    }
    Ok(())
}

/// After a settle, the ledger must also be *complete* below its seal
/// frontier: every brute-force bucket of a section, sealed and not yet
/// compacted away, has an entry.
fn assert_ledger_complete(
    node: &F2cNode,
    truth: &HashMap<SketchKey, AggPartial>,
    sections: &[u16],
) -> Result<(), TestCaseError> {
    let ledger = node.sketches();
    for (key, want) in truth {
        if !sections.contains(&key.section) || want.count() == 0 {
            continue;
        }
        let sealed = ledger.sealed_through(key.section);
        let bucket_end = key.bucket_start_s + ledger.bucket_s();
        if bucket_end <= sealed && key.bucket_start_s >= ledger.evicted_before_s() {
            prop_assert!(
                ledger.entry(key).is_some(),
                "{}: sealed bucket {:?} missing from the ledger",
                node.label(),
                key
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The write-path oracle: ingest random waves at random sections,
    /// flush at random instants (every flush is one epoch), optionally
    /// age past fog retention — after each epoch, every tier's ledger
    /// entries equal the brute-force re-fold, and after the final settle
    /// each tier is complete below its seal frontier.
    #[test]
    fn shipped_partials_equal_brute_force_refold_at_every_tier(
        seed in 0u64..10_000,
        sections in proptest::collection::vec(0usize..73, 1..4),
        waves in 2u64..6,
        flushes in 1usize..4,
        age_days in 0u64..3,
    ) {
        let mut city = F2cCity::barcelona().unwrap();
        let mut gens: Vec<ReadingGenerator> = sections
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let ty = SensorType::ALL[(seed as usize + i * 5) % SensorType::ALL.len()];
                ReadingGenerator::for_population(ty, 6, seed ^ (s as u64) << 8)
            })
            .collect();
        let bucket_s = f2c_core::SKETCH_BUCKET_S;
        let mut now = 0;
        for f in 0..flushes as u64 {
            for w in 0..waves {
                let t = (f * waves + w) * 600;
                for (i, &s) in sections.iter().enumerate() {
                    city.ingest(s, gens[i].wave(t), t + 1).unwrap();
                }
                now = t + 600;
            }
            city.flush_all(now).unwrap();
            // Epoch-wise check: the ledgers never drift, mid-stream
            // included.
            let truth = brute_folds(&hierarchy_records(&city), bucket_s);
            for &s in &sections {
                assert_ledger_matches(city.fog1(s), &truth)?;
            }
            for d in 0..city.district_count() {
                assert_ledger_matches(city.fog2(d), &truth)?;
            }
            assert_ledger_matches(city.cloud(), &truth)?;
        }
        if age_days > 0 {
            now = age_days * 86_400;
            city.flush_all(now).unwrap();
        }
        // Final settle: everything pending has flushed, so each tier is
        // also *complete* below its seal frontier — even where the raw
        // records have been evicted (the compaction-survival guarantee).
        let truth = brute_folds(&hierarchy_records(&city), bucket_s);
        let all: Vec<u16> = (0..city.section_count() as u16).collect();
        for &s in &sections {
            assert_ledger_matches(city.fog1(s), &truth)?;
            assert_ledger_complete(city.fog1(s), &truth, &[s as u16])?;
        }
        for d in 0..city.district_count() {
            assert_ledger_matches(city.fog2(d), &truth)?;
            let members: Vec<u16> = city
                .sections_in_district(d)
                .into_iter()
                .map(|s| s as u16)
                .collect();
            assert_ledger_complete(city.fog2(d), &truth, &members)?;
        }
        assert_ledger_matches(city.cloud(), &truth)?;
        assert_ledger_complete(city.cloud(), &truth, &all)?;
    }
}
