//! A deterministic discrete-event queue.
//!
//! Events scheduled for the same instant pop in scheduling order (FIFO
//! tie-breaking via a monotonically increasing sequence number), which makes
//! every simulation in the workspace bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

#[derive(Debug, PartialEq, Eq)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// Popping an event advances the queue's clock to the event's timestamp;
/// scheduling in the past is rejected (a classic simulation bug) by panic.
///
/// # Examples
///
/// ```
/// use citysim::{EventQueue, Duration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(Duration::from_secs(5), "flush");
/// q.schedule_in(Duration::from_secs(1), "collect");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "collect")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "flush")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The queue's current clock (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after `delay` from the current clock.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pops the next event only if it is due at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 'c');
        q.schedule_at(SimTime::from_secs(1), 'a');
        q.schedule_at(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), 1);
        q.pop();
        q.schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 'x');
        assert_eq!(q.pop_before(SimTime::from_secs(5)), None);
        assert_eq!(
            q.pop_before(SimTime::from_secs(10)),
            Some((SimTime::from_secs(10), 'x'))
        );
    }

    #[test]
    fn interleaved_scheduling_and_popping() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_secs(1), 1);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        // schedule_in is relative to the advanced clock.
        q.schedule_in(Duration::from_secs(1), 2);
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs(2));
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_in(Duration::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
