//! Simulation time: a microsecond-resolution instant and duration pair.
//!
//! Newtypes (rather than raw `u64`s) keep instants and durations from being
//! mixed up in traffic/latency arithmetic across the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// From microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// From milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            micros: millis * 1_000,
        }
    }

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            micros: secs * 1_000_000,
        }
    }

    /// From fractional seconds (rounds to the nearest microsecond).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        Self {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1e3
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration {
            micros: self.micros.saturating_sub(other.micros),
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.micros >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.micros)
        }
    }
}

/// An instant of simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// From microseconds since start.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// From seconds since start.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds since start.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Whole seconds since start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.micros / 1_000_000
    }

    /// Seconds since start, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Duration since an earlier instant, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration {
            micros: self.micros.saturating_sub(earlier.micros),
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert!((Duration::from_micros(1_500).as_millis_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimTime::from_secs(10) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 10_500_000);
        assert_eq!((t - SimTime::from_secs(10)).as_micros(), 500_000);
        // Saturating: earlier - later = 0.
        assert_eq!(
            (SimTime::from_secs(1) - SimTime::from_secs(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Duration::from_micros(7).to_string(), "7us");
        assert_eq!(Duration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(Duration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(Duration::from_millis(999) < Duration::from_secs(1));
    }
}
