//! Point-to-point link model.

use crate::time::Duration;

/// An undirected network link with propagation latency and bandwidth.
///
/// # Examples
///
/// ```
/// use citysim::{Link, Duration};
///
/// // A 4G-ish uplink: 50 ms, 10 Mbit/s.
/// let l = Link::new(Duration::from_millis(50), 10_000_000);
/// // 1 MB takes 0.8 s to serialize.
/// assert_eq!(l.transfer_time(1_000_000), Duration::from_micros(800_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    latency: Duration,
    bandwidth_bps: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(latency: Duration, bandwidth_bps: u64) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        Self {
            latency,
            bandwidth_bps,
        }
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> u64 {
        self.bandwidth_bps
    }

    /// Time to push `bytes` onto the wire (serialization delay).
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        // micros = bytes * 8 / (bps / 1e6) = bytes * 8e6 / bps
        let micros = (u128::from(bytes) * 8 * 1_000_000) / u128::from(self.bandwidth_bps);
        Duration::from_micros(micros as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let l = Link::new(Duration::from_millis(1), 1_000);
        assert_eq!(l.transfer_time(0), Duration::ZERO);
    }

    #[test]
    fn transfer_time_is_linear() {
        let l = Link::new(Duration::ZERO, 8_000_000); // 1 MB/s
        assert_eq!(l.transfer_time(1_000_000), Duration::from_secs(1));
        assert_eq!(l.transfer_time(2_000_000), Duration::from_secs(2));
    }

    #[test]
    fn no_overflow_on_huge_payloads() {
        let l = Link::new(Duration::ZERO, 1_000);
        // 8.5 GB over 1 kbit/s: enormous but must not overflow.
        let t = l.transfer_time(8_583_503_168);
        assert!(t.as_secs_f64() > 6e7);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        Link::new(Duration::ZERO, 0);
    }
}
