//! Network model: topology, links, routing, metering, failures.
//!
//! * [`Topology`] — an undirected graph of labelled nodes and
//!   latency/bandwidth links, with Dijkstra routing,
//! * [`TrafficMeter`] — per-link and per-node byte/message accounting (the
//!   raw data behind every traffic table in the experiments),
//! * [`FailurePlan`] — deterministic link outages and packet loss,
//! * [`Network`] — the combination: `send` routes a message, checks
//!   failures, accumulates latency + serialization delay, and meters every
//!   traversed link.

mod failure;
mod link;
mod meter;
mod topology;

pub use failure::FailurePlan;
pub use link::Link;
pub use meter::{LinkTraffic, TrafficMeter};
pub use topology::{LinkId, NodeId, Topology};

use std::collections::HashMap;

use crate::time::{Duration, SimTime};
use crate::{Error, Result};

/// Buffered network effects of one shard's read-only phase.
///
/// A sharded runtime serves queries and ships flush hops against a
/// shared `&Network`; everything a send would normally mutate — traffic
/// meters and per-link loss-coin sequences — lands here instead, and
/// [`Network::absorb_scratch`] replays it at the next barrier in the
/// coordinator's canonical shard order. Per-link sequences are drawn as
/// `base + local count`, where `base` is the plan's counter at first use,
/// so a shard's verdicts are a pure function of the plan plus its own
/// send order.
#[derive(Debug, Default)]
pub struct NetScratch {
    /// Metering events in send order: `(link, src, dst, bytes, at)`.
    events: Vec<(LinkId, NodeId, NodeId, u64, SimTime)>,
    /// Per-link `(base sequence at first use, draws made here)`.
    seq: HashMap<LinkId, (u64, u64)>,
}

impl NetScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.seq.is_empty()
    }

    /// Buffered metering events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

/// Outcome of a successful message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the last byte arrives at the destination.
    pub arrival: SimTime,
    /// Number of links traversed.
    pub hops: usize,
    /// Pure propagation latency along the path (excluding serialization).
    pub path_latency: Duration,
}

/// A routed, metered, failure-aware network over a [`Topology`].
///
/// # Examples
///
/// ```
/// use citysim::{Network, Topology, Link, SimTime, Duration};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node("fog-1");
/// let b = topo.add_node("cloud");
/// topo.add_link(a, b, Link::new(Duration::from_millis(20), 100_000_000)).unwrap();
///
/// let mut net = Network::new(topo);
/// let d = net.send(a, b, 1_000_000, SimTime::ZERO).unwrap();
/// assert_eq!(d.hops, 1);
/// // 20 ms propagation + 1 MB over 100 Mbit/s = 80 ms serialization.
/// assert_eq!(d.arrival.as_micros(), 100_000);
/// ```
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    meter: TrafficMeter,
    failures: FailurePlan,
}

impl Network {
    /// Wraps a topology with fresh meters and no failures.
    pub fn new(topo: Topology) -> Self {
        let meter = TrafficMeter::for_topology(&topo);
        Self {
            topo,
            meter,
            failures: FailurePlan::none(),
        }
    }

    /// Installs a failure plan (replacing any previous one).
    pub fn set_failures(&mut self, failures: FailurePlan) {
        self.failures = failures;
    }

    /// Read access to the installed failure plan.
    pub fn failures(&self) -> &FailurePlan {
        &self.failures
    }

    /// Mutable access to the installed failure plan, for incremental
    /// chaos injection (adding outage windows to a live plan).
    pub fn failures_mut(&mut self) -> &mut FailurePlan {
        &mut self.failures
    }

    /// Whether a route from `from` to `to` exists with every hop outside
    /// its outage window and both endpoints up at `at`. A reachability
    /// probe: nothing is metered and no loss coin is drawn.
    pub fn path_is_up(&self, from: NodeId, to: NodeId, at: SimTime) -> bool {
        if self.failures.node_is_down(from, at) || self.failures.node_is_down(to, at) {
            return false;
        }
        match self.topo.route(from, to) {
            Ok(path) => path.iter().all(|&l| !self.failures.is_down(l, at)),
            Err(_) => false,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Read access to the traffic meters.
    pub fn meter(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Resets all traffic meters to zero.
    pub fn reset_meter(&mut self) {
        self.meter = TrafficMeter::for_topology(&self.topo);
    }

    /// Sends `bytes` from `from` to `to` at time `now`.
    ///
    /// The transfer is store-and-forward: each hop adds its propagation
    /// latency plus `bytes / bandwidth` serialization delay. Bytes are
    /// metered on every traversed link even if a later hop fails (the
    /// traffic was already on the wire).
    ///
    /// # Errors
    ///
    /// * [`Error::NoRoute`] / [`Error::UnknownNode`] for topology problems,
    /// * [`Error::LinkDown`] if a hop's link is in an outage window,
    /// * [`Error::MessageLost`] if injected packet loss drops the message.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64, now: SimTime) -> Result<Delivery> {
        let path = self.topo.route(from, to)?;
        let mut at = now;
        let mut path_latency = Duration::ZERO;
        for (hop_index, &link_id) in path.iter().enumerate() {
            let link = self.topo.link(link_id);
            let (a, b) = self.topo.link_endpoints(link_id);
            if self.failures.is_down(link_id, at) {
                return Err(Error::LinkDown { a, b, at });
            }
            // The message reaches the link before the loss coin is tossed,
            // so meter it first: lost traffic still loaded the network.
            self.meter.record(link_id, a, b, bytes, at);
            if self.failures.drops(link_id) {
                return Err(Error::MessageLost { a, b });
            }
            let hop_time = link.latency() + link.transfer_time(bytes);
            at += hop_time;
            path_latency += link.latency();
            let _ = hop_index;
        }
        Ok(Delivery {
            arrival: at,
            hops: path.len(),
            path_latency,
        })
    }

    /// [`Network::send`] against `&self`: meter records and loss-coin
    /// draws go to `scratch` instead of mutating the network. A shard
    /// replaying the same sends through the same scratch gets the same
    /// verdicts [`Network::send`] would have produced sequentially.
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::send`].
    pub fn send_scratch(
        &self,
        scratch: &mut NetScratch,
        from: NodeId,
        to: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> Result<Delivery> {
        let path = self.topo.route(from, to)?;
        let mut at = now;
        let mut path_latency = Duration::ZERO;
        for &link_id in &path {
            let link = self.topo.link(link_id);
            let (a, b) = self.topo.link_endpoints(link_id);
            if self.failures.is_down(link_id, at) {
                return Err(Error::LinkDown { a, b, at });
            }
            scratch.events.push((link_id, a, b, bytes, at));
            let entry = scratch
                .seq
                .entry(link_id)
                .or_insert((self.failures.loss_seq(link_id), 0));
            let seq = entry.0 + entry.1;
            entry.1 += 1;
            if self.failures.loss_verdict(link_id, seq) {
                return Err(Error::MessageLost { a, b });
            }
            at += link.latency() + link.transfer_time(bytes);
            path_latency += link.latency();
        }
        Ok(Delivery {
            arrival: at,
            hops: path.len(),
            path_latency,
        })
    }

    /// [`Network::request_response`] through a [`NetScratch`].
    ///
    /// # Errors
    ///
    /// Exactly as [`Network::request_response`].
    pub fn request_response_scratch(
        &self,
        scratch: &mut NetScratch,
        from: NodeId,
        to: NodeId,
        request_bytes: u64,
        response_bytes: u64,
        now: SimTime,
    ) -> Result<Delivery> {
        let there = self.send_scratch(scratch, from, to, request_bytes, now)?;
        let back = self.send_scratch(scratch, to, from, response_bytes, there.arrival)?;
        Ok(Delivery {
            arrival: back.arrival,
            hops: there.hops + back.hops,
            path_latency: there.path_latency + back.path_latency,
        })
    }

    /// Folds a shard's buffered sends back into the network: meter events
    /// replay in their send order and each link's loss-coin counter jumps
    /// by the draws made. Called at barriers in canonical shard order, so
    /// the merged meter and sequences are schedule-independent.
    pub fn absorb_scratch(&mut self, scratch: &mut NetScratch) {
        for (link, a, b, bytes, at) in scratch.events.drain(..) {
            self.meter.record(link, a, b, bytes, at);
        }
        let mut seqs: Vec<(LinkId, (u64, u64))> = scratch.seq.drain().collect();
        seqs.sort_by_key(|(link, _)| link.index());
        for (link, (_, drawn)) in seqs {
            self.failures.advance_loss_seq(link, drawn);
        }
    }

    /// Round-trip: a small `request_bytes` message from `from` to `to`, then
    /// `response_bytes` back. Returns the time the response arrives.
    pub fn request_response(
        &mut self,
        from: NodeId,
        to: NodeId,
        request_bytes: u64,
        response_bytes: u64,
        now: SimTime,
    ) -> Result<Delivery> {
        let there = self.send(from, to, request_bytes, now)?;
        let back = self.send(to, from, response_bytes, there.arrival)?;
        Ok(Delivery {
            arrival: back.arrival,
            hops: there.hops + back.hops,
            path_latency: there.path_latency + back.path_latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Network, NodeId, NodeId, NodeId) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        topo.add_link(a, b, Link::new(Duration::from_millis(2), 1_000_000_000))
            .unwrap();
        topo.add_link(b, c, Link::new(Duration::from_millis(30), 1_000_000_000))
            .unwrap();
        (Network::new(topo), a, b, c)
    }

    #[test]
    fn multi_hop_latency_accumulates() {
        let (mut net, a, _, c) = line3();
        let d = net.send(a, c, 0, SimTime::ZERO).unwrap();
        assert_eq!(d.hops, 2);
        assert_eq!(d.path_latency, Duration::from_millis(32));
        assert_eq!(d.arrival, SimTime::ZERO + Duration::from_millis(32));
    }

    #[test]
    fn serialization_delay_scales_with_bytes() {
        let (mut net, a, b, _) = line3();
        // 1 Gbit/s = 125 MB/s; 125 MB takes 1 s per hop.
        let d = net.send(a, b, 125_000_000, SimTime::ZERO).unwrap();
        assert_eq!(
            d.arrival.as_micros(),
            Duration::from_millis(2).as_micros() + 1_000_000
        );
    }

    #[test]
    fn traffic_is_metered_on_every_hop() {
        let (mut net, a, _, c) = line3();
        net.send(a, c, 500, SimTime::ZERO).unwrap();
        // Both links carried the 500 bytes.
        let total: u64 = net.meter().total_bytes();
        assert_eq!(total, 1000);
    }

    #[test]
    fn request_response_doubles_the_path() {
        let (mut net, a, _, c) = line3();
        let d = net
            .request_response(a, c, 100, 10_000, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.hops, 4);
        assert_eq!(d.path_latency, Duration::from_millis(64));
    }

    #[test]
    fn unknown_destination_errors() {
        let (mut net, a, _, _) = line3();
        let ghost = NodeId::from_raw(99);
        assert!(matches!(
            net.send(a, ghost, 1, SimTime::ZERO),
            Err(Error::UnknownNode { .. })
        ));
    }

    #[test]
    fn reset_meter_zeroes_counts() {
        let (mut net, a, b, _) = line3();
        net.send(a, b, 100, SimTime::ZERO).unwrap();
        assert!(net.meter().total_bytes() > 0);
        net.reset_meter();
        assert_eq!(net.meter().total_bytes(), 0);
    }
}
