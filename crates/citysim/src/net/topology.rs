//! Labelled undirected graph with Dijkstra routing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use super::Link;
use crate::{Error, Result};

/// Identifies a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Constructs from a raw index (mostly for tests).
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(u32);

impl LinkId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct LinkEntry {
    a: NodeId,
    b: NodeId,
    link: Link,
}

/// An undirected graph of labelled nodes and [`Link`]s.
///
/// Routing is shortest-path by propagation latency (Dijkstra). The graphs
/// in this workspace are small (dozens to hundreds of nodes), so routes are
/// computed on demand without caching.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    labels: Vec<String>,
    adj: Vec<Vec<(NodeId, LinkId)>>,
    links: Vec<LinkEntry>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.into());
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] if either endpoint does not exist,
    /// * [`Error::SelfLink`] if `a == b`,
    /// * [`Error::DuplicateLink`] if the pair is already connected.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, link: Link) -> Result<LinkId> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(Error::SelfLink { node: a });
        }
        if self.adj[a.index()].iter().any(|(n, _)| *n == b) {
            return Err(Error::DuplicateLink { a, b });
        }
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkEntry { a, b, link });
        self.adj[a.index()].push((b, id));
        self.adj[b.index()].push((a, id));
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<()> {
        if n.index() < self.labels.len() {
            Ok(())
        } else {
            Err(Error::UnknownNode { node: n })
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The label given to `node`.
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node.index()]
    }

    /// The link behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is stale (ids are only minted by `add_link`).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()].link
    }

    /// Endpoints of a link.
    pub fn link_endpoints(&self, id: LinkId) -> (NodeId, NodeId) {
        let e = &self.links[id.index()];
        (e.a, e.b)
    }

    /// Neighbors of `node` with the connecting link ids.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[node.index()]
    }

    /// Shortest path (by total latency) from `from` to `to`, as link ids in
    /// traversal order. An empty path means `from == to`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownNode`] or [`Error::NoRoute`].
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<Vec<LinkId>> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Ok(Vec::new());
        }
        let n = self.node_count();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0;
        heap.push(Reverse((0u64, from)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            if u == to {
                break;
            }
            for &(v, lid) in &self.adj[u.index()] {
                let w = self.links[lid.index()].link.latency().as_micros().max(1);
                let nd = d + w;
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    prev[v.index()] = Some((u, lid));
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        if dist[to.index()] == u64::MAX {
            return Err(Error::NoRoute { from, to });
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, lid) = prev[cur.index()].expect("reachable node has predecessor");
            path.push(lid);
            cur = p;
        }
        path.reverse();
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn l(ms: u64) -> Link {
        Link::new(Duration::from_millis(ms), 1_000_000_000)
    }

    #[test]
    fn route_picks_lowest_latency_path() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        // Direct a-c is slow; a-b-c is faster.
        t.add_link(a, c, l(100)).unwrap();
        let ab = t.add_link(a, b, l(10)).unwrap();
        let bc = t.add_link(b, c, l(10)).unwrap();
        assert_eq!(t.route(a, c).unwrap(), vec![ab, bc]);
    }

    #[test]
    fn route_to_self_is_empty() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        assert!(t.route(a, a).unwrap().is_empty());
    }

    #[test]
    fn partitioned_graph_has_no_route() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert!(matches!(t.route(a, b), Err(Error::NoRoute { .. })));
    }

    #[test]
    fn self_and_duplicate_links_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert!(matches!(
            t.add_link(a, a, l(1)),
            Err(Error::SelfLink { .. })
        ));
        t.add_link(a, b, l(1)).unwrap();
        assert!(matches!(
            t.add_link(a, b, l(2)),
            Err(Error::DuplicateLink { .. })
        ));
        assert!(matches!(
            t.add_link(b, a, l(2)),
            Err(Error::DuplicateLink { .. })
        ));
    }

    #[test]
    fn labels_and_counts() {
        let mut t = Topology::new();
        let a = t.add_node("fog-1/section-07");
        assert_eq!(t.label(a), "fog-1/section-07");
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.link_count(), 0);
    }

    #[test]
    fn route_on_a_star_topology() {
        // Hub-and-spoke: every spoke routes through the hub.
        let mut t = Topology::new();
        let hub = t.add_node("hub");
        let spokes: Vec<NodeId> = (0..10).map(|i| t.add_node(format!("s{i}"))).collect();
        for &s in &spokes {
            t.add_link(hub, s, l(5)).unwrap();
        }
        let path = t.route(spokes[0], spokes[9]).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let id = t.add_link(a, b, l(1)).unwrap();
        assert_eq!(t.neighbors(a), &[(b, id)]);
        assert_eq!(t.neighbors(b), &[(a, id)]);
        assert_eq!(t.link_endpoints(id), (a, b));
    }
}
